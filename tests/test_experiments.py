"""Tests for the experiment orchestration subsystem."""

import json

import pytest

from repro.experiments import (
    ExperimentSpec,
    derive_cell_seed,
    run_batch,
    run_cell,
)


def small_spec(**overrides) -> ExperimentSpec:
    params = dict(
        name="unit",
        mode="simulate",
        mesh_shapes=((8, 8),),
        policies=("limited-global", "no-information"),
        fault_counts=(2, 3),
        fault_intervals=(5,),
        lams=(1, 2),
        traffic_sizes=(4,),
        seeds=(0,),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


class TestSpec:
    def test_grid_expansion(self):
        spec = small_spec()
        cells = spec.cells()
        assert len(cells) == spec.cell_count == 2 * 2 * 2
        assert [c.index for c in cells] == list(range(len(cells)))

    def test_policy_shares_configuration_seed(self):
        """Cells differing only in policy must share mesh/faults/traffic."""
        spec = small_spec()
        by_config = {}
        for cell in spec.cells():
            by_config.setdefault(cell.config_key(), set()).add(cell.cell_seed)
        for seeds in by_config.values():
            assert len(seeds) == 1

    def test_configurations_get_distinct_seeds(self):
        spec = small_spec()
        seeds = {c.cell_seed for c in spec.cells()}
        assert len(seeds) == spec.cell_count // len(spec.policies)

    def test_seed_derivation_is_stable(self):
        assert derive_cell_seed("a", 1, (8, 8)) == derive_cell_seed("a", 1, (8, 8))
        assert derive_cell_seed("a", 1) != derive_cell_seed("b", 1)

    def test_validation(self):
        with pytest.raises(ValueError):
            small_spec(mode="nope")
        with pytest.raises(ValueError):
            small_spec(policies=("not-a-policy",))  # unregistered router
        with pytest.raises(ValueError):
            small_spec(mode="offline", lams=(1,), contention=True)
        with pytest.raises(ValueError):
            small_spec(mesh_shapes=((1, 8),))
        with pytest.raises(ValueError):
            small_spec(fault_counts=())  # an empty axis means a 0-cell sweep
        # Offline cells never read interval/λ, so multi-valued axes there
        # would only be replicates in disguise.
        with pytest.raises(ValueError):
            small_spec(mode="offline", lams=(1, 2))
        # ... and every registered policy is valid in both modes.
        small_spec(
            mode="offline",
            policies=("global-information", "static-block"),
            lams=(1,),
        )
        small_spec(policies=("global-information", "static-block"))


class TestRunner:
    def test_run_cell_is_deterministic(self):
        spec = small_spec(fault_counts=(2,), lams=(1,), policies=("limited-global",))
        (cell,) = spec.cells()
        first = run_cell(cell)
        second = run_cell(cell)
        assert first.metrics == second.metrics

    def test_serial_equals_parallel_json(self):
        spec = small_spec()
        serial = run_batch(spec, workers=1)
        parallel = run_batch(spec, workers=2)
        assert serial.to_json() == parallel.to_json()

    def test_same_spec_same_json_across_batches(self):
        spec = small_spec()
        assert run_batch(spec).to_json() == run_batch(spec).to_json()

    def test_json_round_trips(self):
        batch = run_batch(small_spec(fault_counts=(2,), lams=(1,)))
        payload = json.loads(batch.to_json())
        assert payload["spec"]["cell_count"] == len(payload["cells"]) == 2
        for cell in payload["cells"]:
            assert "delivery_rate" in cell["metrics"]

    def test_offline_mode_policy_ordering(self):
        spec = small_spec(
            mode="offline",
            mesh_shapes=((12, 12),),
            policies=("limited-global", "no-information", "global-information"),
            fault_counts=(8,),
            traffic_sizes=(8,),
            lams=(1,),
        )
        batch = run_batch(spec)
        detours = batch.pivot("mean_detours", rows="faults")[8]
        assert detours["global-information"] <= detours["limited-global"] + 1e-9
        assert detours["limited-global"] <= detours["no-information"] + 1e-9

    def test_simulate_metrics_present(self):
        batch = run_batch(small_spec(fault_counts=(2,), lams=(2,), policies=("limited-global",)))
        (result,) = batch.results
        for key in ("delivery_rate", "steps", "worst_steps_to_stabilize", "information_cells"):
            assert key in result.metrics

    def test_progress_hook_sees_every_cell(self):
        spec = small_spec(fault_counts=(2,), lams=(1,))
        seen = []
        run_batch(spec, on_cell_done=seen.append)
        assert sorted(r.cell.index for r in seen) == list(range(spec.cell_count))

    def test_default_engine_is_auto_and_matches_serial(self):
        """The default composition is engine='auto': sharded/stacked where
        eligible, but byte-identical to the one-cell-at-a-time loop."""
        spec = small_spec()
        assert run_batch(spec).to_json() == run_batch(spec, engine="serial").to_json()


class TestBatchResult:
    def test_select_and_pivot(self):
        spec = small_spec()
        batch = run_batch(spec)
        only = batch.select(policy="limited-global", lam=1)
        assert {r.cell.policy for r in only} == {"limited-global"}
        table = batch.pivot("delivery_rate", rows="lam")
        assert set(table) == {1, 2}
        assert set(table[1]) == {"limited-global", "no-information"}
