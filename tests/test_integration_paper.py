"""Integration tests replaying the paper's worked examples end to end.

Each test corresponds to a figure or theorem of the paper and exercises the
full pipeline (labeling → identification → boundary → routing → simulator)
rather than a single module.
"""

import pytest

from repro.analysis.detour_bounds import DetourBoundParameters, theorem4_max_detours
from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information_with_report
from repro.core.routing import route_offline
from repro.core.safety import is_safe_source
from repro.faults.injection import dynamic_schedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage
from repro.workloads.scenarios import (
    FIGURE1_EXTENT,
    FIGURE2_CORNER,
    figure1_scenario,
    figure4_recovery_scenario,
    two_block_scenario,
)


class TestFigure1Pipeline:
    """Figure 1: faults → block [3:5, 5:6, 3:4] → surfaces → distributed info."""

    def test_full_pipeline(self):
        scenario = figure1_scenario()
        mesh = scenario.mesh
        result = build_blocks(mesh, scenario.schedule.initial_faults)
        assert [b.extent for b in result.blocks] == [FIGURE1_EXTENT]
        block = result.blocks[0]
        assert len(block.adjacent_surfaces(mesh)) == 6
        info, report = distribute_information_with_report(mesh, result.state)
        assert report.identifications[FIGURE1_EXTENT].stable
        # The Figure-2 corner ends up holding the block record.
        assert info.has_block_info(FIGURE2_CORNER, FIGURE1_EXTENT)


class TestFigure4RecoveryPipeline:
    """Figure 4 + Theorem 1: recovery does not hurt routing optimality."""

    def test_routing_after_recovery_not_worse(self):
        scenario = figure4_recovery_scenario(recovery_time=2)
        mesh = scenario.mesh
        config = SimulationConfig(lam=4)
        source, destination = (0, 4, 4), (4, 7, 4)

        # Before recovery (static Figure-1 block): minimal route.
        static = Simulator(
            mesh,
            schedule=figure1_scenario().schedule,
            traffic=[TrafficMessage(source=source, destination=destination)],
            config=config,
        ).run()
        before = static.stats.messages[0]

        # With the recovery happening: routing must not become worse.
        dynamic = Simulator(
            mesh,
            schedule=scenario.schedule,
            traffic=[
                TrafficMessage(source=source, destination=destination, start_time=20)
            ],
            config=config,
        ).run(min_steps=20)
        after = dynamic.stats.messages[0]

        assert before.delivered and after.delivered
        assert after.result.hops <= before.result.hops


class TestTwoBlockPipeline:
    """Figure 3(d): boundaries that merge still steer routing correctly."""

    def test_routing_between_two_blocks(self):
        scenario = two_block_scenario()
        mesh = scenario.mesh
        result = build_blocks(mesh, scenario.schedule.initial_faults)
        info, _ = distribute_information_with_report(mesh, result.state)
        # Route from below both blocks to above both blocks: with boundary
        # information the probe is steered around the pair.
        route = route_offline(info, (5, 0, 5), (5, 11, 5))
        assert route.delivered
        # The ideal path must dodge both blocks laterally: 11 + 2*2 hops.
        assert route.hops <= 11 + 8


class TestDynamicDetourBound:
    """Theorems 3/4: measured detours stay within the analytical bound."""

    @pytest.mark.parametrize("interval", [20, 40])
    def test_measured_detours_within_theorem4_bound(self, interval):
        mesh = Mesh.cube(12, 3)
        source, destination = (0, 0, 0), (11, 11, 11)
        # Two dynamic faults appear near the path while the message travels.
        # They must land *next to* the probe's staircase, never on a node the
        # partial circuit already occupies: a fault hitting the circuit itself
        # tears the probe down (see tests/test_fault_recovery.py for that
        # semantics) and Theorem 4 only bounds detours of surviving probes.
        faults = [(5, 5, 5), (6, 6, 7)]
        schedule = dynamic_schedule(faults, start_time=4, interval=interval)
        config = SimulationConfig(lam=4)
        sim = Simulator(
            mesh,
            schedule=schedule,
            traffic=[TrafficMessage(source=source, destination=destination)],
            config=config,
        )
        result = sim.run()
        record = result.stats.messages[0]
        assert record.delivered

        labeling_rounds = [
            max((c.labeling_rounds for c in result.stats.convergence), default=1)
        ] * max(len(faults), 1)
        e_max = 2  # the two faults coalesce into a block of edge <= 2
        params = DetourBoundParameters(
            distance=mesh.distance(source, destination),
            start_time=0,
            last_fault_time=0,
            intervals=[interval] * len(faults),
            labeling_rounds=labeling_rounds,
            e_max=e_max,
        )
        bound = theorem4_max_detours(params)
        assert record.detours is not None
        assert record.detours <= bound

    def test_safe_source_with_no_dynamic_fault_is_minimal(self):
        """Theorem 3 base case: i <= p means D(i) = D."""
        scenario = figure1_scenario()
        mesh = scenario.mesh
        result = build_blocks(mesh, scenario.schedule.initial_faults)
        source, destination = (7, 0, 0), (9, 3, 2)
        assert is_safe_source(source, destination, result.blocks)
        sim = Simulator(
            mesh,
            schedule=scenario.schedule,
            traffic=[TrafficMessage(source=source, destination=destination)],
        ).run()
        record = sim.stats.messages[0]
        assert record.delivered
        assert record.detours == 0


class TestGracefulDegradation:
    """The companion-paper claim: performance degrades gracefully as the
    number of dynamic faults grows."""

    def test_detours_grow_slowly_with_fault_count(self):
        from repro.workloads.scenarios import random_dynamic_scenario

        means = {}
        for fault_count in (2, 8):
            scenario = random_dynamic_scenario(
                radix=10,
                n_dims=2,
                dynamic_faults=fault_count,
                interval=12,
                messages=10,
                seed=7,
            )
            result = Simulator(
                scenario.mesh,
                schedule=scenario.schedule,
                traffic=list(scenario.traffic),
                config=SimulationConfig(lam=4),
            ).run()
            assert result.stats.delivery_rate == 1.0
            means[fault_count] = result.stats.mean_detours
        # More faults may cost more detours, but the degradation is bounded
        # (well under the mesh diameter on average).
        assert means[8] < 18
