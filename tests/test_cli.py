"""Unit tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRouteCommand:
    def test_route_with_explicit_faults(self, capsys):
        code = main(
            [
                "route",
                "--radix",
                "10",
                "--dims",
                "3",
                "--source",
                "0,4,4",
                "--destination",
                "4,7,4",
                "--fault",
                "3,5,4",
                "--fault",
                "4,5,4",
                "--fault",
                "5,5,3",
                "--fault",
                "3,6,3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered" in out
        assert "detours         : 0" in out

    def test_route_policies(self, capsys):
        for policy in ("limited-global", "no-information", "global-information"):
            code = main(
                [
                    "route",
                    "--radix",
                    "8",
                    "--dims",
                    "2",
                    "--source",
                    "0,0",
                    "--destination",
                    "7,7",
                    "--random-faults",
                    "4",
                    "--policy",
                    policy,
                ]
            )
            assert code == 0
            assert policy in capsys.readouterr().out

    def test_route_bad_coordinate(self):
        with pytest.raises(SystemExit):
            main(["route", "--dims", "3", "--source", "0,0", "--destination", "1,1,1"])


class TestSimulateCommand:
    def test_simulate_summary(self, capsys):
        code = main(
            [
                "simulate",
                "--radix",
                "10",
                "--dims",
                "2",
                "--faults",
                "3",
                "--messages",
                "4",
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery_rate" in out
        assert "mean_detours" in out


class TestCompareCommand:
    def test_compare_table(self, capsys):
        code = main(
            ["compare", "--radix", "10", "--dims", "2", "--faults", "6", "--messages", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("limited-global", "no-information", "global-information"):
            assert name in out


class TestConvergenceCommand:
    def test_convergence_output(self, capsys):
        code = main(["convergence", "--radix", "10", "--dims", "3", "--edge", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identification rounds" in out
        assert "boundary rounds" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
