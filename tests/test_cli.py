"""Unit tests for the command-line interface."""

import json

import pytest

from repro.backend import default_backend
from repro.cli import main
from repro.routing import available_routers


class TestRouteCommand:
    def test_route_with_explicit_faults(self, capsys):
        code = main(
            [
                "route",
                "--radix",
                "10",
                "--dims",
                "3",
                "--source",
                "0,4,4",
                "--destination",
                "4,7,4",
                "--fault",
                "3,5,4",
                "--fault",
                "4,5,4",
                "--fault",
                "5,5,3",
                "--fault",
                "3,6,3",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivered" in out
        assert "detours         : 0" in out

    def test_route_policies(self, capsys):
        for policy in ("limited-global", "no-information", "global-information"):
            code = main(
                [
                    "route",
                    "--radix",
                    "8",
                    "--dims",
                    "2",
                    "--source",
                    "0,0",
                    "--destination",
                    "7,7",
                    "--random-faults",
                    "4",
                    "--policy",
                    policy,
                ]
            )
            assert code == 0
            assert policy in capsys.readouterr().out

    def test_route_bad_coordinate(self):
        with pytest.raises(SystemExit):
            main(["route", "--dims", "3", "--source", "0,0", "--destination", "1,1,1"])

    def test_route_rectangular_shape(self, capsys):
        code = main(
            [
                "route",
                "--shape",
                "16,8,4",
                "--source",
                "0,0,0",
                "--destination",
                "15,7,3",
                "--fault",
                "8,4,2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "16x8x4" in out
        assert "delivered" in out

    def test_shape_excludes_radix_and_dims(self):
        for extra in (["--radix", "8"], ["--dims", "2"]):
            with pytest.raises(SystemExit):
                main(
                    ["route", "--shape", "8,8", "--source", "0,0",
                     "--destination", "7,7", *extra]
                )

    def test_bad_shape_rejected(self):
        with pytest.raises(SystemExit):
            main(["route", "--shape", "8,1", "--source", "0,0", "--destination", "7,0"])


class TestSimulateCommand:
    def test_simulate_summary(self, capsys):
        code = main(
            [
                "simulate",
                "--radix",
                "10",
                "--dims",
                "2",
                "--faults",
                "3",
                "--messages",
                "4",
                "--seed",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "delivery_rate" in out
        assert "mean_detours" in out


class TestCompareCommand:
    def test_compare_table(self, capsys):
        code = main(
            ["compare", "--radix", "10", "--dims", "2", "--faults", "6", "--messages", "8"]
        )
        out = capsys.readouterr().out
        assert code == 0
        for name in ("limited-global", "no-information", "global-information"):
            assert name in out


class TestSweepCommand:
    SWEEP_ARGS = [
        "sweep",
        "--shape",
        "8,8",
        "--faults",
        "2,3",
        "--lam",
        "1,2",
        "--messages",
        "4",
        "--seeds",
        "0",
        "--policies",
        "limited-global,no-information",
    ]

    def test_sweep_emits_canonical_json(self, capsys):
        code = main(self.SWEEP_ARGS)
        captured = capsys.readouterr()
        assert code == 0
        payload = json.loads(captured.out)
        assert payload["spec"]["cell_count"] == len(payload["cells"]) == 8
        assert "cells" in captured.err  # human summary goes to stderr

    def test_sweep_workers_do_not_change_output(self, capsys, tmp_path):
        out_a, out_b = tmp_path / "a.json", tmp_path / "b.json"
        assert main([*self.SWEEP_ARGS, "--workers", "1", "--out", str(out_a)]) == 0
        assert main([*self.SWEEP_ARGS, "--workers", "2", "--out", str(out_b)]) == 0
        assert out_a.read_bytes() == out_b.read_bytes()

    def test_sweep_offline_mode(self, capsys):
        code = main(
            [
                "sweep", "--mode", "offline", "--shape", "10,10",
                "--faults", "4", "--messages", "6",
                "--policies", "limited-global,global-information",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {c["policy"] for c in payload["cells"]} == {
            "limited-global", "global-information",
        }

    def test_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            main(["sweep", "--policies", "not-a-policy"])

    def test_sweep_simulate_accepts_every_registered_policy(self, capsys):
        """The registry makes every policy sweepable in simulator mode."""
        code = main(
            [
                "sweep", "--shape", "6,6", "--faults", "2", "--messages", "3",
                "--policies", ",".join(available_routers()),
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert {c["policy"] for c in payload["cells"]} == set(available_routers())

    def test_sweep_contention_flag(self, capsys):
        code = main(
            [
                "sweep", "--shape", "6,6", "--faults", "2", "--messages", "4",
                "--policies", "limited-global", "--contention", "--flits", "200",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spec"]["contention"] is True
        assert payload["spec"]["flits"] == [200]  # flits is a sweepable axis
        for cell in payload["cells"]:
            assert cell["contention"] is True
            assert "blocked_hops" in cell["metrics"]


class TestObservabilityCommands:
    SIMULATE_ARGS = [
        "simulate", "--shape", "8,8", "--faults", "3", "--messages", "8",
        "--contention", "--seed", "2",
    ]

    def test_simulate_trace_out_and_report(self, capsys, tmp_path):
        trace_path = tmp_path / "run.jsonl"
        code = main([*self.SIMULATE_ARGS, "--trace-out", str(trace_path)])
        captured = capsys.readouterr()
        assert code == 0
        assert "trace records" in captured.err
        first = json.loads(trace_path.read_text().splitlines()[0])
        assert first["kind"] == "header"

        assert main(["report", str(trace_path)]) == 0
        report = capsys.readouterr().out
        assert "per-step series" in report
        assert "totals check" in report
        assert "MISMATCH" not in report

    def test_simulate_profile_flag(self, capsys):
        code = main([*self.SIMULATE_ARGS, "--profile"])
        captured = capsys.readouterr()
        assert code == 0
        assert "delivery_rate" in captured.out  # summary untouched
        assert "labeling_round" in captured.err
        if default_backend() == "vector":
            # The message-phase sub-spans live in the probe-table engine;
            # the scalar object path reports the phase as one span.
            assert "probe_advance" in captured.err
        else:
            assert "messages" in captured.err

    def test_sweep_telemetry_out_and_report(self, capsys, tmp_path):
        out_plain = tmp_path / "plain.json"
        out_telemetry = tmp_path / "with-telemetry.json"
        telemetry_path = tmp_path / "telemetry.json"
        sweep = [
            "sweep", "--shape", "6,6", "--faults", "2", "--messages", "4",
            "--policies", "limited-global",
        ]
        assert main([*sweep, "--out", str(out_plain)]) == 0
        assert main(
            [*sweep, "--out", str(out_telemetry),
             "--telemetry-out", str(telemetry_path)]
        ) == 0
        capsys.readouterr()
        # Telemetry lands in its own file; the canonical JSON is unchanged.
        assert out_plain.read_bytes() == out_telemetry.read_bytes()
        payload = json.loads(telemetry_path.read_text())
        assert payload["telemetry"]["version"] == 2
        assert payload["telemetry"]["cells"] == 1

        assert main(["report", str(telemetry_path)]) == 0
        report = capsys.readouterr().out
        assert "sweep telemetry" in report
        assert "utilization" in report

    def test_report_rejects_garbage(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text('{"not": "an artifact"}\n')
        with pytest.raises(SystemExit):
            main(["report", str(bogus)])


class TestConvergenceCommand:
    def test_convergence_output(self, capsys):
        code = main(["convergence", "--radix", "10", "--dims", "3", "--edge", "2"])
        out = capsys.readouterr().out
        assert code == 0
        assert "identification rounds" in out
        assert "boundary rounds" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
