"""Tests for the content-addressed sweep result cache."""

import json

import pytest

from repro.experiments import (
    ExperimentSpec,
    ResultCache,
    cell_fingerprint,
    run_batch,
)


def cached_spec(**overrides) -> ExperimentSpec:
    params = dict(
        name="cache-unit",
        mode="simulate",
        mesh_shapes=((8, 8),),
        policies=("limited-global", "no-information"),
        fault_counts=(2,),
        fault_intervals=(5,),
        lams=(1, 2),
        traffic_sizes=(4,),
        seeds=(0,),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


class TestFingerprint:
    def test_stable_across_calls(self):
        (cell, *_) = cached_spec().cells()
        assert cell_fingerprint(cell) == cell_fingerprint(cell)

    def test_grid_position_excluded(self):
        """The same configuration at a different grid offset must share its
        content address — that is what lets overlapping sweeps hit."""
        import dataclasses

        (cell, *_) = cached_spec().cells()
        moved = dataclasses.replace(cell, index=cell.index + 17)
        assert cell_fingerprint(moved) == cell_fingerprint(cell)

    def test_every_parameter_is_part_of_the_address(self):
        import dataclasses

        (cell, *_) = cached_spec().cells()
        base = cell_fingerprint(cell)
        for change in (
            {"policy": "static-block"},
            {"cell_seed": cell.cell_seed + 1},
            {"faults": cell.faults + 1},
            {"lam": cell.lam + 1},
            {"flits": cell.flits + 1},
            {"scenario": "hotspot"},
            {"contention": not cell.contention},
            {"warmup": cell.warmup + 1},
            {"fault_rate": 0.02},
            {"repair_after": 40},
        ):
            assert cell_fingerprint(dataclasses.replace(cell, **change)) != base, change

    def test_backend_and_version_invalidate(self):
        (cell, *_) = cached_spec().cells()
        base = cell_fingerprint(cell)
        assert cell_fingerprint(cell, backend="scalar") != cell_fingerprint(
            cell, backend="vector"
        )
        assert cell_fingerprint(cell, version="99.0.0") != base


class TestResultCache:
    def test_hit_miss_accounting(self, tmp_path):
        spec = cached_spec()
        cache = ResultCache(tmp_path)
        run_batch(spec, cache=cache)
        assert cache.stats.misses == spec.cell_count
        assert cache.stats.writes == spec.cell_count
        assert cache.stats.hits == 0

        warm = ResultCache(tmp_path)
        run_batch(spec, cache=warm)
        assert warm.stats.hits == spec.cell_count
        assert warm.stats.misses == warm.stats.writes == 0

    def test_cold_warm_mixed_json_byte_identical(self, tmp_path):
        reference = run_batch(cached_spec(), engine="serial").to_json()
        cold = run_batch(cached_spec(), cache=ResultCache(tmp_path)).to_json()
        warm = run_batch(cached_spec(), cache=ResultCache(tmp_path)).to_json()
        assert cold == warm == reference

        # Mixed: a wider spec overlapping the cached one — old cells hit,
        # new cells (the extra seed) miss, JSON matches a cache-free run.
        wider = cached_spec(seeds=(0, 1))
        mixed_cache = ResultCache(tmp_path)
        mixed = run_batch(wider, cache=mixed_cache)
        assert mixed_cache.stats.hits == cached_spec().cell_count
        assert mixed_cache.stats.writes == wider.cell_count - cached_spec().cell_count
        assert mixed.to_json() == run_batch(wider, engine="serial").to_json()

    def test_backend_change_invalidates_entries(self, tmp_path):
        spec = cached_spec(policies=("limited-global",), lams=(1,))
        run_batch(spec, cache=ResultCache(tmp_path, backend="vector"))
        other = ResultCache(tmp_path, backend="scalar")
        (cell,) = spec.cells()
        assert other.get(cell) is None  # different address, not a stale hit

    def test_version_change_invalidates_entries(self, tmp_path):
        spec = cached_spec(policies=("limited-global",), lams=(1,))
        run_batch(spec, cache=ResultCache(tmp_path, version="1.0.0"))
        bumped = ResultCache(tmp_path, version="2.0.0")
        (cell,) = spec.cells()
        assert bumped.get(cell) is None
        assert bumped.stats.misses == 1
        assert bumped.stats.invalid == 0  # absent, not corrupt

    @pytest.mark.parametrize(
        "corruption",
        [
            lambda text: "",  # truncated to nothing
            lambda text: text[: len(text) // 2],  # truncated mid-write
            lambda text: "not json at all {",
            lambda text: json.dumps({"fingerprint": "wrong", "metrics": {}}),
            lambda text: json.dumps({"metrics": "not-a-dict"}),
            lambda text: json.dumps([1, 2, 3]),
        ],
        ids=["empty", "truncated", "garbage", "wrong-fp", "bad-metrics", "not-object"],
    )
    def test_corrupted_entry_recomputed(self, tmp_path, corruption):
        """A broken entry is neither trusted nor fatal: it reads as a miss,
        the cell recomputes, and the entry is healed."""
        spec = cached_spec(policies=("limited-global",), lams=(1,))
        reference = run_batch(spec, engine="serial").to_json()
        cache = ResultCache(tmp_path)
        run_batch(spec, cache=cache)
        (cell,) = spec.cells()
        path = cache.path_for(cell)
        path.write_text(corruption(path.read_text()))

        again = ResultCache(tmp_path)
        batch = run_batch(spec, cache=again)
        assert batch.to_json() == reference
        assert again.stats.invalid >= 1
        assert again.stats.hits == 0
        assert again.stats.writes == 1
        # ... and the healed entry now hits.
        healed = ResultCache(tmp_path)
        assert healed.get(cell) is not None

    def test_entries_shared_across_engines_and_workers(self, tmp_path):
        """A cache warmed by one engine serves every other execution mode."""
        spec = cached_spec()
        run_batch(spec, engine="serial", cache=ResultCache(tmp_path))
        for kwargs in (
            dict(engine="auto", workers=1),
            dict(engine="auto", workers=2),
            dict(engine="stacked", workers=2),
        ):
            cache = ResultCache(tmp_path)
            run_batch(spec, cache=cache, **kwargs)
            assert cache.stats.hits == spec.cell_count, kwargs

    def test_throughput_mode_cached(self, tmp_path):
        spec = ExperimentSpec(
            name="cache-tp",
            mode="throughput",
            mesh_shapes=((6, 6),),
            policies=("limited-global",),
            fault_counts=(2,),
            rates=(0.02, 0.05),
            warmup=8,
            measure=32,
            drain=64,
        )
        reference = run_batch(spec, engine="serial").to_json()
        cache = ResultCache(tmp_path)
        cold = run_batch(spec, cache=cache).to_json()
        warm = run_batch(spec, cache=cache).to_json()
        assert cold == warm == reference
        assert cache.stats.hits == spec.cell_count

    def test_progress_hook_fires_for_hits_and_misses(self, tmp_path):
        spec = cached_spec()
        run_batch(spec, cache=ResultCache(tmp_path))
        seen = []
        run_batch(spec, cache=ResultCache(tmp_path), on_cell_done=seen.append)
        assert sorted(r.cell.index for r in seen) == list(range(spec.cell_count))
