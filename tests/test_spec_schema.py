"""Tests for the versioned spec/result schemas and the deprecation shims.

``repro.spec/v1`` is parsed by one canonical parser —
:meth:`ExperimentSpec.from_dict` — shared by the sweep CLI flags,
``--spec FILE.json`` and the HTTP service body.  These tests pin the
round-trip, the rejection matrix (unknown keys, wrong types, out-of-range
values, all naming the offending field), the one-release deprecation
shims, and the ``on_cell_done`` callback-exception fix.
"""

import json
import warnings

import pytest

from repro.experiments import (
    RESULT_SCHEMA,
    SPEC_SCHEMA,
    BatchCancelled,
    BatchResult,
    ExperimentSpec,
    run_batch,
)
from repro.experiments.stacked import run_batch_stacked


def small_spec(**overrides) -> ExperimentSpec:
    params = dict(
        name="schema-unit",
        mode="simulate",
        mesh_shapes=((5, 5),),
        policies=("limited-global",),
        fault_counts=(2,),
        fault_intervals=(5,),
        lams=(2,),
        traffic_sizes=(4,),
        seeds=(0, 1),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


class TestSpecRoundTrip:
    def test_to_dict_declares_schema(self):
        payload = small_spec().to_dict()
        assert payload["schema"] == SPEC_SCHEMA == "repro.spec/v1"
        assert payload["cell_count"] == small_spec().cell_count

    def test_round_trip_identity(self):
        spec = small_spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_round_trip_through_json_text(self):
        spec = small_spec(scenarios=("random", "hotspot"), flits=(16, 64))
        text = json.dumps(spec.to_dict())
        assert ExperimentSpec.from_dict(json.loads(text)) == spec

    def test_round_trip_preserves_cells(self):
        spec = small_spec()
        parsed = ExperimentSpec.from_dict(spec.to_dict())
        assert parsed.cells() == spec.cells()

    def test_throughput_mode_round_trip(self):
        spec = ExperimentSpec(
            name="tp",
            mode="throughput",
            mesh_shapes=((6, 6),),
            fault_intervals=(5,),
            traffic_sizes=(4,),
            rates=(0.01, 0.02),
            warmup=8,
            measure=16,
            drain=32,
            fault_rates=(0.0, 0.05),
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_cell_count_in_payload_is_ignored_not_trusted(self):
        payload = small_spec().to_dict()
        payload["cell_count"] = 999999  # derived output, never an input
        assert ExperimentSpec.from_dict(payload).cell_count == small_spec().cell_count

    def test_defaults_apply_for_omitted_fields(self):
        spec = ExperimentSpec.from_dict({"schema": SPEC_SCHEMA, "name": "defaults"})
        assert spec.name == "defaults"
        assert spec.mode == "simulate"
        assert spec.mesh_shapes == ((8, 8),)


class TestSpecRejections:
    """Every rejection must name the offending field in its message."""

    def base(self) -> dict:
        return small_spec().to_dict()

    def test_non_dict_payload(self):
        with pytest.raises(ValueError, match="must be a JSON object"):
            ExperimentSpec.from_dict([1, 2, 3])

    def test_unknown_schema_version(self):
        payload = self.base()
        payload["schema"] = "repro.spec/v999"
        with pytest.raises(ValueError, match="unsupported spec schema"):
            ExperimentSpec.from_dict(payload)

    def test_missing_schema_warns_but_parses(self):
        payload = self.base()
        del payload["schema"]
        with pytest.warns(DeprecationWarning, match="schema"):
            spec = ExperimentSpec.from_dict(payload)
        assert spec == small_spec()

    def test_unknown_key_named(self):
        payload = self.base()
        payload["polices"] = ["limited-global"]  # typo'd field
        with pytest.raises(ValueError, match="'polices'"):
            ExperimentSpec.from_dict(payload)

    def test_unknown_key_lists_valid_fields(self):
        payload = self.base()
        payload["bogus"] = 1
        with pytest.raises(ValueError, match="valid fields.*mesh_shapes"):
            ExperimentSpec.from_dict(payload)

    @pytest.mark.parametrize(
        "field,value,expected",
        [
            ("name", 7, "a string"),
            ("mode", ["simulate"], "a string"),
            ("mesh_shapes", "8,8", "mesh shapes"),
            ("mesh_shapes", [[8, True]], "mesh shapes"),
            ("policies", [7], "a string or a list of strings"),
            ("fault_counts", "four", "list of integers"),
            ("fault_counts", [2, True], "list of integers"),
            ("seeds", 1.5, "list of integers"),
            ("contention", "yes", "a boolean"),
            ("fault_rates", "0.1", "list of numbers"),
            ("warmup", True, "an integer"),
            ("warmup", 3.5, "an integer"),
        ],
    )
    def test_wrong_type_names_field(self, field, value, expected):
        payload = self.base()
        payload[field] = value
        with pytest.raises(ValueError) as excinfo:
            ExperimentSpec.from_dict(payload)
        assert repr(field) in str(excinfo.value)
        assert expected in str(excinfo.value)

    @pytest.mark.parametrize(
        "field,value,match",
        [
            ("mode", "warp", "mode must be one of"),
            ("policies", ["no-such-router"], "not a registered router"),
            ("scenarios", ["blizzard"], "not valid in simulate mode"),
            ("mesh_shapes", [[1, 8]], "invalid mesh shape"),
            ("fault_counts", [], "must be non-empty"),
            ("repair_after", -1, "repair_after must be non-negative"),
        ],
    )
    def test_out_of_range_values_rejected(self, field, value, match):
        payload = self.base()
        payload[field] = value
        with pytest.raises(ValueError, match=match):
            ExperimentSpec.from_dict(payload)


class TestResultSchema:
    def test_batch_payload_declares_schema(self):
        batch = run_batch(small_spec(seeds=(0,)))
        payload = batch.to_dict()
        assert payload["schema"] == RESULT_SCHEMA == "repro.result/v1"
        assert payload["spec"]["schema"] == SPEC_SCHEMA

    def test_json_round_trip(self):
        batch = run_batch(small_spec(seeds=(0,)))
        again = BatchResult.from_json(batch.to_json())
        assert again.to_json() == batch.to_json()


class TestDeprecationShims:
    def test_positional_spec_warns_and_matches_keyword(self):
        with pytest.warns(DeprecationWarning, match="positional ExperimentSpec"):
            legacy = ExperimentSpec("legacy", "simulate", ((5, 5),))
        assert legacy == ExperimentSpec(
            name="legacy", mode="simulate", mesh_shapes=((5, 5),)
        )

    def test_keyword_spec_does_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            small_spec()

    def test_positional_duplicate_rejected(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError, match="multiple values for 'name'"):
                ExperimentSpec("twice", name="twice")

    def test_run_batch_positional_options_warn(self):
        spec = small_spec(seeds=(0,))
        with pytest.warns(DeprecationWarning, match="positional run_batch"):
            legacy = run_batch(spec, 1, "serial")
        assert legacy.to_json() == run_batch(spec, workers=1, engine="serial").to_json()

    def test_run_batch_accepts_spec_payload_dict(self):
        spec = small_spec(seeds=(0,))
        assert run_batch(spec.to_dict()).to_json() == run_batch(spec).to_json()

    def test_run_batch_stacked_warns_and_matches_engine(self):
        spec = small_spec(seeds=(0,))
        with pytest.warns(DeprecationWarning, match="run_batch_stacked"):
            legacy = run_batch_stacked(spec)
        assert legacy.to_json() == run_batch(spec, engine="stacked").to_json()

    def test_all_is_the_stable_surface(self):
        import repro.experiments as experiments

        for name in ("ExperimentSpec", "run_batch", "BatchResult",
                     "BatchCancelled", "SPEC_SCHEMA", "RESULT_SCHEMA"):
            assert name in experiments.__all__
        # run_batch_stacked is deprecated, not part of the stable surface.
        assert "run_batch_stacked" not in experiments.__all__


class TestCallbackExceptionHandling:
    def test_raising_callback_does_not_abandon_sweep(self):
        spec = small_spec()
        calls = []

        def hook(result):
            calls.append(result.cell.index)
            raise RuntimeError("observer crashed")

        batch = run_batch(spec, on_cell_done=hook)
        assert len(batch) == spec.cell_count
        assert len(calls) == spec.cell_count  # kept being invoked
        assert batch.to_json() == run_batch(spec).to_json()

    def test_callback_errors_recorded_as_incident(self):
        spec = small_spec(seeds=(0,))

        def hook(result):
            raise RuntimeError("observer crashed")

        batch = run_batch(spec, on_cell_done=hook)
        incidents = batch.telemetry.incidents
        assert [i.kind for i in incidents] == ["callback-error"]
        assert incidents[0].action == "suppressed"
        assert incidents[0].shards == spec.cell_count

    def test_raising_callback_does_not_wedge_pool_engine(self):
        spec = small_spec()

        def hook(result):
            raise RuntimeError("observer crashed")

        batch = run_batch(spec, workers=2, on_cell_done=hook)
        assert len(batch) == spec.cell_count
        assert batch.to_json() == run_batch(spec).to_json()

    def test_batch_cancelled_still_propagates(self):
        spec = small_spec()

        def hook(result):
            raise BatchCancelled("stop now")

        with pytest.raises(BatchCancelled):
            run_batch(spec, on_cell_done=hook)
