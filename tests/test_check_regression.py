"""The CI perf-regression gate (benchmarks/check_regression.py).

The gate script lives next to the benchmarks rather than in the package
(it is CI tooling, not library surface), so it is loaded here by file path.
"""

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"
_spec = importlib.util.spec_from_file_location("check_regression", _SCRIPT)
check_regression = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(check_regression)


def _bench_json(path: Path, means: dict) -> str:
    payload = {
        "machine_info": {"node": "test"},
        "benchmarks": [
            {"name": name, "stats": {"mean": mean}} for name, mean in means.items()
        ],
    }
    path.write_text(json.dumps(payload), encoding="utf-8")
    return str(path)


class TestCompare:
    def test_within_tolerance(self):
        rows, regressions, uncompared = check_regression.compare(
            {"a": 1.0, "b": 2.0}, {"a": 1.4, "b": 1.0}, tolerance=1.5
        )
        assert [(name, ratio) for name, _, _, ratio in rows] == [("a", 1.4), ("b", 0.5)]
        assert regressions == []
        assert uncompared == []

    def test_regression_flagged(self):
        _, regressions, _ = check_regression.compare(
            {"a": 1.0, "b": 1.0}, {"a": 1.51, "b": 1.49}, tolerance=1.5
        )
        assert regressions == ["a"]

    def test_disjoint_names_not_compared(self):
        rows, regressions, uncompared = check_regression.compare(
            {"old": 1.0}, {"new": 99.0}, tolerance=1.5
        )
        assert rows == [] and regressions == []
        assert uncompared == ["new", "old"]


class TestMain:
    def test_pass_exit_zero(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "base.json", {"a": 1.0})
        current = _bench_json(tmp_path / "cur.json", {"a": 1.2})
        assert check_regression.main(["--baseline", baseline, "--current", current]) == 0
        assert "within tolerance" in capsys.readouterr().out

    def test_regression_exit_one(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "base.json", {"a": 1.0, "b": 1.0})
        current = _bench_json(tmp_path / "cur.json", {"a": 2.0, "b": 1.0})
        assert check_regression.main(["--baseline", baseline, "--current", current]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "a" in captured.err

    def test_custom_tolerance(self, tmp_path):
        baseline = _bench_json(tmp_path / "base.json", {"a": 1.0})
        current = _bench_json(tmp_path / "cur.json", {"a": 2.0})
        args = ["--baseline", baseline, "--current", current]
        assert check_regression.main(args + ["--tolerance", "2.5"]) == 0
        assert check_regression.main(args + ["--tolerance", "1.1"]) == 1

    def test_empty_overlap_fails(self, tmp_path, capsys):
        baseline = _bench_json(tmp_path / "base.json", {"old": 1.0})
        current = _bench_json(tmp_path / "cur.json", {"new": 1.0})
        assert check_regression.main(["--baseline", baseline, "--current", current]) == 1
        assert "no overlapping benchmarks" in capsys.readouterr().err

    def test_unreadable_input_exit_two(self, tmp_path):
        current = _bench_json(tmp_path / "cur.json", {"a": 1.0})
        missing = str(tmp_path / "nope.json")
        assert check_regression.main(["--baseline", missing, "--current", current]) == 2
        bad = tmp_path / "bad.json"
        bad.write_text("{\"not\": \"bench json\"}", encoding="utf-8")
        assert (
            check_regression.main(["--baseline", str(bad), "--current", current]) == 2
        )

    def test_committed_baselines_are_loadable(self):
        """The baselines the CI gate reads must stay valid bench JSON."""
        baselines = _SCRIPT.parent / "baselines"
        paths = sorted(baselines.glob("BENCH_*.json"))
        assert len(paths) >= 3  # labeling, throughput, decision
        for path in paths:
            means = check_regression.load_means(str(path))
            assert means and all(m > 0 for m in means.values())

    def test_rejects_nonpositive_tolerance(self, tmp_path):
        baseline = _bench_json(tmp_path / "base.json", {"a": 1.0})
        with pytest.raises(SystemExit):
            check_regression.main(
                ["--baseline", baseline, "--current", baseline, "--tolerance", "0"]
            )
