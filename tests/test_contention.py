"""Tests for the simulator's PCS circuit phase (live link reservations)."""

import pytest

from repro.mesh.topology import Mesh
from repro.pcs.circuit import Circuit, LiveCircuitLedger, ReservationError
from repro.pcs.transfer import TransferModel
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage


class TestLiveCircuitLedger:
    def test_sync_reserves_and_releases_stack_links(self):
        ledger = LiveCircuitLedger()
        ledger.sync(1, [(0, 0), (1, 0), (2, 0)])
        assert ledger.reserved_links == 2
        assert ledger.is_blocked(2, (0, 0), (1, 0))
        assert not ledger.is_blocked(1, (0, 0), (1, 0))  # own links never block
        ledger.sync(1, [(0, 0), (1, 0)])  # backtrack released one link
        assert ledger.reserved_links == 1
        assert not ledger.is_blocked(2, (1, 0), (2, 0))

    def test_sync_direction_independent(self):
        ledger = LiveCircuitLedger()
        ledger.sync(1, [(2, 0), (1, 0)])
        assert ledger.is_blocked(2, (1, 0), (2, 0))

    def test_taking_a_foreign_link_is_an_error(self):
        ledger = LiveCircuitLedger()
        ledger.sync(1, [(0, 0), (1, 0)])
        with pytest.raises(ReservationError):
            ledger.sync(2, [(1, 0), (0, 0)])

    def test_release(self):
        ledger = LiveCircuitLedger()
        ledger.sync(1, [(0, 0), (1, 0), (2, 0)])
        ledger.release(1)
        assert ledger.reserved_links == 0
        assert ledger.active_holders == 0

    def test_timed_hold_and_expiry(self):
        ledger = LiveCircuitLedger()
        ledger.sync(1, [(0, 0), (1, 0)])
        ledger.sync(2, [(5, 5), (5, 6)])
        ledger.hold_until(1, 10)
        ledger.hold_until(2, 7)
        assert ledger.release_expired(6) == 0
        assert ledger.reserved_links == 2
        assert ledger.release_expired(7) == 1
        assert not ledger.is_blocked(9, (5, 5), (5, 6))
        assert ledger.is_blocked(9, (0, 0), (1, 0))
        assert ledger.release_expired(10) == 1
        assert ledger.reserved_links == 0

    def test_double_crossed_link_survives_one_backtrack(self):
        """A probe looping over its own circuit crosses a link twice; one
        backtrack must release one traversal, not the link itself."""
        ledger = LiveCircuitLedger()
        ledger.reserve_link(1, (0, 0), (1, 0))
        ledger.reserve_link(1, (1, 0), (0, 0))  # second traversal, same link
        ledger.release_link(1, (1, 0), (0, 0))
        assert ledger.is_blocked(2, (0, 0), (1, 0))  # still held (count 1)
        ledger.release_link(1, (0, 0), (1, 0))
        assert not ledger.is_blocked(2, (0, 0), (1, 0))

    def test_blocked_for_predicate(self):
        ledger = LiveCircuitLedger()
        ledger.sync(1, [(0, 0), (1, 0)])
        blocked = ledger.blocked_for(2)
        assert blocked((0, 0), (1, 0))
        assert not blocked((1, 0), (2, 0))


class TestHoldSteps:
    def test_hold_scales_with_flits_and_length(self):
        model = TransferModel()
        short = Circuit(((0, 0), (1, 0)))
        long = Circuit(tuple((i, 0) for i in range(6)))
        assert model.hold_steps(short, 0) == 1  # even empty messages hold
        assert model.hold_steps(long, 64) >= model.hold_steps(short, 64)
        assert model.hold_steps(short, 1000) > model.hold_steps(short, 10)

    def test_flits_validation(self):
        with pytest.raises(ValueError):
            TrafficMessage(source=(0, 0), destination=(1, 1), flits=-1)


class TestContentionSimulation:
    def test_two_probes_contend_for_a_shared_link(self):
        """The acceptance scenario: concurrent setups fight over one row."""
        mesh = Mesh.cube(8, 2)
        traffic = [
            TrafficMessage(source=(0, 0), destination=(7, 0), start_time=0, flits=400),
            TrafficMessage(source=(1, 0), destination=(6, 0), start_time=1, flits=64),
        ]
        sim = Simulator(mesh, traffic=traffic, config=SimulationConfig(contention=True))
        stats = sim.run().stats
        assert stats.delivery_rate == 1.0
        first, second = stats.messages
        # The later probe found its row links reserved and walked around.
        assert second.blocked_hops > 0
        assert stats.total_blocked_hops > 0
        assert second.result.hops > second.result.min_distance
        assert stats.circuits_reserved == 2
        assert stats.peak_reserved_links > 0
        assert stats.mean_reserved_links > 0

    def test_contention_disabled_is_contention_free(self):
        """Without --contention nothing is reserved and nothing blocks."""
        mesh = Mesh.cube(8, 2)
        traffic = [
            TrafficMessage(source=(0, 0), destination=(7, 0), start_time=0),
            TrafficMessage(source=(1, 0), destination=(6, 0), start_time=1),
        ]
        sim = Simulator(mesh, traffic=traffic)
        stats = sim.run().stats
        assert sim.circuits is None
        assert stats.total_blocked_hops == 0
        assert stats.total_setup_retries == 0
        assert stats.circuits_reserved == 0
        assert stats.peak_reserved_links == 0
        # Both probes go straight down the shared row.
        assert all(m.result.hops == m.result.min_distance for m in stats.messages)

    def test_circuit_hold_time_scales_with_flits(self):
        """A longer message holds its circuit longer, delaying the rival."""

        def finish_step_of_second(flits):
            mesh = Mesh.cube(8, 2)
            traffic = [
                TrafficMessage(
                    source=(0, 3), destination=(7, 3), start_time=0, flits=flits
                ),
                TrafficMessage(
                    source=(0, 3), destination=(7, 3), start_time=9, flits=16
                ),
            ]
            config = SimulationConfig(contention=True, max_probe_lifetime=500)
            sim = Simulator(mesh, traffic=traffic, config=config)
            stats = sim.run().stats
            assert stats.delivery_rate == 1.0
            return stats.messages[-1].finish_step

        assert finish_step_of_second(2000) > finish_step_of_second(16)

    def test_held_circuit_released_after_transfer(self):
        mesh = Mesh.cube(8, 2)
        traffic = [TrafficMessage(source=(0, 0), destination=(7, 0), flits=100)]
        sim = Simulator(mesh, traffic=traffic, config=SimulationConfig(contention=True))
        stats = sim.run().stats
        assert stats.circuits_reserved == 1
        assert sim.circuits is not None
        # run() drains all work, including the hold expiry.
        assert sim.circuits.reserved_links == 0

    def test_fenced_in_source_waits_instead_of_unreachable(self):
        """Transient reservations at the source must not read as fault
        unreachability: the probe waits and delivers once links free up."""
        mesh = Mesh.cube(4, 2)
        traffic = [
            # Two long transfers into the corner hold both of (0,0)'s links.
            TrafficMessage(source=(3, 0), destination=(0, 0), start_time=0, flits=800),
            TrafficMessage(source=(0, 3), destination=(0, 0), start_time=0, flits=800),
            # A probe *from* the fenced-in corner, injected mid-hold.
            TrafficMessage(source=(0, 0), destination=(3, 3), start_time=4, flits=8),
        ]
        config = SimulationConfig(contention=True, max_probe_lifetime=500)
        sim = Simulator(mesh, traffic=traffic, config=config)
        stats = sim.run().stats
        assert stats.delivery_rate == 1.0  # a fault-free mesh delivers everything
        fenced = stats.messages[-1]
        assert fenced.message.source == (0, 0)
        assert fenced.setup_retries > 0  # it had to wait out the holds

    def test_global_information_waits_out_reservations(self):
        """A fenced-in global probe waits (setup retries) instead of failing."""
        mesh = Mesh.cube(8, 2)
        traffic = [
            TrafficMessage(source=(0, 0), destination=(7, 0), start_time=0, flits=600),
            TrafficMessage(source=(1, 0), destination=(5, 0), start_time=2, flits=16),
        ]
        config = SimulationConfig(
            contention=True, router="global-information", max_probe_lifetime=500
        )
        sim = Simulator(mesh, traffic=traffic, config=config)
        stats = sim.run().stats
        assert stats.delivery_rate == 1.0
        assert stats.total_blocked_hops + stats.total_setup_retries > 0

    def test_contention_stats_in_summary(self):
        mesh = Mesh.cube(6, 2)
        sim = Simulator(mesh, config=SimulationConfig(contention=True))
        summary = sim.run().stats.summary()
        for key in (
            "blocked_hops",
            "setup_retries",
            "circuits_reserved",
            "mean_reserved_links",
            "peak_reserved_links",
        ):
            assert key in summary
