"""Mid-run fault teardown, recovery, and the MTBF/burst fault workloads.

A dynamic fault must tear down — within the *same step* it fires — every
in-flight probe whose partial circuit crosses the failed node and every
delivered circuit still holding a link into it, identically on the scalar
object path and the vectorized :class:`~repro.core.probe_table.ProbeTable`
path.  These tests pin that contract with a backend x contention x policy
parity matrix, a one-step ledger-release assertion, a crafted
fault-dropped-circuit scenario, and determinism/validity checks on the
seeded fault workload generators.
"""

import numpy as np
import pytest

from repro.backend import ENV_VAR as BACKEND_ENV_VAR
from repro.backend import SCALAR, VECTOR
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.faults.workload import (
    FaultWorkload,
    burst_schedule,
    mtbf_schedule,
    workload_schedule,
)
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage
from repro.throughput import MeasurementWindows, run_throughput_point
from repro.workloads.traffic import random_pairs

BACKENDS = (SCALAR, VECTOR)

#: Policies exercising distinct information models through the same engine.
PARITY_POLICIES = ("limited-global", "no-information", "boundary-only")


def _mid_run_schedule():
    """Faults landing while traffic is in flight, each later recovering."""
    return DynamicFaultSchedule(
        events=(
            FaultEvent(time=4, node=(4, 4)),
            FaultEvent(time=7, node=(5, 3)),
            FaultEvent(time=18, node=(4, 4), kind=FaultEventKind.RECOVERY),
            FaultEvent(time=22, node=(5, 3), kind=FaultEventKind.RECOVERY),
        )
    )


def _traffic(mesh, count=24, seed=7):
    rng = np.random.default_rng(seed)
    pairs = random_pairs(
        mesh, count, rng, min_distance=4, exclude=[(4, 4), (5, 3)]
    )
    return [
        TrafficMessage(source=s, destination=d, start_time=i % 6, flits=32)
        for i, (s, d) in enumerate(pairs)
    ]


def _fingerprint(sim):
    """Everything observable about a finished run, order-sensitive."""
    per_message = tuple(
        (
            record.message.source,
            record.message.destination,
            record.result.outcome.name,
            tuple(record.result.path),
            record.result.hops,
            record.result.blocked_hops,
            record.result.setup_retries,
            record.finish_step,
        )
        for record in sim.stats.messages
    )
    return sim.stats.summary(), per_message


class TestMidRunFaultParity:
    @pytest.mark.parametrize("policy", PARITY_POLICIES)
    @pytest.mark.parametrize("contention", [False, True])
    def test_backends_identical_through_fault_and_recovery(
        self, policy, contention
    ):
        mesh = Mesh((10, 10))
        fingerprints = {}
        for backend in BACKENDS:
            config = SimulationConfig(
                lam=2, router=policy, contention=contention, backend=backend
            )
            sim = Simulator(
                mesh,
                schedule=_mid_run_schedule(),
                traffic=_traffic(mesh),
                config=config,
            )
            sim.run()
            fingerprints[backend] = _fingerprint(sim)
        assert fingerprints[SCALAR] == fingerprints[VECTOR]

    def test_table_path_engaged_on_vector(self):
        """The matrix above must actually compare two different engines."""
        mesh = Mesh((10, 10))
        sims = {
            backend: Simulator(
                mesh,
                schedule=_mid_run_schedule(),
                traffic=_traffic(mesh),
                config=SimulationConfig(
                    lam=2,
                    router="limited-global",
                    contention=True,
                    backend=backend,
                ),
            )
            for backend in BACKENDS
        }
        assert sims[VECTOR]._table is not None
        assert sims[SCALAR]._table is None


class TestLedgerReleaseOnFault:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_no_reserved_link_incident_to_failed_node_after_fault_step(
        self, backend
    ):
        """Teardown frees the dead node's links within the fault's own step."""
        mesh = Mesh((10, 10))
        fault_time, node = 6, (4, 4)
        schedule = DynamicFaultSchedule(
            events=(FaultEvent(time=fault_time, node=node),)
        )
        config = SimulationConfig(
            lam=2, router="limited-global", contention=True, backend=backend
        )
        sim = Simulator(
            mesh, schedule=schedule, traffic=_traffic(mesh, count=40), config=config
        )
        while sim._step <= fault_time and sim._work_remaining():
            sim.step()
        assert sim._step > fault_time
        for u, v in sim.circuits.reserved_link_set():
            assert node != u and node != v

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_delivered_circuit_crossing_fault_is_dropped(self, backend):
        """A circuit mid-transfer over the failed node counts as fault-dropped."""
        mesh = Mesh((10, 10))
        # One message delivered quickly, then held for a long transfer
        # (large flit count); the fault lands on an interior path node
        # during the hold, so release_crossing must drop exactly it.
        traffic = [
            TrafficMessage(
                source=(1, 1), destination=(7, 1), start_time=0, flits=4096
            )
        ]
        schedule = DynamicFaultSchedule(events=(FaultEvent(time=12, node=(4, 1)),))
        config = SimulationConfig(
            lam=2, router="limited-global", contention=True, backend=backend
        )
        sim = Simulator(mesh, schedule=schedule, traffic=traffic, config=config)
        sim.run()
        record = sim.stats.messages[0]
        assert record.delivered
        assert record.finish_step < 12  # delivered before the fault
        assert (4, 1) in record.result.path
        assert sim.stats.fault_dropped_circuits == 1
        assert sim.stats.summary()["fault_dropped"] == 1


class TestFaultWorkload:
    def test_mtbf_schedule_deterministic(self, mesh2d):
        workload = FaultWorkload(rate=0.05, repair_after=20, start=10, stop=200)
        a = mtbf_schedule(mesh2d, workload, seed=42)
        b = mtbf_schedule(mesh2d, workload, seed=42)
        assert a.events == b.events
        c = mtbf_schedule(mesh2d, workload, seed=43)
        assert a.events != c.events

    def test_mtbf_schedule_validity(self, mesh2d):
        workload = FaultWorkload(rate=0.1, repair_after=15, start=5, stop=300)
        schedule = mtbf_schedule(mesh2d, workload, seed=3)
        faults = schedule.fault_events
        assert faults, "rate 0.1 over ~300 steps must produce faults"
        # Interior nodes only (margin 1), each node faulted at most once.
        nodes = [e.node for e in faults]
        assert len(nodes) == len(set(nodes))
        for node in nodes:
            assert all(1 <= c < s - 1 for c, s in zip(node, mesh2d.shape))
        # Every fault recovers exactly repair_after steps later.
        recoveries = {e.node: e.time for e in schedule.recovery_events}
        for event in faults:
            assert recoveries[event.node] == event.time + 15
        # Fault times stay inside [start, stop).
        assert all(5 <= e.time < 300 for e in faults)

    def test_mtbf_respects_exclusions_and_initial_faults(self, mesh2d):
        initial = [(3, 3), (6, 6)]
        workload = FaultWorkload(rate=0.2, repair_after=0, start=0, stop=400)
        schedule = mtbf_schedule(
            mesh2d, workload, seed=1, initial=initial, exclude=[(5, 5)]
        )
        assert schedule.initial_faults == {(3, 3), (6, 6)}
        dynamic = {e.node for e in schedule.fault_events}
        assert not dynamic & {(3, 3), (6, 6), (5, 5)}

    def test_burst_schedule_counts_and_validation(self, mesh2d):
        schedule = burst_schedule(mesh2d, 5, at=50, seed=9, repair_after=30)
        faults = schedule.fault_events
        assert len(faults) == 5
        assert all(e.time == 50 for e in faults)
        assert len(schedule.recovery_events) == 5
        assert all(e.time == 80 for e in schedule.recovery_events)
        with pytest.raises(Exception):
            burst_schedule(mesh2d, 10_000, at=1, seed=0)

    def test_workload_validation(self):
        with pytest.raises(ValueError):
            FaultWorkload(rate=-0.1)
        with pytest.raises(ValueError):
            FaultWorkload(rate=1.5)
        with pytest.raises(ValueError):
            FaultWorkload(rate=0.1, repair_after=-1)
        with pytest.raises(ValueError):
            FaultWorkload(rate=0.1, start=10, stop=5)
        with pytest.raises(ValueError):
            FaultWorkload(rate=0.1, max_faults=-1)
        # rate 0 is the valid "no dynamic faults" degenerate case.
        workload = FaultWorkload(rate=0.0, stop=100)
        assert not mtbf_schedule(Mesh((8, 8)), workload, seed=0).events

    def test_workload_schedule_replayable_into_simulator(self, mesh2d):
        """A generated schedule passes the schedule's own validation and runs."""
        schedule = workload_schedule(
            mesh2d, rate=0.05, start=5, stop=60, repair_after=20, seed=11
        )
        sim = Simulator(
            mesh2d,
            schedule=schedule,
            traffic=_traffic(mesh2d, count=10),
            config=SimulationConfig(lam=2, router="limited-global"),
        )
        sim.run()
        assert sim.stats.summary()["fault_changes"] >= len(schedule.fault_events)


class TestThroughputPointUnderFaults:
    def test_rows_identical_across_backends(self, monkeypatch):
        """The windowed measurement under an MTBF workload is backend-free."""
        rows = {}
        windows = MeasurementWindows(warmup=32, measure=96, drain=192)
        for backend in BACKENDS:
            monkeypatch.setenv(BACKEND_ENV_VAR, backend)
            result = run_throughput_point(
                (8, 8),
                "limited-global",
                "uniform",
                0.02,
                faults=2,
                seed=3,
                fault_rate=0.04,
                repair_after=24,
                windows=windows,
            )
            rows[backend] = result.to_row()
        assert rows[SCALAR] == rows[VECTOR]
        assert rows[VECTOR]["fault_events"] > 0
        assert "slo_dip_depth" in rows[VECTOR]
        assert "slo_time_to_recover" in rows[VECTOR]

    def test_explicit_schedule_overrides_rate(self):
        schedule = DynamicFaultSchedule(
            events=(FaultEvent(time=40, node=(4, 4)),),
            initial_faults={(2, 2)},
        )
        windows = MeasurementWindows(warmup=16, measure=64, drain=128)
        result = run_throughput_point(
            (8, 8),
            "limited-global",
            "uniform",
            0.02,
            seed=5,
            fault_schedule=schedule,
            fault_rate=0.5,  # ignored: the explicit schedule wins
            windows=windows,
        )
        assert result.fault_events == 1

    def test_static_runs_unchanged(self):
        """No fault workload: rows carry no fault/SLO columns (back-compat)."""
        windows = MeasurementWindows(warmup=16, measure=64, drain=128)
        result = run_throughput_point(
            (8, 8), "limited-global", "uniform", 0.02, seed=5, windows=windows
        )
        assert result.fault_events == 0
        assert result.slo is None
        row = result.to_row()
        assert "fault_events" not in row
        assert "slo_dip_depth" not in row
