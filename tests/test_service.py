"""Tests for the HTTP experiment service (repro.service).

Two layers: :class:`JobManager` unit tests drive the job lifecycle with a
controllable stand-in for ``run_batch`` (deterministic mid-run
cancellation, priority order, backpressure), and the HTTP tests run a
real server on a loopback port, asserting the acceptance contract — the
bytes ``GET /v1/jobs/{id}/result`` serves are identical to what
``repro-mesh sweep --out`` writes for the same spec, cold and cache-warm.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.experiments import SPEC_SCHEMA
from repro.experiments.runner import BatchCancelled
from repro.service import (
    CANCELLED,
    DONE,
    QUEUED,
    RUNNING,
    Draining,
    InvalidTransition,
    JobManager,
    QueueFull,
    UnknownJob,
    make_service,
)

WAIT = 30.0  # generous; every wait in here normally resolves in ms


def spec_payload(**overrides) -> dict:
    payload = {
        "schema": SPEC_SCHEMA,
        "name": "service-unit",
        "mode": "simulate",
        "mesh_shapes": [[5, 5]],
        "policies": ["limited-global"],
        "fault_counts": [2],
        "fault_intervals": [5],
        "lams": [2],
        "traffic_sizes": [4],
        "seeds": [0, 1],
    }
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------------- #
# controllable run_batch stand-in
# ---------------------------------------------------------------------- #
class FakeCellResult:
    def __init__(self, index: int) -> None:
        self.index = index

    def to_dict(self) -> dict:
        return {"index": self.index, "metrics": {"delivery_rate": 1.0}}


class GatedRunner:
    """A ``run_batch`` stand-in that lands one cell per :meth:`step` call."""

    def __init__(self) -> None:
        self.gate = threading.Semaphore(0)
        self.entered = threading.Event()

    def step(self, n: int = 1) -> None:
        for _ in range(n):
            self.gate.release()

    def __call__(self, spec, *, on_cell_done=None, **kwargs):
        self.entered.set()
        for index in range(spec.cell_count):
            if not self.gate.acquire(timeout=WAIT):  # pragma: no cover
                raise RuntimeError("test gate never released")
            if on_cell_done is not None:
                on_cell_done(FakeCellResult(index))

        class FakeBatch:
            def to_json(self) -> str:
                return json.dumps({"fake": spec.cell_count})

            def telemetry_dict(self):
                return None

        return FakeBatch()


@pytest.fixture
def gated(monkeypatch):
    runner = GatedRunner()
    monkeypatch.setattr("repro.service.jobs.run_batch", runner)
    return runner


# ---------------------------------------------------------------------- #
# JobManager unit tests
# ---------------------------------------------------------------------- #
class TestJobLifecycle:
    def test_submit_runs_to_done(self):
        manager = JobManager(max_running=1)
        try:
            job = manager.submit(spec_payload())
            assert job.done.wait(WAIT)
            assert job.state == DONE
            assert job.cells_done == job.cells_total == 2
            assert job.result_json is not None
            events = [json.loads(line) for line in job.lines]
            assert [e["event"] for e in events] == ["cell", "cell", "end"]
            assert events[-1]["state"] == DONE
            assert all(e["job"] == job.id for e in events)
        finally:
            manager.shutdown()

    def test_submit_envelope_with_priority(self):
        manager = JobManager()
        try:
            job = manager.submit({"spec": spec_payload(), "priority": 7})
            assert job.priority == 7
            assert job.done.wait(WAIT)
        finally:
            manager.shutdown()

    @pytest.mark.parametrize(
        "payload,match",
        [
            ({"spec": spec_payload(), "nice": 1}, "unknown submit field"),
            ({"spec": spec_payload(), "priority": "high"}, "expected an integer"),
            ({"spec": spec_payload(), "priority": True}, "expected an integer"),
            ({"schema": SPEC_SCHEMA, "bogus": 1}, "unknown spec field"),
        ],
    )
    def test_bad_submissions_rejected(self, payload, match):
        manager = JobManager()
        try:
            with pytest.raises(ValueError, match=match):
                manager.submit(payload)
        finally:
            manager.shutdown()

    def test_priority_order_with_fifo_ties(self, gated):
        manager = JobManager(max_running=1)
        try:
            blocker = manager.submit(spec_payload(seeds=[0]))
            assert gated.entered.wait(WAIT)
            low = manager.submit({"spec": spec_payload(seeds=[1]), "priority": 0})
            high = manager.submit({"spec": spec_payload(seeds=[2]), "priority": 5})
            low2 = manager.submit({"spec": spec_payload(seeds=[3]), "priority": 0})
            gated.step(4)  # blocker's cell + the three queued jobs' cells
            assert blocker.done.wait(WAIT)
            assert high.done.wait(WAIT) and low.done.wait(WAIT) and low2.done.wait(WAIT)
            assert high.started < low.started < low2.started
        finally:
            manager.shutdown()

    def test_cancel_queued_is_immediate(self, gated):
        manager = JobManager(max_running=1)
        try:
            manager.submit(spec_payload(seeds=[0]))
            assert gated.entered.wait(WAIT)
            queued = manager.submit(spec_payload(seeds=[1]))
            assert queued.state == QUEUED
            cancelled = manager.cancel(queued.id)
            assert cancelled.state == CANCELLED
            assert json.loads(queued.lines[-1])["state"] == CANCELLED
            gated.step(2)  # let the blocker finish
        finally:
            manager.shutdown()

    def test_cancel_running_stops_at_cell_boundary(self, gated):
        manager = JobManager(max_running=1)
        try:
            job = manager.submit(spec_payload(seeds=[0, 1, 2, 3]))  # 4 cells
            assert gated.entered.wait(WAIT)
            gated.step(1)  # land exactly one cell
            deadline = threading.Event()
            for _ in range(200):
                if job.cells_done >= 1:
                    break
                deadline.wait(0.01)
            assert job.cells_done == 1
            assert manager.cancel(job.id).state == RUNNING  # cooperative
            gated.step(3)  # unblock; the hook raises BatchCancelled next cell
            assert job.done.wait(WAIT)
            assert job.state == CANCELLED
            assert job.cells_done < job.cells_total
            assert json.loads(job.lines[-1])["state"] == CANCELLED
        finally:
            manager.shutdown()

    def test_cancel_terminal_job_rejected(self):
        manager = JobManager()
        try:
            job = manager.submit(spec_payload(seeds=[0]))
            assert job.done.wait(WAIT)
            with pytest.raises(InvalidTransition):
                manager.cancel(job.id)
        finally:
            manager.shutdown()

    def test_unknown_job(self):
        manager = JobManager()
        try:
            with pytest.raises(UnknownJob):
                manager.get("j-999999")
        finally:
            manager.shutdown()

    def test_queue_full_backpressure(self, gated):
        manager = JobManager(max_running=1, max_queued=1)
        try:
            manager.submit(spec_payload(seeds=[0]))
            assert gated.entered.wait(WAIT)
            manager.submit(spec_payload(seeds=[1]))  # fills the queue
            with pytest.raises(QueueFull) as excinfo:
                manager.submit(spec_payload(seeds=[2]))
            assert excinfo.value.retry_after >= 1
            gated.step(2)
        finally:
            manager.shutdown()

    def test_drain_refuses_new_work(self):
        manager = JobManager()
        try:
            job = manager.submit(spec_payload(seeds=[0]))
            assert manager.drain(WAIT)
            assert job.state == DONE
            with pytest.raises(Draining):
                manager.submit(spec_payload(seeds=[1]))
            assert manager.describe()["status"] == "draining"
        finally:
            manager.shutdown()

    def test_failed_job_reports_error(self, monkeypatch):
        def boom(spec, **kwargs):
            raise RuntimeError("worker exploded")

        monkeypatch.setattr("repro.service.jobs.run_batch", boom)
        manager = JobManager()
        try:
            job = manager.submit(spec_payload(seeds=[0]))
            assert job.done.wait(WAIT)
            assert job.state == "failed"
            assert "worker exploded" in job.error
            assert json.loads(job.lines[-1])["state"] == "failed"
        finally:
            manager.shutdown()


# ---------------------------------------------------------------------- #
# HTTP layer against a live server
# ---------------------------------------------------------------------- #
def request(base, method, path, body=None, as_json=True):
    data = json.dumps(body).encode() if isinstance(body, dict) else body
    req = urllib.request.Request(base + path, data=data, method=method)
    try:
        with urllib.request.urlopen(req, timeout=WAIT) as resp:
            payload = resp.read()
            return resp.status, dict(resp.headers), (
                json.loads(payload) if as_json else payload
            )
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        return exc.code, dict(exc.headers), (
            json.loads(payload) if as_json else payload
        )


@pytest.fixture(scope="class")
def live(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("service-cache")
    service = make_service(port=0, max_running=2, cache_dir=str(cache_dir))
    host, port = service.start_background()
    try:
        yield f"http://{host}:{port}"
    finally:
        service.stop_background()


@pytest.mark.usefixtures("live")
class TestServiceHTTP:
    def test_health(self, live):
        status, _, body = request(live, "GET", "/v1/health")
        assert status == 200
        assert body["status"] == "ok"
        assert body["schemas"] == {
            "spec": "repro.spec/v1",
            "result": "repro.result/v1",
        }

    def test_submit_stream_result_matches_offline_sweep(self, live, tmp_path):
        payload = spec_payload(name="http-parity")
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(payload))
        out_file = tmp_path / "offline.json"
        assert cli_main(["sweep", "--spec", str(spec_file), "--out", str(out_file)]) == 0
        offline = out_file.read_bytes()

        status, headers, body = request(live, "POST", "/v1/jobs", payload)
        assert status == 202
        job_id = body["job"]["id"]
        assert headers["Location"] == f"/v1/jobs/{job_id}"

        # The stream replays from the start and follows to the end event.
        status, headers, raw = request(
            live, "GET", f"/v1/jobs/{job_id}/stream", as_json=False
        )
        assert status == 200
        assert headers["Content-Type"] == "application/x-ndjson"
        events = [json.loads(line) for line in raw.decode().splitlines()]
        assert events[0]["event"] == "job"
        cells = [e for e in events if e["event"] == "cell"]
        assert len(cells) == 2
        assert all(e["job"] == job_id for e in cells)
        assert events[-1] == {
            "event": "end",
            "job": job_id,
            "state": "done",
            "cells": 2,
            "cells_done": 2,
            "cache": events[-1]["cache"],  # stats asserted below
        }

        # Acceptance: served result bytes == the CLI's --out file, cold...
        status, _, served = request(
            live, "GET", f"/v1/jobs/{job_id}/result", as_json=False
        )
        assert status == 200
        assert served == offline

        # ...and cache-warm: a second submission of the same spec hits for
        # every cell and serves the very same bytes.
        status, _, body = request(live, "POST", "/v1/jobs", payload)
        warm_id = body["job"]["id"]
        request(live, "GET", f"/v1/jobs/{warm_id}/stream", as_json=False)
        status, _, body = request(live, "GET", f"/v1/jobs/{warm_id}")
        assert body["job"]["state"] == "done"
        assert body["job"]["cache"]["hits"] == 2
        assert body["job"]["cache"]["misses"] == 0
        status, _, served_warm = request(
            live, "GET", f"/v1/jobs/{warm_id}/result", as_json=False
        )
        assert served_warm == offline

    def test_concurrent_overlapping_jobs_share_cache_without_crosstalk(self, live):
        # Same spec name => same cell seeds, so the seed-1 cell is shared.
        base = spec_payload(name="overlap", seeds=[0, 1])
        status, _, body = request(live, "POST", "/v1/jobs", base)
        first = body["job"]["id"]
        request(live, "GET", f"/v1/jobs/{first}/stream", as_json=False)

        overlapping = [
            spec_payload(name="overlap", seeds=[1, 2]),
            spec_payload(name="overlap", seeds=[1, 3]),
        ]
        ids, streams = [], {}
        for payload in overlapping:
            status, _, body = request(live, "POST", "/v1/jobs", payload)
            assert status == 202
            ids.append(body["job"]["id"])

        def pull(job_id):
            _, _, raw = request(
                live, "GET", f"/v1/jobs/{job_id}/stream", as_json=False
            )
            streams[job_id] = [json.loads(line) for line in raw.decode().splitlines()]

        threads = [threading.Thread(target=pull, args=(jid,)) for jid in ids]
        for t in threads:
            t.start()
        for t in threads:
            t.join(WAIT)

        for jid in ids:
            events = streams[jid]
            # No cross-talk: every line of a job's stream names that job.
            assert all(e["job"] == jid for e in events if e["event"] != "job")
            assert events[-1]["state"] == "done"
            # The overlapping seed-1 cell came from the shared cache.
            assert events[-1]["cache"]["hits"] >= 1

    def test_submit_rejects_bad_spec_naming_field(self, live):
        payload = spec_payload()
        payload["fault_counts"] = "four"
        status, _, body = request(live, "POST", "/v1/jobs", payload)
        assert status == 400
        assert "'fault_counts'" in body["error"]

    def test_submit_rejects_non_json_body(self, live):
        status, _, body = request(live, "POST", "/v1/jobs", b"not json")
        assert status == 400
        assert "not valid JSON" in body["error"]

    def test_unknown_job_404(self, live):
        status, _, body = request(live, "GET", "/v1/jobs/j-999999")
        assert status == 404

    def test_unknown_route_404_and_bad_method_405(self, live):
        assert request(live, "GET", "/nope")[0] == 404
        assert request(live, "DELETE", "/v1/health")[0] == 405

    def test_result_of_unfinished_job_409(self, live):
        # A fresh spec (cold cache) is extremely unlikely to finish between
        # the submit and the immediate result fetch; 409 carries Retry-After.
        payload = spec_payload(name="not-done-yet", seeds=list(range(6)))
        status, _, body = request(live, "POST", "/v1/jobs", payload)
        job_id = body["job"]["id"]
        status, headers, body = request(live, "GET", f"/v1/jobs/{job_id}/result")
        if status == 409:  # job still queued/running
            assert "Retry-After" in headers
        else:  # raced to completion: then the result must simply be there
            assert status == 200
        request(live, "GET", f"/v1/jobs/{job_id}/stream", as_json=False)

    def test_job_listing(self, live):
        status, _, body = request(live, "GET", "/v1/jobs")
        assert status == 200
        assert isinstance(body["jobs"], list) and body["jobs"]


class TestServiceBackpressure:
    def test_429_retry_after_and_http_cancel(self, monkeypatch):
        runner = GatedRunner()
        monkeypatch.setattr("repro.service.jobs.run_batch", runner)
        service = make_service(port=0, max_running=1, max_queued=1)
        host, port = service.start_background()
        base = f"http://{host}:{port}"
        try:
            status, _, body = request(
                base, "POST", "/v1/jobs", spec_payload(seeds=[0, 1])
            )
            assert status == 202
            running_id = body["job"]["id"]
            assert runner.entered.wait(WAIT)

            status, _, body = request(base, "POST", "/v1/jobs", spec_payload(seeds=[2]))
            assert status == 202  # fills the one queue slot
            queued_id = body["job"]["id"]

            status, headers, body = request(
                base, "POST", "/v1/jobs", spec_payload(seeds=[3])
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "queue full" in body["error"]

            # DELETE the queued job: immediate terminal cancel (200).
            status, _, body = request(base, "DELETE", f"/v1/jobs/{queued_id}")
            assert status == 200
            assert body["job"]["state"] == "cancelled"

            # Cancel the running job: accepted (202), lands at the next
            # cell boundary once the gate opens.
            status, _, body = request(
                base, "POST", f"/v1/jobs/{running_id}/cancel"
            )
            assert status == 202
            assert body["job"]["cancel_requested"] is True
            runner.step(2)
            status, _, raw = request(
                base, "GET", f"/v1/jobs/{running_id}/stream", as_json=False
            )
            events = [json.loads(line) for line in raw.decode().splitlines()]
            assert events[-1]["state"] == "cancelled"

            # Cancelling an already-terminal job conflicts.
            status, _, _ = request(base, "POST", f"/v1/jobs/{running_id}/cancel")
            assert status == 409
        finally:
            runner.step(8)  # never leave the executor blocked on the gate
            service.stop_background()


class TestServeCLI:
    def test_serve_subcommand_registered(self, capsys):
        with pytest.raises(SystemExit):
            cli_main(["serve", "--help"])
        out = capsys.readouterr().out
        assert "--max-queued" in out and "--cache-dir" in out

    def test_sweep_spec_flag_conflicts_with_grid_flags(self, tmp_path):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec_payload()))
        with pytest.raises(SystemExit):
            cli_main(["sweep", "--spec", str(spec_file), "--radix", "5"])

    def test_sweep_spec_flag_round_trip(self, tmp_path, capsys):
        spec_file = tmp_path / "spec.json"
        spec_file.write_text(json.dumps(spec_payload(seeds=[0])))
        assert cli_main(["sweep", "--spec", str(spec_file)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"] == "repro.result/v1"
        assert payload["spec"]["name"] == "service-unit"
