"""Unit tests for the safe-node condition (Theorem 2) and detour bounds (Theorems 3-5)."""

import numpy as np
import pytest

from repro.analysis.detour_bounds import (
    DetourBoundParameters,
    theorem3_distance_bounds,
    theorem4_interval_bound,
    theorem4_max_detours,
    theorem5_interval_bound,
)
from repro.core.block_construction import build_blocks
from repro.core.distribution import converged_information
from repro.core.routing import route_offline
from repro.core.safety import (
    is_safe_source,
    minimal_path_exists,
    shortest_path_length,
    source_destination_box,
)
from repro.faults.injection import uniform_random_faults
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import FIGURE1_FAULTS


class TestSourceDestinationBox:
    def test_box_is_order_independent(self):
        assert source_destination_box((1, 5), (4, 2)) == Region((1, 2), (4, 5))
        assert source_destination_box((4, 2), (1, 5)) == Region((1, 2), (4, 5))


class TestTheorem2:
    def test_safe_when_no_block_in_box(self, mesh3d):
        blocks = build_blocks(mesh3d, FIGURE1_FAULTS).blocks
        assert is_safe_source((0, 0, 0), (2, 2, 2), blocks)
        assert is_safe_source((7, 7, 7), (9, 9, 9), blocks)

    def test_unsafe_when_block_intersects_box(self, mesh3d):
        blocks = build_blocks(mesh3d, FIGURE1_FAULTS).blocks
        assert not is_safe_source((0, 0, 0), (9, 9, 9), blocks)
        assert not is_safe_source((4, 2, 4), (4, 9, 4), blocks)

    def test_accepts_bare_regions(self):
        assert not is_safe_source((0, 0), (5, 5), [Region((2, 2), (3, 3))])
        assert is_safe_source((0, 0), (1, 1), [Region((2, 2), (3, 3))])

    def test_safe_source_has_minimal_path(self, mesh3d):
        """Theorem 2's guarantee: safe source ⇒ minimal path exists."""
        result = build_blocks(mesh3d, FIGURE1_FAULTS)
        blocked = result.state.block_nodes
        assert is_safe_source((6, 0, 5), (9, 4, 9), result.blocks)
        assert minimal_path_exists(mesh3d, blocked, (6, 0, 5), (9, 4, 9))

    def test_safe_source_routes_minimally(self, mesh3d):
        """And the fault-information-based routing actually achieves it."""
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        blocks = build_blocks(mesh3d, FIGURE1_FAULTS).blocks
        source, destination = (6, 0, 5), (9, 4, 9)
        assert is_safe_source(source, destination, blocks)
        result = route_offline(info, source, destination)
        assert result.delivered
        assert result.detours == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_safe_sources_route_minimally_random(self, seed):
        """Randomized Theorem-2 validation in 2-D meshes."""
        rng = np.random.default_rng(seed)
        mesh = Mesh.cube(12, 2)
        faults = uniform_random_faults(mesh, 6, rng)
        result = build_blocks(mesh, faults)
        info = converged_information(mesh, faults)
        pairs_checked = 0
        for _ in range(30):
            source = tuple(int(x) for x in rng.integers(0, 12, size=2))
            destination = tuple(int(x) for x in rng.integers(0, 12, size=2))
            if source == destination:
                continue
            if source in result.state.block_nodes or destination in result.state.block_nodes:
                continue
            if not is_safe_source(source, destination, result.blocks):
                continue
            route = route_offline(info, source, destination)
            assert route.delivered
            assert route.detours == 0
            pairs_checked += 1
        assert pairs_checked > 0


class TestMinimalPathHelpers:
    def test_minimal_path_blocked_by_wall(self, mesh2d):
        # A full wall of blocked nodes across the box kills every minimal path.
        blocked = {(5, y) for y in range(0, 10)}
        assert not minimal_path_exists(mesh2d, blocked, (0, 0), (9, 9))
        # ... but a non-minimal path does not exist either only if the wall
        # spans the whole mesh; here it does, so BFS also fails.
        assert shortest_path_length(mesh2d, blocked, (0, 0), (9, 9)) is None

    def test_shortest_path_length_with_detour(self, mesh2d):
        blocked = {(5, y) for y in range(0, 9)}  # gap at y=9
        assert shortest_path_length(mesh2d, blocked, (0, 0), (9, 0)) == 9 + 2 * 9

    def test_blocked_endpoint(self, mesh2d):
        assert not minimal_path_exists(mesh2d, {(0, 0)}, (0, 0), (3, 3))
        assert shortest_path_length(mesh2d, {(3, 3)}, (0, 0), (3, 3)) is None

    def test_trivial_cases(self, mesh2d):
        assert minimal_path_exists(mesh2d, set(), (2, 2), (2, 2))
        assert shortest_path_length(mesh2d, set(), (2, 2), (2, 2)) == 0


class TestDetourBounds:
    def params(self, **overrides):
        defaults = dict(
            distance=20,
            start_time=10,
            last_fault_time=8,
            intervals=[12, 12, 12],
            labeling_rounds=[2, 2, 2],
            e_max=3,
        )
        defaults.update(overrides)
        return DetourBoundParameters(**defaults)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            self.params(distance=-1)
        with pytest.raises(ValueError):
            self.params(labeling_rounds=[1])
        with pytest.raises(ValueError):
            self.params(last_fault_time=99)
        with pytest.raises(ValueError):
            self.params(e_max=-1)

    def test_theorem3_bounds_decrease(self):
        bounds = theorem3_distance_bounds(self.params())
        # Guaranteed progress per interval is d - 2a - 2e = 12 - 4 - 6 = 2,
        # minus the start offset (t - t_p = 2) in the first interval.
        assert bounds[0] == 20 - (2 - 2)
        assert bounds[1] == bounds[0] - 2
        assert bounds[2] == bounds[1] - 2

    def test_theorem4_interval_bound(self):
        params = self.params()
        k = theorem4_interval_bound(params)
        # Distance 20 + offset 2 shrinking by 2 per interval: not finished
        # within the three scheduled intervals, so the bound is capped by
        # the available intervals + 1.
        assert k == len(params.intervals) + 1

        fast = self.params(intervals=[40, 40, 40])
        assert theorem4_interval_bound(fast) == 1

    def test_theorem4_max_detours(self):
        params = self.params(intervals=[40, 40, 40])
        assert theorem4_max_detours(params) == 1 * (params.e_max + params.a_max)

    def test_theorem5_uses_path_length(self):
        params = self.params()
        # A short existing path (L=2) terminates within two intervals even
        # though the source may be unsafe; the full distance needs four.
        assert theorem5_interval_bound(params, path_length=2) == 2
        assert theorem5_interval_bound(params) == theorem4_interval_bound(params)

    def test_zero_budget(self):
        params = self.params(distance=0, start_time=5, last_fault_time=5)
        assert theorem4_interval_bound(params) == 0
        assert theorem4_max_detours(params) == 0
