"""Property-based tests (hypothesis) for the core data structures and invariants."""

from hypothesis import given, settings, strategies as st

from repro.core.block_construction import build_blocks, labeling_round
from repro.core.distribution import converged_information
from repro.core.identification import oracle_identify
from repro.core.routing import RouteOutcome, route_offline
from repro.core.safety import is_safe_source, minimal_path_exists, shortest_path_length
from repro.core.state import InformationState
from repro.faults.status import NodeStatus
from repro.mesh.coords import manhattan
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh


# --------------------------------------------------------------------- #
# strategies
# --------------------------------------------------------------------- #
def coords(n_dims: int, radix: int):
    return st.tuples(*[st.integers(0, radix - 1) for _ in range(n_dims)])


def regions(n_dims: int, radix: int):
    return st.builds(
        lambda pairs: Region(
            tuple(min(p) for p in pairs), tuple(max(p) for p in pairs)
        ),
        st.tuples(
            *[
                st.tuples(st.integers(0, radix - 1), st.integers(0, radix - 1))
                for _ in range(n_dims)
            ]
        ),
    )


MESH_2D = Mesh.cube(8, 2)
MESH_3D = Mesh.cube(6, 3)


def fault_sets(mesh: Mesh, max_faults: int = 6):
    interior = list(mesh.interior_region(1).iter_points())
    return st.lists(st.sampled_from(interior), min_size=0, max_size=max_faults).map(
        lambda nodes: sorted(set(nodes))
    )


# --------------------------------------------------------------------- #
# region properties
# --------------------------------------------------------------------- #
class TestRegionProperties:
    @given(regions(3, 8))
    def test_volume_matches_iteration(self, region):
        assert sum(1 for _ in region.iter_points()) == region.volume

    @given(regions(2, 10), regions(2, 10))
    def test_intersection_symmetric_and_contained(self, a, b):
        assert a.intersects(b) == b.intersects(a)
        inter = a.intersection(b)
        if inter is not None:
            assert a.contains_region(inter)
            assert b.contains_region(inter)
            assert b.intersection(a) == inter
        else:
            assert not a.intersects(b)

    @given(regions(3, 8))
    def test_expand_shrink_roundtrip(self, region):
        assert region.expand(1).shrink(1) == region
        assert region.expand(2).contains_region(region)

    @given(regions(2, 10), coords(2, 10))
    def test_distance_to_zero_iff_contained(self, region, point):
        assert (region.distance_to(point) == 0) == region.contains(point)

    @given(regions(3, 8))
    def test_union_bound_contains_both(self, region):
        other = region.expand(1)
        union = region.union_bound(other)
        assert union.contains_region(region)
        assert union.contains_region(other)

    @given(st.lists(coords(3, 8), min_size=1, max_size=10))
    def test_oracle_identify_contains_every_point(self, points):
        extent = oracle_identify(points)
        assert all(extent.contains(p) for p in points)
        # Minimality: shrinking along any dimension loses some point.
        for dim in range(3):
            assert any(p[dim] == extent.lo[dim] for p in points)
            assert any(p[dim] == extent.hi[dim] for p in points)


# --------------------------------------------------------------------- #
# mesh properties
# --------------------------------------------------------------------- #
class TestMeshProperties:
    @given(coords(3, 6), coords(3, 6))
    def test_distance_symmetry_and_identity(self, u, v):
        assert manhattan(u, v) == manhattan(v, u)
        assert (manhattan(u, v) == 0) == (u == v)

    @given(coords(3, 6), coords(3, 6))
    def test_preferred_direction_count_equals_differing_dims(self, u, v):
        preferred = MESH_3D.preferred_directions(u, v)
        assert len(preferred) == sum(1 for a, b in zip(u, v) if a != b)

    @given(coords(3, 6))
    def test_neighbor_relation_is_symmetric(self, u):
        for v in MESH_3D.neighbors(u):
            assert u in MESH_3D.neighbors(v)

    @given(coords(2, 8), coords(2, 8))
    def test_moving_preferred_reduces_distance_by_one(self, u, v):
        for direction in MESH_2D.preferred_directions(u, v):
            moved = direction.apply(u)
            assert manhattan(moved, v) == manhattan(u, v) - 1


# --------------------------------------------------------------------- #
# labeling properties
# --------------------------------------------------------------------- #
class TestLabelingProperties:
    @settings(max_examples=40, deadline=None)
    @given(fault_sets(MESH_2D))
    def test_stable_blocks_are_disjoint_filled_rectangles(self, faults):
        result = build_blocks(MESH_2D, faults)
        blocks = result.blocks
        # Fixpoint: one more round changes nothing.
        assert labeling_round(result.state) == 0
        seen = set()
        for block in blocks:
            assert block.is_rectangular
            assert not seen & set(block.nodes)
            seen |= set(block.nodes)
        # Every fault is inside exactly one block.
        for fault in faults:
            assert any(fault in block.nodes for block in blocks)
        # Extents of distinct blocks do not even touch (they would have
        # merged otherwise).
        for i, a in enumerate(blocks):
            for b in blocks[i + 1 :]:
                assert not a.extent.expand(0).intersects(b.extent)

    @settings(max_examples=40, deadline=None)
    @given(fault_sets(MESH_2D))
    def test_disabled_nodes_never_exceed_extent_volume(self, faults):
        result = build_blocks(MESH_2D, faults)
        for block in result.blocks:
            assert len(block.nodes) == block.extent.volume
            assert set(block.faulty_nodes) <= set(block.nodes)

    @settings(max_examples=30, deadline=None)
    @given(fault_sets(MESH_2D, max_faults=4))
    def test_full_recovery_restores_all_enabled(self, faults):
        from repro.core.block_construction import run_block_construction

        result = build_blocks(MESH_2D, faults)
        state = result.state
        for fault in faults:
            state.recover(fault)
        run_block_construction(state)
        assert state.non_enabled_nodes() == {}


# --------------------------------------------------------------------- #
# routing properties
# --------------------------------------------------------------------- #
class TestRoutingProperties:
    @settings(max_examples=30, deadline=None)
    @given(fault_sets(MESH_2D, max_faults=5), coords(2, 8), coords(2, 8))
    def test_routing_terminates_and_is_consistent(self, faults, source, destination):
        info = converged_information(MESH_2D, faults)
        if not info.status(source).is_operational:
            return
        if not info.status(destination).is_operational:
            return
        result = route_offline(info, source, destination)
        assert result.outcome in (RouteOutcome.DELIVERED, RouteOutcome.UNREACHABLE)
        assert result.hops == result.forward_hops + result.backtrack_hops
        if result.outcome is RouteOutcome.DELIVERED:
            assert result.path[0] == source
            assert result.path[-1] == destination
            assert result.hops >= result.min_distance
            # The walk is hop-by-hop.
            for u, v in zip(result.path, result.path[1:]):
                assert manhattan(u, v) == 1
        else:
            # The probe only reports unreachable when BFS agrees there is no
            # path through non-block nodes, or the destination is disabled.
            blocked = set(info.labeling.block_nodes)
            reachable = shortest_path_length(MESH_2D, blocked, source, destination)
            assert reachable is None

    @settings(max_examples=30, deadline=None)
    @given(fault_sets(MESH_2D, max_faults=5), coords(2, 8), coords(2, 8))
    def test_safe_sources_route_minimally(self, faults, source, destination):
        result = build_blocks(MESH_2D, faults)
        blocked = set(result.state.block_nodes)
        if source in blocked or destination in blocked:
            return
        if not is_safe_source(source, destination, result.blocks):
            return
        info = converged_information(MESH_2D, faults)
        route = route_offline(info, source, destination)
        assert route.delivered
        assert route.detours == 0
        assert minimal_path_exists(MESH_2D, blocked, source, destination)

    @settings(max_examples=20, deadline=None)
    @given(fault_sets(MESH_3D, max_faults=4), coords(3, 6), coords(3, 6))
    def test_3d_routing_delivers_when_endpoints_enabled(self, faults, source, destination):
        info = converged_information(MESH_3D, faults)
        if not (
            info.status(source) is NodeStatus.ENABLED
            and info.status(destination) is NodeStatus.ENABLED
        ):
            return
        result = route_offline(info, source, destination)
        # With interior faults only, the enabled part of a mesh stays
        # connected (paper assumption), so enabled endpoints are reachable.
        assert result.outcome is RouteOutcome.DELIVERED
