"""Unit tests for the k-ary n-D mesh topology."""

import pytest

from repro.mesh.directions import Direction
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh


class TestConstruction:
    def test_cube_constructor(self):
        mesh = Mesh.cube(10, 3)
        assert mesh.shape == (10, 10, 10)
        assert mesh.n_dims == 3
        assert mesh.radix == 10

    def test_rectangular_mesh(self):
        mesh = Mesh((4, 6, 8))
        assert mesh.size == 4 * 6 * 8
        assert mesh.diameter == 3 + 5 + 7

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            Mesh(())
        with pytest.raises(ValueError):
            Mesh((4, 1))


class TestPaperProperties:
    """The k-ary n-D mesh properties quoted in Section 2.1."""

    @pytest.mark.parametrize("k,n", [(4, 2), (5, 3), (3, 4)])
    def test_node_count_is_k_to_the_n(self, k, n):
        assert Mesh.cube(k, n).size == k**n

    @pytest.mark.parametrize("k,n", [(4, 2), (5, 3), (3, 4)])
    def test_diameter_is_k_minus_1_times_n(self, k, n):
        assert Mesh.cube(k, n).diameter == (k - 1) * n

    @pytest.mark.parametrize("k,n", [(5, 2), (5, 3)])
    def test_interior_degree_is_2n(self, k, n):
        mesh = Mesh.cube(k, n)
        interior_node = tuple([2] * n)
        assert mesh.degree(interior_node) == 2 * n

    def test_corner_degree_is_n(self):
        mesh = Mesh.cube(5, 3)
        assert mesh.degree((0, 0, 0)) == 3

    def test_neighbors_differ_in_exactly_one_dimension(self):
        mesh = Mesh.cube(6, 3)
        node = (2, 3, 4)
        for neighbor in mesh.neighbors(node):
            diffs = [abs(a - b) for a, b in zip(node, neighbor)]
            assert sum(diffs) == 1 and max(diffs) == 1


class TestQueries:
    def test_contains(self, mesh3d):
        assert mesh3d.contains((0, 0, 0))
        assert mesh3d.contains((9, 9, 9))
        assert not mesh3d.contains((10, 0, 0))
        assert not mesh3d.contains((-1, 0, 0))
        assert not mesh3d.contains((0, 0))

    def test_validate(self, mesh3d):
        assert mesh3d.validate([1, 2, 3]) == (1, 2, 3)
        with pytest.raises(ValueError):
            mesh3d.validate((1, 2, 10))

    def test_neighbor_off_mesh_is_none(self, mesh2d):
        assert mesh2d.neighbor((0, 0), Direction(0, -1)) is None
        assert mesh2d.neighbor((0, 0), Direction(0, +1)) == (1, 0)

    def test_nodes_iteration_count(self):
        mesh = Mesh.cube(3, 3)
        assert sum(1 for _ in mesh.nodes()) == 27

    def test_distance(self, mesh3d):
        assert mesh3d.distance((0, 0, 0), (9, 9, 9)) == 27

    def test_index_coord_roundtrip(self):
        mesh = Mesh((3, 4, 5))
        for index, node in enumerate(mesh.nodes()):
            assert mesh.index_of(node) == index
            assert mesh.coord_of(index) == node
        with pytest.raises(ValueError):
            mesh.coord_of(mesh.size)


class TestRoutingClassification:
    def test_preferred_directions(self, mesh3d):
        dirs = mesh3d.preferred_directions((2, 5, 5), (5, 5, 0))
        assert set(dirs) == {Direction(0, +1), Direction(2, -1)}

    def test_spare_directions_complement_preferred(self, mesh3d):
        node, dest = (2, 5, 5), (5, 5, 0)
        preferred = set(mesh3d.preferred_directions(node, dest))
        spare = set(mesh3d.spare_directions(node, dest))
        assert preferred.isdisjoint(spare)
        # every in-mesh direction is one or the other
        in_mesh = {
            d for d in mesh3d.directions if mesh3d.contains(d.apply(node))
        }
        assert preferred | spare == in_mesh

    def test_no_preferred_at_destination(self, mesh3d):
        assert mesh3d.preferred_directions((4, 4, 4), (4, 4, 4)) == []


class TestSurfaces:
    def test_on_outmost_surface(self, mesh3d):
        assert mesh3d.on_outmost_surface((0, 5, 5))
        assert mesh3d.on_outmost_surface((5, 9, 5))
        assert not mesh3d.on_outmost_surface((5, 5, 5))

    def test_interior_region(self, mesh3d):
        interior = mesh3d.interior_region(1)
        assert interior == Region((1, 1, 1), (8, 8, 8))
        with pytest.raises(ValueError):
            Mesh.cube(2, 2).interior_region(1)

    def test_distance_to_surface(self, mesh3d):
        assert mesh3d.distance_to_surface((3, 5, 5), Direction(0, -1)) == 3
        assert mesh3d.distance_to_surface((3, 5, 5), Direction(0, +1)) == 6

    def test_clip_region(self, mesh2d):
        region = Region((-3, 5), (15, 7))
        assert mesh2d.clip_region(region) == Region((0, 5), (9, 7))

    def test_extent(self, mesh2d):
        assert mesh2d.extent == Region((0, 0), (9, 9))
