"""Property-based tests for boundary geometry and direction classification."""

from hypothesis import given, settings, strategies as st

from repro.core.block_construction import build_blocks
from repro.core.boundary import compute_boundaries, dangerous_prism, opposite_prism
from repro.core.distribution import converged_information
from repro.core.faulty_block import FaultyBlock
from repro.core.routing import DirectionClass, RoutingPolicy, classify_directions
from repro.core.state import InformationState
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

MESH_2D = Mesh.cube(10, 2)
MESH_3D = Mesh.cube(7, 3)


def interior_regions(mesh: Mesh, max_edge: int = 3):
    """Strategy producing block extents inside the mesh interior."""
    n = mesh.n_dims

    def build(origin_and_shape):
        origin, shape = origin_and_shape
        lo = tuple(o for o in origin)
        hi = tuple(
            min(o + s, mesh.shape[d] - 2) for d, (o, s) in enumerate(zip(origin, shape))
        )
        return Region(lo, hi)

    return st.tuples(
        st.tuples(*[st.integers(1, mesh.shape[d] - 2) for d in range(n)]),
        st.tuples(*[st.integers(0, max_edge - 1) for _ in range(n)]),
    ).map(build)


class TestPrismProperties:
    @settings(max_examples=50, deadline=None)
    @given(interior_regions(MESH_3D), st.integers(0, 2), st.sampled_from([-1, 1]))
    def test_prisms_disjoint_from_block_and_each_other(self, extent, dim, side):
        prism = dangerous_prism(extent, MESH_3D, dim, side)
        other = opposite_prism(extent, MESH_3D, dim, side)
        if prism is not None:
            assert not prism.intersects(extent)
        if other is not None:
            assert not other.intersects(extent)
        if prism is not None and other is not None:
            assert not prism.intersects(other)

    @settings(max_examples=50, deadline=None)
    @given(interior_regions(MESH_3D), st.integers(0, 2), st.sampled_from([-1, 1]))
    def test_prism_spans_block_cross_section(self, extent, dim, side):
        prism = dangerous_prism(extent, MESH_3D, dim, side)
        if prism is None:
            return
        for d in range(3):
            if d != dim:
                assert prism.span(d) == extent.span(d)

    @settings(max_examples=30, deadline=None)
    @given(interior_regions(MESH_2D, max_edge=2))
    def test_boundary_nodes_sit_outside_the_dangerous_prism(self, extent):
        block = FaultyBlock(extent)
        informed = compute_boundaries(MESH_2D, [block])
        for node, infos in informed.items():
            for info in infos:
                prism = dangerous_prism(info.extent, MESH_2D, info.dim, info.dangerous_side)
                assert prism is None or not prism.contains(node)
                assert not info.extent.contains(node)


class TestClassificationProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(1, 8), st.integers(1, 8)), min_size=0, max_size=4
        ).map(lambda pts: sorted(set(pts))),
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
    )
    def test_classification_is_a_permutation_of_usable_directions(
        self, faults, node, destination
    ):
        info = converged_information(MESH_2D, faults)
        if info.labeling.status(node).in_block or node == destination:
            return
        ordered = classify_directions(
            info, node, destination, policy=RoutingPolicy.limited_global()
        )
        directions = [d for _, d in ordered]
        # No duplicates, all in-mesh, never towards a faulty neighbor.
        assert len(set(directions)) == len(directions)
        for cls, direction in ordered:
            neighbor = MESH_2D.neighbor(node, direction)
            assert neighbor is not None
            assert info.labeling.status(neighbor).is_operational
            assert isinstance(cls, DirectionClass)
        # Classes appear in non-decreasing priority order.
        classes = [cls for cls, _ in ordered]
        assert classes == sorted(classes)

    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
        st.tuples(st.integers(0, 9), st.integers(0, 9)),
    )
    def test_fault_free_classification_has_no_detour_class(self, node, destination):
        info = InformationState.fresh(MESH_2D)
        ordered = classify_directions(
            info, node, destination, policy=RoutingPolicy.limited_global()
        )
        assert all(
            cls
            in (DirectionClass.PREFERRED, DirectionClass.SPARE, DirectionClass.INCOMING)
            for cls, _ in ordered
        )
