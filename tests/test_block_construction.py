"""Unit tests for the enabled/disabled/clean labeling (Definitions 1/4, Algorithm 1)."""

import pytest

from repro.core.block_construction import (
    LabelingState,
    build_blocks,
    extract_blocks,
    labeling_round,
    run_block_construction,
)
from repro.faults.status import NodeStatus
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import FIGURE1_EXTENT, FIGURE1_FAULTS


class TestLabelingState:
    def test_default_status_is_enabled(self, mesh3d):
        state = LabelingState(mesh=mesh3d)
        assert state.status((4, 4, 4)) is NodeStatus.ENABLED

    def test_make_faulty_and_recover(self, mesh3d):
        state = LabelingState(mesh=mesh3d)
        state.make_faulty((4, 4, 4))
        assert state.status((4, 4, 4)) is NodeStatus.FAULTY
        state.recover((4, 4, 4))
        assert state.status((4, 4, 4)) is NodeStatus.CLEAN

    def test_recover_non_faulty_raises(self, mesh3d):
        state = LabelingState(mesh=mesh3d)
        with pytest.raises(ValueError):
            state.recover((1, 1, 1))

    def test_set_enabled_drops_entry(self, mesh3d):
        state = LabelingState(mesh=mesh3d)
        state.set_status((2, 2, 2), NodeStatus.DISABLED)
        state.set_status((2, 2, 2), NodeStatus.ENABLED)
        assert state.non_enabled_nodes() == {}

    def test_nodes_with_status_rejects_enabled(self, mesh3d):
        state = LabelingState(mesh=mesh3d)
        with pytest.raises(ValueError):
            state.nodes_with_status(NodeStatus.ENABLED)

    def test_copy_is_independent(self, mesh3d):
        state = LabelingState.from_faults(mesh3d, [(4, 4, 4)])
        clone = state.copy()
        clone.make_faulty((5, 5, 5))
        assert state.status((5, 5, 5)) is NodeStatus.ENABLED

    def test_is_operational(self, mesh3d):
        state = LabelingState.from_faults(mesh3d, [(4, 4, 4)])
        assert not state.is_operational((4, 4, 4))
        assert state.is_operational((0, 0, 0))


class TestDefinition1:
    """Rule 1: a node with >=2 faulty/disabled neighbors in different dims disables."""

    def test_isolated_fault_disables_nobody(self, mesh2d):
        result = build_blocks(mesh2d, [(5, 5)])
        assert result.state.disabled_nodes == set()
        assert len(result.blocks) == 1
        assert result.blocks[0].extent == Region((5, 5), (5, 5))

    def test_two_faults_same_dimension_disable_nobody(self, mesh2d):
        # Neighbors along the same dimension do not trigger rule 1.
        result = build_blocks(mesh2d, [(4, 5), (6, 5)])
        assert result.state.disabled_nodes == set()
        assert len(result.blocks) == 2

    def test_diagonal_faults_disable_the_corner_nodes(self, mesh2d):
        # (4,4) and (5,5) faulty: both (4,5) and (5,4) see faults in two dims.
        result = build_blocks(mesh2d, [(4, 4), (5, 5)])
        assert result.state.disabled_nodes == {(4, 5), (5, 4)}
        assert len(result.blocks) == 1
        assert result.blocks[0].extent == Region((4, 4), (5, 5))

    def test_concave_fault_pattern_fills_to_rectangle(self, mesh2d):
        # A connected L-shaped fault pattern must fill in to a full rectangle:
        # the inner corner nodes see faults/disabled nodes in two dimensions.
        faults = [(3, 3), (3, 4), (3, 5), (4, 3), (5, 3)]
        result = build_blocks(mesh2d, faults)
        assert len(result.blocks) == 1
        block = result.blocks[0]
        assert block.extent == Region((3, 3), (5, 5))
        assert block.is_rectangular

    def test_figure1_block(self, mesh3d):
        """Figure 1: the four faults produce block [3:5, 5:6, 3:4]."""
        result = build_blocks(mesh3d, FIGURE1_FAULTS)
        assert len(result.blocks) == 1
        block = result.blocks[0]
        assert block.extent == FIGURE1_EXTENT
        assert block.is_rectangular
        assert block.faulty_nodes == frozenset(FIGURE1_FAULTS)
        # 3*2*2 extent = 12 members, 4 faulty, 8 disabled.
        assert len(block.disabled_nodes) == 8

    def test_disjoint_blocks_stay_disjoint(self, mesh3d):
        faults = [(2, 2, 2), (2, 3, 3), (7, 7, 7), (8, 8, 7)]
        result = build_blocks(mesh3d, faults)
        extents = sorted(b.extent for b in result.blocks)
        assert len(result.blocks) == 2
        assert extents[0].intersects(extents[1]) is False


class TestConvergence:
    def test_rounds_counted(self, mesh3d):
        result = build_blocks(mesh3d, FIGURE1_FAULTS)
        assert result.rounds >= 1
        assert result.status_changes >= len(result.state.disabled_nodes)

    def test_stable_state_has_no_further_changes(self, mesh3d):
        result = build_blocks(mesh3d, FIGURE1_FAULTS)
        assert labeling_round(result.state) == 0

    def test_rounds_scale_with_block_edge(self):
        """a_i grows with the block's longest edge, not the mesh size."""
        mesh = Mesh.cube(20, 2)
        small = build_blocks(mesh, [(5, 5), (6, 6)]).rounds
        # A long thin diagonal chain forces a larger fill-in.
        chain = [(5 + i, 5 + i) for i in range(5)]
        large = build_blocks(mesh, chain).rounds
        assert large > small

    def test_max_rounds_guard(self, mesh2d):
        state = LabelingState.from_faults(mesh2d, [(4, 4), (5, 5)])
        with pytest.raises(RuntimeError):
            run_block_construction(state, max_rounds=0)


class TestDefinition4Recovery:
    def test_recovered_isolated_fault_becomes_enabled(self, mesh2d):
        state = LabelingState.from_faults(mesh2d, [(5, 5)])
        run_block_construction(state)
        state.recover((5, 5))
        run_block_construction(state)
        assert state.status((5, 5)) is NodeStatus.ENABLED
        assert extract_blocks(state) == []

    def test_recovery_shrinks_block(self, mesh2d):
        # Block seeded by diagonal faults; recovering one fault dissolves it.
        state = LabelingState.from_faults(mesh2d, [(4, 4), (5, 5)])
        run_block_construction(state)
        assert state.disabled_nodes == {(4, 5), (5, 4)}
        state.recover((5, 5))
        run_block_construction(state)
        assert state.status((5, 5)) is NodeStatus.ENABLED
        assert state.disabled_nodes == set()
        blocks = extract_blocks(state)
        assert [b.extent for b in blocks] == [Region((4, 4), (4, 4))]

    def test_figure4_recovery(self, mesh3d):
        """Figure 4: recovering (5,5,3) re-stabilizes to smaller blocks.

        After the recovery the remaining faults are (3,5,4), (4,5,4) and
        (3,6,3); the paper's rules keep (3,5,3) disabled (two faulty
        neighbors in different dimensions) while (4,5,3), (5,6,3) and
        (5,5,4) eventually become enabled or re-disable per Definition 1.
        """
        state = LabelingState.from_faults(mesh3d, FIGURE1_FAULTS)
        run_block_construction(state)
        state.recover((5, 5, 3))
        run_block_construction(state)
        # The recovered node must not stay clean.
        assert state.status((5, 5, 3)) is not NodeStatus.CLEAN
        # (3,5,3) keeps two faulty neighbors (3,5,4) and (3,6,3) in different
        # dimensions, so it stays disabled exactly as in the paper's walkthrough.
        assert state.status((3, 5, 3)) is NodeStatus.DISABLED
        # All remaining block members stay within the old extent.
        for block in extract_blocks(state):
            assert FIGURE1_EXTENT.contains_region(block.extent)

    def test_clean_propagates_through_disabled_region(self, mesh2d):
        # A diagonal chain of faults fills in a 3x3 disabled region.
        faults = [(3, 3), (4, 4), (5, 5)]
        state = LabelingState.from_faults(mesh2d, faults)
        run_block_construction(state)
        assert state.status((3, 4)) is NodeStatus.DISABLED
        assert state.status((5, 4)) is NodeStatus.DISABLED
        # Recover everything; the clean wave must dissolve the whole block.
        for fault in faults:
            state.recover(fault)
        run_block_construction(state)
        assert state.disabled_nodes == set()
        assert state.clean_nodes == set()
        assert state.faulty_nodes == set()


class TestExtractBlocks:
    def test_empty_state_has_no_blocks(self, mesh2d):
        assert extract_blocks(LabelingState(mesh=mesh2d)) == []

    def test_block_membership_partition(self, mesh3d):
        result = build_blocks(mesh3d, FIGURE1_FAULTS)
        blocks = result.blocks
        members = set()
        for block in blocks:
            assert not members & set(block.nodes)
            members |= set(block.nodes)
        assert members == result.state.block_nodes
