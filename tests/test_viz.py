"""Unit tests for the ASCII renderers."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.distribution import converged_information
from repro.core.routing import route_offline
from repro.mesh.topology import Mesh
from repro.viz.ascii import render_information, render_labeling, render_route
from repro.workloads.scenarios import FIGURE1_FAULTS


class TestRenderLabeling:
    def test_2d_block_rendering(self, mesh2d):
        labeling = build_blocks(mesh2d, [(4, 4), (5, 5)]).state
        text = render_labeling(mesh2d, labeling)
        lines = text.splitlines()
        assert len(lines) == 10
        assert all(len(line.split()) == 10 for line in lines)
        assert text.count("F") == 2
        assert text.count("D") == 2

    def test_origin_is_bottom_left(self, mesh2d):
        labeling = build_blocks(mesh2d, [(1, 1)]).state
        lines = render_labeling(mesh2d, labeling).splitlines()
        # y = 1 is the second row from the bottom; x = 1 the second column.
        assert lines[-2].split()[1] == "F"

    def test_3d_requires_slice(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        with pytest.raises(ValueError):
            render_labeling(mesh3d, labeling)
        text = render_labeling(mesh3d, labeling, slice_coords=(4,))
        assert "F" in text  # the z=4 slice contains faults (3,5,4) and (4,5,4)
        with pytest.raises(ValueError):
            render_labeling(mesh3d, labeling, slice_coords=(4, 4))


class TestRenderInformation:
    def test_information_markers(self, mesh2d):
        info = converged_information(mesh2d, [(4, 4), (5, 5)])
        text = render_information(info)
        assert "b" in text   # frame nodes hold block records
        assert "+" in text   # boundary columns hold boundary records
        assert "." in text   # far nodes hold nothing


class TestRenderRoute:
    def test_route_markers(self, mesh2d):
        info = converged_information(mesh2d, [(4, 4), (5, 5)])
        route = route_offline(info, (0, 0), (9, 9))
        text = render_route(mesh2d, info.labeling, route)
        assert text.count("S") == 1
        assert text.count("T") == 1
        assert text.count("*") >= route.min_distance - 2
