"""Unit tests for faulty-block geometry (Definitions 2 and 3)."""

import pytest

from repro.core.faulty_block import FaultyBlock, dangerous_prism_of_extent
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import (
    FIGURE1_EXTENT,
    FIGURE2_CORNER,
    FIGURE2_EDGE_NEIGHBORS,
)


@pytest.fixture
def figure1_block() -> FaultyBlock:
    """The paper's block [3:5, 5:6, 3:4] with all members filled in."""
    return FaultyBlock(FIGURE1_EXTENT)


class TestConstruction:
    def test_nodes_default_to_full_extent(self, figure1_block):
        assert figure1_block.is_rectangular
        assert len(figure1_block.nodes) == 12

    def test_from_nodes(self):
        block = FaultyBlock.from_nodes([(1, 1), (2, 2)], faulty_nodes=[(1, 1)])
        assert block.extent == Region((1, 1), (2, 2))
        assert block.faulty_nodes == frozenset({(1, 1)})
        assert block.disabled_nodes == frozenset({(2, 2)})
        assert not block.is_rectangular

    def test_faulty_must_be_subset(self):
        with pytest.raises(ValueError):
            FaultyBlock.from_nodes([(1, 1)], faulty_nodes=[(9, 9)])

    def test_nodes_must_be_inside_extent(self):
        with pytest.raises(ValueError):
            FaultyBlock(Region((0, 0), (1, 1)), nodes=frozenset({(5, 5)}))

    def test_max_edge(self, figure1_block):
        assert figure1_block.max_edge == 2

    def test_str(self, figure1_block):
        assert str(figure1_block) == "FaultyBlock[3:5, 5:6, 3:4]"


class TestDefinition2Levels:
    """Adjacent nodes, k-level edge nodes and corners."""

    def test_member_has_level_zero(self, figure1_block):
        assert figure1_block.level_of((4, 5, 3)) == 0

    def test_adjacent_node_has_level_one(self, figure1_block):
        assert figure1_block.level_of((2, 5, 3)) == 1
        assert figure1_block.level_of((4, 7, 4)) == 1

    def test_far_node_has_level_zero(self, figure1_block):
        assert figure1_block.level_of((0, 0, 0)) == 0
        assert figure1_block.level_of((7, 5, 3)) == 0

    def test_figure2_corner_is_3_level(self, figure1_block):
        """Figure 2: (6,4,5) is a 3-level corner of block [3:5, 5:6, 3:4]."""
        assert figure1_block.level_of(FIGURE2_CORNER) == 3

    def test_figure2_edge_neighbors_are_3_level_edge_nodes(self, figure1_block, mesh3d):
        """Figure 2: its three edge neighbors (5,4,5), (6,5,5), (6,4,4)."""
        for node in FIGURE2_EDGE_NEIGHBORS:
            assert figure1_block.level_of(node) == 2
        assert sorted(
            figure1_block.edge_neighbors_of_corner(FIGURE2_CORNER, mesh3d)
        ) == sorted(FIGURE2_EDGE_NEIGHBORS)

    def test_edge_node_has_two_adjacent_neighbors(self, figure1_block, mesh3d):
        """Each 3-level edge node has two neighbors adjacent to the block.

        The paper's example: (5,4,5) has neighbors (5,5,5) and (5,4,4)
        adjacent to the block.
        """
        neighbors = mesh3d.neighbors((5, 4, 5))
        adjacent = [n for n in neighbors if figure1_block.level_of(n) == 1]
        assert sorted(adjacent) == [(5, 4, 4), (5, 5, 5)]

    def test_corner_count(self, figure1_block, mesh3d):
        corners = figure1_block.corners(mesh3d)
        assert len(corners) == 8
        assert FIGURE2_CORNER in corners

    def test_corners_clipped_by_mesh(self):
        # A block touching coordinate 0 loses the corners beyond the mesh
        # surface (they would sit at x = -1).
        mesh = Mesh.cube(8, 2)
        block = FaultyBlock(Region((0, 3), (1, 4)))
        corners = block.corners(mesh)
        assert all(mesh.contains(c) for c in corners)
        assert len(corners) == 2
        assert sorted(corners) == [(2, 2), (2, 5)]

    def test_frame_levels_partition(self, figure1_block, mesh3d):
        frame = figure1_block.frame_nodes(mesh3d)
        by_level = {
            1: figure1_block.adjacent_nodes(mesh3d),
            2: figure1_block.edge_nodes(mesh3d),
            3: figure1_block.corners(mesh3d),
        }
        assert sorted(frame) == sorted(
            by_level[1] + by_level[2] + by_level[3]
        )

    def test_adjacent_node_counts_match_surface_area(self, figure1_block, mesh3d):
        # A 3x2x2 block away from the mesh surface has 2*(3*2 + 3*2 + 2*2) = 32
        # level-1 (face-adjacent) nodes.
        assert len(figure1_block.adjacent_nodes(mesh3d)) == 32

    def test_level_rejects_bad_rank(self, figure1_block):
        with pytest.raises(ValueError):
            figure1_block.level_of((1, 1))

    def test_edge_neighbors_requires_corner(self, figure1_block, mesh3d):
        with pytest.raises(ValueError):
            figure1_block.edge_neighbors_of_corner((0, 0, 0), mesh3d)


class TestDefinition3Surfaces:
    def test_six_adjacent_surfaces_in_3d(self, figure1_block, mesh3d):
        surfaces = figure1_block.adjacent_surfaces(mesh3d)
        assert len(surfaces) == 6

    def test_surface_positions(self, figure1_block):
        # S1 (negative Y side) and S4 (positive Y side) of block [3:5,5:6,3:4].
        s1 = figure1_block.adjacent_surface(1)
        s4 = figure1_block.adjacent_surface(4)
        assert s1 == Region((3, 4, 3), (5, 4, 4))
        assert s4 == Region((3, 7, 3), (5, 7, 4))

    def test_opposite_surface_index(self, figure1_block):
        assert figure1_block.opposite_surface_index(1) == 4
        assert figure1_block.opposite_surface_index(4) == 1

    def test_surface_direction(self, figure1_block):
        assert figure1_block.surface_direction(0).dim == 0
        assert figure1_block.surface_direction(0).sign == -1
        assert figure1_block.surface_direction(5).dim == 2
        assert figure1_block.surface_direction(5).sign == +1

    def test_surfaces_clipped_when_block_near_mesh_edge(self):
        mesh = Mesh.cube(8, 2)
        block = FaultyBlock(Region((0, 3), (1, 4)))
        surfaces = block.adjacent_surfaces(mesh)
        # The surface beyond x = -1 falls off the mesh entirely.
        assert 0 not in surfaces
        assert 2 in surfaces


class TestDangerousPrisms:
    def test_prism_below_block(self, figure1_block, mesh3d):
        prism = figure1_block.dangerous_prism(mesh3d, dim=1, side=-1)
        assert prism == Region((3, 0, 3), (5, 4, 4))

    def test_opposite_prism(self, figure1_block, mesh3d):
        opposite = figure1_block.opposite_prism(mesh3d, dim=1, side=-1)
        assert opposite == Region((3, 7, 3), (5, 9, 4))

    def test_prism_none_when_block_touches_surface(self):
        mesh = Mesh.cube(8, 2)
        block = FaultyBlock(Region((0, 3), (1, 4)))
        assert block.dangerous_prism(mesh, dim=0, side=-1) is None
        assert block.dangerous_prism(mesh, dim=0, side=+1) is not None

    def test_prism_requires_valid_side(self, figure1_block, mesh3d):
        with pytest.raises(ValueError):
            figure1_block.dangerous_prism(mesh3d, dim=0, side=0)

    def test_extent_level_function_matches_method(self, figure1_block, mesh3d):
        for dim in range(3):
            for side in (-1, +1):
                assert dangerous_prism_of_extent(
                    FIGURE1_EXTENT, mesh3d, dim, side
                ) == figure1_block.dangerous_prism(mesh3d, dim, side)

    def test_blocks_minimal_paths(self, figure1_block, mesh3d):
        """S1/S4 criterion: below S1 with destination over S4 has no minimal path."""
        below = (4, 2, 4)
        above = (4, 9, 4)
        aside = (8, 2, 4)
        assert figure1_block.blocks_minimal_paths(mesh3d, below, above)
        assert figure1_block.blocks_minimal_paths(mesh3d, above, below)
        assert not figure1_block.blocks_minimal_paths(mesh3d, aside, above)
        assert not figure1_block.blocks_minimal_paths(mesh3d, below, aside)
