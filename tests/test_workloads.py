"""Unit tests for traffic generators and the paper scenarios."""

import numpy as np
import pytest

from repro.core.block_construction import build_blocks
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.simulator.traffic import TrafficMessage
from repro.workloads.scenarios import (
    FIGURE1_EXTENT,
    figure1_scenario,
    figure4_recovery_scenario,
    parametric_block_scenario,
    random_dynamic_scenario,
    two_block_scenario,
)
from repro.workloads.traffic import (
    corner_to_corner_pairs,
    random_pairs,
    to_traffic,
    transpose_pairs,
)


class TestTrafficMessage:
    def test_coerces_tuples(self):
        message = TrafficMessage(source=[0, 0], destination=[3, 3], start_time=2)
        assert message.source == (0, 0)
        assert message.destination == (3, 3)

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            TrafficMessage(source=(0, 0), destination=(1, 1), start_time=-1)


class TestRandomPairs:
    def test_min_distance_respected(self, mesh3d, rng):
        pairs = random_pairs(mesh3d, 15, rng, min_distance=10)
        assert len(pairs) == 15
        assert all(mesh3d.distance(s, d) >= 10 for s, d in pairs)

    def test_exclusion_respected(self, mesh2d, rng):
        exclude = [(5, 5), (4, 4)]
        pairs = random_pairs(mesh2d, 10, rng, exclude=exclude)
        endpoints = {p for pair in pairs for p in pair}
        assert not endpoints & set(map(tuple, exclude))

    def test_impossible_distance_raises(self, rng):
        mesh = Mesh.cube(4, 2)
        with pytest.raises(RuntimeError):
            random_pairs(mesh, 5, rng, min_distance=100)

    def test_bad_arguments(self, mesh2d, rng):
        with pytest.raises(ValueError):
            random_pairs(mesh2d, -1, rng)
        with pytest.raises(ValueError):
            random_pairs(mesh2d, 1, rng, min_distance=0)


class TestStructuredPairs:
    def test_corner_to_corner(self, mesh3d):
        pairs = corner_to_corner_pairs(mesh3d)
        assert all(mesh3d.distance(s, d) == mesh3d.diameter for s, d in pairs)
        # 2^n corners pair up into 2^(n-1) opposite pairs.
        assert len(pairs) == 2 ** 2

    def test_transpose_pairs(self):
        mesh = Mesh.cube(4, 2)
        pairs = transpose_pairs(mesh)
        assert all(d == tuple(reversed(s)) for s, d in pairs)
        assert all(s != d for s, d in pairs)
        limited = transpose_pairs(mesh, limit=3)
        assert len(limited) == 3

    def test_transpose_requires_cube(self):
        with pytest.raises(ValueError):
            transpose_pairs(Mesh((4, 6)))


class TestToTraffic:
    def test_spacing(self):
        pairs = [((0, 0), (3, 3)), ((1, 1), (4, 4))]
        traffic = to_traffic(pairs, start_time=5, spacing=3, tag="x")
        assert [m.start_time for m in traffic] == [5, 8]
        assert all(m.tag == "x" for m in traffic)


class TestScenarios:
    def test_figure1(self):
        scenario = figure1_scenario()
        result = build_blocks(scenario.mesh, scenario.schedule.initial_faults)
        assert [b.extent for b in result.blocks] == [FIGURE1_EXTENT]
        with pytest.raises(ValueError):
            figure1_scenario(radix=6)

    def test_figure4(self):
        scenario = figure4_recovery_scenario()
        assert len(scenario.schedule.recovery_events) == 1
        assert scenario.schedule.recovery_events[0].node == (5, 5, 3)

    def test_parametric_block(self):
        scenario = parametric_block_scenario(12, 3, edge=3)
        extent = scenario.expected_extents[0]
        assert extent.shape == (3, 3, 3)
        result = build_blocks(scenario.mesh, scenario.schedule.initial_faults)
        assert result.blocks[0].extent == extent
        with pytest.raises(ValueError):
            parametric_block_scenario(6, 3, edge=10)
        with pytest.raises(ValueError):
            parametric_block_scenario(6, 3, edge=0)

    def test_two_block_scenario_extents(self):
        scenario = two_block_scenario()
        result = build_blocks(scenario.mesh, scenario.schedule.initial_faults)
        assert sorted(b.extent for b in result.blocks) == sorted(
            scenario.expected_extents
        )

    def test_random_dynamic_scenario_consistency(self):
        scenario = random_dynamic_scenario(
            radix=10, n_dims=2, dynamic_faults=4, messages=6, seed=3
        )
        assert scenario.schedule.total_faults == 4
        assert len(scenario.traffic) == 6
        fault_nodes = scenario.schedule.all_nodes_ever_faulty()
        for message in scenario.traffic:
            assert message.source not in fault_nodes
            assert message.destination not in fault_nodes

    def test_with_traffic_builder(self):
        scenario = figure1_scenario()
        traffic = to_traffic([((0, 0, 0), (9, 9, 9))])
        updated = scenario.with_traffic(traffic)
        assert updated.traffic == tuple(traffic)
        assert scenario.traffic == ()
