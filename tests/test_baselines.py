"""Unit tests for the comparison routing algorithms."""

import numpy as np
import pytest

from repro.baselines.global_info import GlobalInformationRouter, route_global_information
from repro.baselines.no_info import route_no_information
from repro.baselines.static_block import adjacent_only_information, route_static_block
from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import RouteOutcome, route_offline
from repro.core.safety import shortest_path_length
from repro.core.state import InformationState
from repro.faults.injection import uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import FIGURE1_FAULTS
from repro.workloads.traffic import random_pairs


class TestGlobalInformationRouter:
    def test_matches_bfs_shortest_path(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        router = GlobalInformationRouter(mesh3d, labeling)
        result = router.route((4, 2, 4), (4, 9, 4))
        assert result.delivered
        expected = shortest_path_length(
            mesh3d, set(labeling.block_nodes), (4, 2, 4), (4, 9, 4)
        )
        assert result.hops == expected

    def test_avoid_blocks_vs_faults_only(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        strict = GlobalInformationRouter(mesh3d, labeling, avoid_blocks=True)
        lenient = GlobalInformationRouter(mesh3d, labeling, avoid_blocks=False)
        assert strict.blocked_nodes() >= lenient.blocked_nodes()

    def test_unreachable_destination(self, mesh2d):
        faults = [(4, 5), (6, 5), (5, 4), (5, 6)]
        labeling = build_blocks(mesh2d, faults).state
        result = route_global_information(mesh2d, labeling, (0, 0), (5, 5))
        assert result.outcome is RouteOutcome.UNREACHABLE

    def test_source_equals_destination(self, mesh2d):
        labeling = build_blocks(mesh2d, []).state
        result = route_global_information(mesh2d, labeling, (3, 3), (3, 3))
        assert result.delivered and result.hops == 0

    def test_fault_free_is_minimal(self, mesh3d):
        labeling = build_blocks(mesh3d, []).state
        result = route_global_information(mesh3d, labeling, (0, 0, 0), (9, 9, 9))
        assert result.detours == 0


class TestNoInformationBaseline:
    def test_delivers_despite_faults(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        bare = InformationState(mesh=mesh3d, labeling=labeling)
        result = route_no_information(bare, (0, 4, 4), (4, 7, 4))
        assert result.delivered

    def test_never_worse_delivery_than_global_unreachable(self, mesh2d):
        # If the global router says unreachable, no-info must not deliver.
        faults = [(4, 5), (6, 5), (5, 4), (5, 6)]
        labeling = build_blocks(mesh2d, faults).state
        bare = InformationState(mesh=mesh2d, labeling=labeling)
        result = route_no_information(bare, (0, 0), (5, 5))
        assert result.outcome is not RouteOutcome.DELIVERED


class TestStaticBlockBaseline:
    def test_adjacent_only_information_has_no_boundaries(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        info = adjacent_only_information(mesh3d, labeling)
        assert all(not info.boundaries_at(n) for n in info.nodes_holding_information())
        assert info.information_cells() > 0

    def test_information_held_closer_than_limited_global(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        adjacent = adjacent_only_information(mesh3d, labeling)
        full = distribute_information(mesh3d, labeling)
        assert len(adjacent.nodes_holding_information()) < len(
            full.nodes_holding_information()
        )

    def test_routes_deliver(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        result = route_static_block(mesh3d, labeling, (0, 4, 4), (4, 7, 4))
        assert result.delivered


class TestRelativeQuality:
    """The ordering the paper's comparison relies on, over random workloads."""

    @pytest.mark.parametrize("seed", [1, 2])
    def test_limited_global_never_beaten_by_no_info_on_average(self, seed):
        rng = np.random.default_rng(seed)
        mesh = Mesh.cube(12, 2)
        faults = uniform_random_faults(mesh, 10, rng)
        labeling = build_blocks(mesh, faults).state
        info = distribute_information(mesh, labeling)
        bare = InformationState(mesh=mesh, labeling=labeling)
        pairs = random_pairs(
            mesh, 25, rng, min_distance=8, exclude=list(labeling.block_nodes)
        )
        informed = uninformed = 0
        for source, destination in pairs:
            a = route_offline(info, source, destination)
            b = route_no_information(bare, source, destination)
            if a.delivered:
                informed += a.hops
            if b.delivered:
                uninformed += b.hops
        assert informed <= uninformed

    def test_global_information_is_lower_bound(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        info = distribute_information(mesh3d, labeling)
        router = GlobalInformationRouter(mesh3d, labeling)
        for source, destination in [((0, 4, 4), (4, 7, 4)), ((4, 2, 4), (4, 9, 4))]:
            limited = route_offline(info, source, destination)
            ideal = router.route(source, destination)
            assert limited.delivered and ideal.delivered
            assert ideal.hops <= limited.hops
