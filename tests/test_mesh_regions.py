"""Unit tests for hyper-rectangle regions."""

import pytest

from repro.mesh.regions import Region, bounding_region


class TestConstruction:
    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Region((3, 3), (2, 5))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            Region((0, 0), (1, 1, 1))

    def test_from_points_is_bounding_box(self):
        region = Region.from_points([(3, 5, 4), (4, 5, 4), (5, 5, 3), (3, 6, 3)])
        assert region == Region((3, 5, 3), (5, 6, 4))

    def test_from_points_rejects_empty(self):
        with pytest.raises(ValueError):
            Region.from_points([])

    def test_single(self):
        region = Region.single((2, 3))
        assert region.volume == 1
        assert region.contains((2, 3))

    def test_bounding_region_alias(self):
        assert bounding_region([(0, 0), (2, 3)]) == Region((0, 0), (2, 3))


class TestGeometry:
    def test_shape_volume_edges(self):
        region = Region((3, 5, 3), (5, 6, 4))
        assert region.shape == (3, 2, 2)
        assert region.volume == 12
        assert region.edge_lengths == (2, 1, 1)
        assert region.max_edge == 2

    def test_span(self):
        region = Region((3, 5, 3), (5, 6, 4))
        assert region.span(0) == (3, 5)
        assert region.span(2) == (3, 4)

    def test_contains(self):
        region = Region((1, 1), (3, 3))
        assert region.contains((2, 2))
        assert region.contains((1, 3))
        assert not region.contains((0, 2))
        assert not region.contains((2, 2, 2))
        assert (2, 2) in region
        assert "nonsense" not in region

    def test_contains_region(self):
        outer = Region((0, 0), (5, 5))
        inner = Region((1, 1), (3, 3))
        assert outer.contains_region(inner)
        assert not inner.contains_region(outer)

    def test_intersects_and_intersection(self):
        a = Region((0, 0), (3, 3))
        b = Region((2, 2), (5, 5))
        c = Region((4, 4), (6, 6))
        assert a.intersects(b)
        assert a.intersection(b) == Region((2, 2), (3, 3))
        assert not a.intersects(c)
        assert a.intersection(c) is None

    def test_intersects_rank_mismatch(self):
        with pytest.raises(ValueError):
            Region((0,), (1,)).intersects(Region((0, 0), (1, 1)))

    def test_union_bound(self):
        a = Region((0, 0), (1, 1))
        b = Region((3, 3), (4, 4))
        assert a.union_bound(b) == Region((0, 0), (4, 4))

    def test_distance_to(self):
        region = Region((2, 2), (4, 4))
        assert region.distance_to((3, 3)) == 0
        assert region.distance_to((0, 3)) == 2
        assert region.distance_to((6, 6)) == 4


class TestDerivedRegions:
    def test_expand_and_shrink(self):
        region = Region((2, 2), (4, 4))
        assert region.expand(1) == Region((1, 1), (5, 5))
        assert region.expand(1).shrink(1) == region
        assert Region((2, 2), (2, 2)).shrink(1) is None

    def test_expand_negative_raises(self):
        with pytest.raises(ValueError):
            Region((0, 0), (1, 1)).expand(-1)

    def test_clip(self):
        region = Region((-1, 3), (4, 12))
        assert region.clip((0, 0), (9, 9)) == Region((0, 3), (4, 9))

    def test_face(self):
        region = Region((2, 2, 2), (4, 5, 6))
        low = region.face(1, -1)
        high = region.face(1, +1)
        assert low == Region((2, 2, 2), (4, 2, 6))
        assert high == Region((2, 5, 2), (4, 5, 6))
        with pytest.raises(ValueError):
            region.face(0, 0)

    def test_adjacent_surface_is_one_unit_away(self):
        # Definition 3: the adjacent surface is one unit away from the block.
        region = Region((3, 5, 3), (5, 6, 4))
        south = region.adjacent_surface(1, -1)   # S1 in the paper (negative Y)
        north = region.adjacent_surface(1, +1)   # S4
        assert south == Region((3, 4, 3), (5, 4, 4))
        assert north == Region((3, 7, 3), (5, 7, 4))

    def test_corner_points_count(self):
        region = Region((1, 1, 1), (2, 3, 4))
        assert len(region.corner_points()) == 8
        assert (1, 1, 1) in region.corner_points()
        assert (2, 3, 4) in region.corner_points()

    def test_block_corner_points_match_paper(self):
        # The paper's block [3:5, 5:6, 3:4] has corners at the combinations of
        # (2,6) x (4,7) x (2,5).
        region = Region((3, 5, 3), (5, 6, 4))
        corners = set(region.block_corner_points())
        assert (6, 4, 5) in corners        # the Figure-2 corner
        assert (2, 4, 2) in corners
        assert len(corners) == 8


class TestIteration:
    def test_iter_points_covers_volume(self):
        region = Region((0, 0), (2, 3))
        points = list(region)
        assert len(points) == region.volume == len(region)
        assert len(set(points)) == len(points)

    def test_boundary_points(self):
        region = Region((0, 0), (3, 3))
        boundary = set(region.boundary_points())
        assert (0, 0) in boundary
        assert (3, 1) in boundary
        assert (1, 1) not in boundary
        # Degenerate regions are all boundary.
        line = Region((0, 0), (0, 4))
        assert set(line.boundary_points()) == set(line.iter_points())
