"""Unit tests for end-to-end information distribution (Algorithm 2 composition)."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.distribution import (
    converged_information,
    distribute_information,
    distribute_information_with_report,
)
from repro.workloads.scenarios import (
    FIGURE1_EXTENT,
    FIGURE1_FAULTS,
    parametric_block_scenario,
    two_block_scenario,
)


class TestDistributeInformation:
    def test_every_frame_node_gets_block_record(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        info = distribute_information(mesh3d, labeling)
        result = build_blocks(mesh3d, FIGURE1_FAULTS)
        block = result.blocks[0]
        for node in block.frame_nodes(mesh3d):
            assert info.has_block_info(node, FIGURE1_EXTENT)

    def test_boundary_records_exist_beyond_frame(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        info = distribute_information(mesh3d, labeling)
        holders = info.nodes_holding_information()
        # Boundary columns extend to the mesh surface, well beyond the frame.
        assert any(node[1] == 0 for node in holders)

    def test_report_round_counts_positive(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        _, report = distribute_information_with_report(mesh3d, labeling)
        assert report.identification_rounds > 0
        assert report.boundary_rounds > 0
        assert report.total_rounds == (
            report.identification_rounds + report.boundary_rounds
        )
        assert FIGURE1_EXTENT in report.identifications
        assert report.identifications[FIGURE1_EXTENT].stable

    def test_no_faults_means_no_information(self, mesh2d):
        from repro.core.block_construction import LabelingState

        info, report = distribute_information_with_report(
            mesh2d, LabelingState(mesh=mesh2d)
        )
        assert info.information_cells() == 0
        assert report.total_rounds == 0

    def test_converged_information_one_call(self, mesh3d):
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        assert info.information_cells() > 0

    def test_two_blocks_both_identified(self):
        scenario = two_block_scenario()
        labeling = build_blocks(scenario.mesh, scenario.schedule.initial_faults).state
        _, report = distribute_information_with_report(scenario.mesh, labeling)
        assert set(report.identifications) == set(scenario.expected_extents)
        assert all(r.stable for r in report.identifications.values())

    def test_information_limited_to_fraction_of_mesh(self):
        """The 'limited' in limited-global: most nodes hold no information."""
        scenario = parametric_block_scenario(16, 3, edge=2)
        info = converged_information(
            scenario.mesh, list(scenario.expected_extents[0].iter_points())
        )
        holders = len(info.nodes_holding_information())
        assert holders < scenario.mesh.size * 0.25
