"""Unit tests for the n-level identification process."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.identification import (
    IdentificationProtocol,
    identify_block,
    oracle_identify,
)
from repro.core.state import InformationState
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import FIGURE1_EXTENT, FIGURE1_FAULTS, parametric_block_scenario


def converged_state(mesh, faults):
    result = build_blocks(mesh, faults)
    info = InformationState(mesh=mesh, labeling=result.state)
    return info, result.blocks


class TestOracle:
    def test_oracle_is_bounding_box(self):
        assert oracle_identify(FIGURE1_FAULTS) == FIGURE1_EXTENT

    def test_oracle_single_node(self):
        assert oracle_identify([(2, 3)]) == Region((2, 3), (2, 3))


class TestIdentificationProtocol:
    def test_identifies_figure1_block(self, mesh3d):
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        result = identify_block(info, blocks[0])
        assert result.stable
        assert result.extent == FIGURE1_EXTENT

    def test_corner_to_corner_geometry(self, mesh3d):
        """The process starts at an n-level corner and forms the block at the
        opposite corner (Figure 5)."""
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        protocol = IdentificationProtocol(info, blocks[0])
        block = blocks[0]
        assert block.level_of(protocol.initialization_corner) == 3
        assert block.level_of(protocol.opposite_corner) == 3
        # Diagonally opposite: they differ in every dimension.
        assert all(
            a != b
            for a, b in zip(protocol.initialization_corner, protocol.opposite_corner)
        )
        result = protocol.run()
        assert result.stable

    def test_record_distributed_to_whole_frame(self, mesh3d):
        """Figure 6: the identified information reaches all adjacent nodes,
        edge nodes and corners of the block."""
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        block = blocks[0]
        protocol = IdentificationProtocol(info, block)
        protocol.run()
        frame = set(block.frame_nodes(mesh3d))
        assert protocol.informed_nodes == frame
        for node in frame:
            assert info.has_block_info(node, block.extent)

    def test_rounds_scale_with_block_perimeter_not_mesh(self):
        """b_i grows with the block size, not the mesh size."""
        small = parametric_block_scenario(12, 3, edge=2)
        large = parametric_block_scenario(12, 3, edge=5)
        rounds = {}
        for scenario in (small, large):
            info, blocks = converged_state(
                scenario.mesh, scenario.schedule.initial_faults
            )
            rounds[scenario.name] = identify_block(info, blocks[0]).total_rounds
        assert rounds[large.name] > rounds[small.name]

        # Same block in a much larger mesh: round count unchanged.
        same_small = parametric_block_scenario(20, 3, edge=2, origin=(5, 5, 5))
        info, blocks = converged_state(
            same_small.mesh, same_small.schedule.initial_faults
        )
        assert identify_block(info, blocks[0]).total_rounds == pytest.approx(
            rounds[small.name], abs=2
        )

    def test_explicit_initialization_corner(self, mesh3d):
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        # The paper's Figure 5 initiates at C(xmax, ymin, zmax) = (6, 4, 5).
        protocol = IdentificationProtocol(
            info, blocks[0], initialization_corner=(6, 4, 5)
        )
        assert protocol.opposite_corner == (2, 7, 2)
        result = protocol.run()
        assert result.stable
        assert result.extent == FIGURE1_EXTENT

    def test_invalid_initialization_corner_rejected(self, mesh3d):
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        with pytest.raises(ValueError):
            IdentificationProtocol(info, blocks[0], initialization_corner=(0, 0, 0))

    def test_works_in_2d_and_4d(self):
        for n_dims, radix, edge in ((2, 10, 3), (4, 6, 2)):
            scenario = parametric_block_scenario(radix, n_dims, edge=edge)
            info, blocks = converged_state(
                scenario.mesh, scenario.schedule.initial_faults
            )
            result = identify_block(info, blocks[0])
            assert result.stable
            assert result.extent == scenario.expected_extents[0]

    def test_instability_when_block_grows_mid_identification(self, mesh3d):
        """A fault appearing on the frame while identifying aborts the process."""
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        block = blocks[0]
        protocol = IdentificationProtocol(info, block)
        protocol.round()
        # A relay node on the frame (the opposite corner) turns faulty.
        info.labeling.make_faulty(protocol.opposite_corner)
        result = protocol.run()
        assert not result.stable

    def test_ttl_expiry_reports_unstable(self, mesh3d):
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        protocol = IdentificationProtocol(info, blocks[0], ttl=1)
        result = protocol.run()
        assert not result.stable

    def test_version_is_stamped(self, mesh3d):
        info, blocks = converged_state(mesh3d, FIGURE1_FAULTS)
        result = identify_block(info, blocks[0], version=7)
        assert result.version == 7
        record = next(iter(info.blocks_known_at(blocks[0].corners(mesh3d)[0])))
        assert record.version == 7
