"""Sweep-pool fault tolerance: crashed workers, wedged pools, telemetry.

A worker process dying mid-shard breaks the whole
:class:`~concurrent.futures.ProcessPoolExecutor`; the dispatcher must
rebuild the pool, resubmit the lost shards, and still land results
byte-identical to an undisturbed run (cells are deterministic pure
functions, so a retry recomputes the exact same numbers).  The crash is
injected through :data:`~repro.experiments.runner.CRASH_ENV_VAR`: a
sentinel file that the first pool worker consumes before killing itself
with SIGKILL.
"""

import json

import pytest

from repro.experiments import ExperimentSpec, run_batch
from repro.experiments.runner import CRASH_ENV_VAR, shutdown_pool
from repro.obs.telemetry import PoolIncident, SweepTelemetry


def pool_spec(**overrides) -> ExperimentSpec:
    params = dict(
        name="pool-recovery",
        mode="simulate",
        mesh_shapes=((6, 6),),
        policies=("limited-global", "no-information"),
        fault_counts=(2,),
        fault_intervals=(5,),
        lams=(1, 2),
        traffic_sizes=(4,),
        seeds=(0, 1),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


@pytest.fixture
def fresh_pool():
    """Force pool workers to fork *after* the test's environment is set
    (the persistent pool would otherwise reuse workers forked earlier),
    and leave no crash-armed pool behind for later tests."""
    shutdown_pool()
    yield
    shutdown_pool()


class TestWorkerCrashRecovery:
    def test_killed_worker_is_retried_byte_identical(
        self, tmp_path, monkeypatch, fresh_pool
    ):
        baseline = run_batch(pool_spec(), workers=2).to_json()

        sentinel = tmp_path / "kill-one-worker"
        sentinel.write_text("armed")
        monkeypatch.setenv(CRASH_ENV_VAR, str(sentinel))
        shutdown_pool()  # workers must fork with the sentinel armed
        disturbed = run_batch(pool_spec(), workers=2)

        assert not sentinel.exists(), "a worker must have consumed the crash"
        assert disturbed.to_json() == baseline
        telemetry = disturbed.telemetry
        assert telemetry is not None
        kinds = [(i.kind, i.action) for i in telemetry.incidents]
        assert ("pool-broken", "retried") in kinds
        # Every cell still landed exactly once.
        assert sum(s.cells for s in telemetry.shards) == len(pool_spec().cells())

    def test_incidents_stay_out_of_canonical_json(
        self, tmp_path, monkeypatch, fresh_pool
    ):
        sentinel = tmp_path / "kill"
        sentinel.write_text("armed")
        monkeypatch.setenv(CRASH_ENV_VAR, str(sentinel))
        shutdown_pool()
        disturbed = run_batch(pool_spec(), workers=2)
        assert disturbed.telemetry.incidents
        assert "incidents" not in json.loads(disturbed.to_json())


class TestInactivityTimeout:
    def test_zero_budget_degrades_to_serial(self, fresh_pool):
        """An (unrealistically) tiny inactivity budget abandons the pool and
        finishes in-process — completeness and byte-identity still hold."""
        baseline = run_batch(pool_spec(), workers=2).to_json()
        shutdown_pool()
        degraded = run_batch(pool_spec(), workers=2, shard_timeout=1e-6)
        assert degraded.to_json() == baseline
        kinds = [(i.kind, i.action) for i in degraded.telemetry.incidents]
        assert ("timeout", "serial") in kinds


class TestIncidentPayload:
    def test_v2_round_trip_with_incidents(self):
        telemetry = SweepTelemetry(
            engine="auto",
            workers=2,
            cells=8,
            wall_seconds=1.0,
            incidents=(
                PoolIncident(kind="pool-broken", shards=3, action="retried"),
                PoolIncident(kind="timeout", shards=1, action="serial"),
            ),
        )
        payload = telemetry.to_dict()
        assert payload["telemetry"]["incidents"] == [
            {"kind": "pool-broken", "shards": 3, "action": "retried"},
            {"kind": "timeout", "shards": 1, "action": "serial"},
        ]
        assert SweepTelemetry.from_dict(payload) == telemetry

    def test_v1_payload_still_parses(self):
        """Telemetry files written before the incidents field must load."""
        payload = {
            "telemetry": {
                "version": 1,
                "engine": "auto",
                "workers": 2,
                "cells": 4,
                "wall_seconds": 1.5,
                "shards": [],
            }
        }
        telemetry = SweepTelemetry.from_dict(payload)
        assert telemetry.incidents == ()

    def test_report_renders_incidents(self):
        from repro.obs.report import render_telemetry_report

        telemetry = SweepTelemetry(
            engine="auto",
            workers=2,
            cells=8,
            wall_seconds=1.0,
            incidents=(PoolIncident(kind="pool-broken", shards=3, action="retried"),),
        )
        report = render_telemetry_report(telemetry)
        assert "incidents (1)" in report
        assert "pool-broken" in report
        assert "retried" in report
