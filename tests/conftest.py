"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.topology import Mesh


@pytest.fixture
def rng() -> np.random.Generator:
    """Deterministic random generator for tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def mesh2d() -> Mesh:
    """A 10x10 2-D mesh."""
    return Mesh.cube(10, 2)


@pytest.fixture
def mesh3d() -> Mesh:
    """The 10x10x10 3-D mesh used by the paper's worked examples."""
    return Mesh.cube(10, 3)


@pytest.fixture
def mesh4d() -> Mesh:
    """A small 4-D mesh (6^4 nodes)."""
    return Mesh.cube(6, 4)
