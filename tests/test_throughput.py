"""Tests for the open-loop throughput subsystem (repro.throughput)."""

import numpy as np
import pytest

from repro.analysis.throughput import (
    flattens,
    is_monotone_nondecreasing,
    throughput_rows,
)
from repro.core.state import InformationState
from repro.experiments import ExperimentSpec, run_batch
from repro.faults.schedule import DynamicFaultSchedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import BatchSource, TrafficMessage
from repro.throughput import (
    BernoulliInjection,
    BurstyInjection,
    MeasurementWindows,
    OpenLoopSource,
    find_saturation,
    load_curves,
    make_injection,
    measure_open_loop,
    run_throughput_point,
)
from repro.throughput.measure import ThroughputResult


class TestInjectionProcesses:
    def test_bernoulli_rate_and_determinism(self):
        process = BernoulliInjection(0.25)
        rng1, rng2 = np.random.default_rng(7), np.random.default_rng(7)
        masks1 = [process.injecting(rng1, 1000) for _ in range(20)]
        masks2 = [process.injecting(rng2, 1000) for _ in range(20)]
        for a, b in zip(masks1, masks2):
            assert (a == b).all()
        mean = np.mean([m.mean() for m in masks1])
        assert 0.2 < mean < 0.3

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            BernoulliInjection(1.5)

    def test_bursty_mean_rate_matches(self):
        process = BurstyInjection(0.1, burstiness=4.0, mean_burst=8.0)
        rng = np.random.default_rng(3)
        total = sum(process.injecting(rng, 500).sum() for _ in range(2000))
        mean = total / (500 * 2000)
        assert 0.07 < mean < 0.13

    def test_bursty_is_clustered(self):
        # A single node's on/off stream should have long runs of silence.
        process = BurstyInjection(0.1, burstiness=4.0, mean_burst=8.0)
        rng = np.random.default_rng(5)
        stream = [bool(process.injecting(rng, 1)[0]) for _ in range(4000)]
        silent = max(
            len(run)
            for run in "".join("x" if s else "." for s in stream).split("x")
        )
        # Bernoulli at 0.1 would practically never stay silent ~40x longer
        # than its mean gap; an off-phase process does.
        assert silent > 100

    def test_make_injection_unknown(self):
        with pytest.raises(ValueError, match="unknown injection"):
            make_injection("poisson", 0.1)


class TestOpenLoopSource:
    def _source(self, **kwargs):
        mesh = Mesh((5, 5))
        defaults = dict(pattern="uniform", seed=0, flits=16)
        defaults.update(kwargs)
        return mesh, OpenLoopSource(mesh, BernoulliInjection(0.5), **defaults)

    def test_one_port_per_node(self):
        mesh, source = self._source()
        emitted = source.poll(0) + source.poll(1) + source.poll(2)
        sources = [m.source for m in emitted]
        # Ports stay busy until the simulator reports completion, so a node
        # never has two setups in flight — later generations queue up.
        assert len(sources) == len(set(sources))
        assert source.queued > 0
        assert source.generated == source.injected + source.queued

    def test_message_finished_frees_port_and_retries_failures(self):
        from repro.core.routing import RouteOutcome, RouteResult
        from repro.simulator.stats import MessageRecord

        mesh, source = self._source(retry_backoff=0)
        message = source.poll(0)[0]
        result = RouteResult(
            outcome=RouteOutcome.EXHAUSTED,
            path=[message.source],
            source=message.source,
            destination=message.destination,
            min_distance=1,
            forward_hops=0,
            backtrack_hops=0,
        )
        source.message_finished(
            MessageRecord(message=message, result=result, finish_step=3)
        )
        # The failed message is re-issued first, keeping its creation step.
        retried = [m for m in source.poll(4) if m.source == message.source]
        assert len(retried) == 1
        assert retried[0].destination == message.destination
        assert retried[0].created_time == 0

    def test_retry_backoff_delays_reissue(self):
        from repro.core.routing import RouteOutcome, RouteResult
        from repro.simulator.stats import MessageRecord

        mesh, source = self._source(retry_backoff=10)
        message = source.poll(0)[0]
        result = RouteResult(
            outcome=RouteOutcome.EXHAUSTED,
            path=[message.source],
            source=message.source,
            destination=message.destination,
            min_distance=1,
            forward_hops=0,
            backtrack_hops=0,
        )
        source.message_finished(
            MessageRecord(message=message, result=result, finish_step=3)
        )
        assert all(m.source != message.source for m in source.poll(4))
        retried = [m for m in source.poll(14) if m.source == message.source]
        assert len(retried) == 1

    def test_transpose_pattern_reverses_coordinates(self):
        mesh = Mesh((6, 6))
        source = OpenLoopSource(
            mesh, BernoulliInjection(1.0), pattern="transpose", seed=0
        )
        for message in source.poll(0):
            assert message.destination == tuple(reversed(message.source))

    def test_transpose_requires_cubic_mesh(self):
        mesh = Mesh((6, 4))
        with pytest.raises(ValueError, match="cubic"):
            OpenLoopSource(mesh, BernoulliInjection(0.1), pattern="transpose")

    def test_hotspot_concentrates_traffic(self):
        mesh = Mesh((7, 7))
        source = OpenLoopSource(
            mesh,
            BernoulliInjection(1.0),
            pattern="hotspot",
            seed=0,
            hotspot_fraction=1.0,
        )
        emitted = source.poll(0)
        assert emitted
        for message in emitted:
            if message.source != (3, 3):  # the hotspot itself sends uniform
                assert message.destination == (3, 3)

    def test_stop_freezes_generation_and_emission(self):
        mesh, source = self._source(stop=2)
        source.poll(0)
        source.poll(1)
        generated = source.generated
        assert source.poll(2) == []
        assert source.generated == generated
        assert source.exhausted(2)
        assert not source.exhausted(1)

    def test_excluded_nodes_never_endpoints(self):
        mesh = Mesh((5, 5))
        excluded = {(2, 2), (1, 3)}
        source = OpenLoopSource(
            mesh, BernoulliInjection(1.0), pattern="uniform", seed=0, exclude=excluded
        )
        for message in source.poll(0):
            assert message.source not in excluded
            assert message.destination not in excluded


class TestStreamingSourceParity:
    """A BatchSource-fed simulator equals the historic list-fed one."""

    def _scenario(self):
        from repro.workloads.congestion import transpose_scenario

        return transpose_scenario(radix=6, n_dims=2, dynamic_faults=3, seed=5)

    @pytest.mark.parametrize("contention", [False, True])
    def test_batch_source_equals_list(self, contention):
        results = []
        for as_source in (False, True):
            scenario = self._scenario()
            traffic = list(scenario.traffic)
            sim = Simulator(
                scenario.mesh,
                schedule=scenario.schedule,
                traffic=BatchSource(traffic) if as_source else traffic,
                config=SimulationConfig(
                    router="limited-global", contention=contention
                ),
            )
            stats = sim.run().stats
            results.append(
                (
                    stats.summary(),
                    [
                        (m.message.source, m.message.destination,
                         m.result.outcome.value, m.result.hops, m.finish_step)
                        for m in stats.messages
                    ],
                )
            )
        assert results[0] == results[1]


class TestBatchedStepping:
    """Per-node batched decisions are byte-identical to the per-probe loop."""

    @pytest.mark.parametrize("contention", [False, True])
    @pytest.mark.parametrize(
        "router", ["limited-global", "no-information", "static-block",
                   "global-information"]
    )
    def test_batched_equals_legacy(self, contention, router):
        from repro.workloads.congestion import transpose_scenario

        results = []
        for batch in (True, False):
            scenario = transpose_scenario(radix=6, n_dims=2, dynamic_faults=3, seed=2)
            sim = Simulator(
                scenario.mesh,
                schedule=scenario.schedule,
                traffic=list(scenario.traffic),
                config=SimulationConfig(
                    router=router, contention=contention, batch_by_node=batch
                ),
            )
            stats = sim.run().stats
            results.append(
                (
                    stats.summary(),
                    [
                        (m.message.source, m.message.destination,
                         m.result.outcome.value, m.result.hops,
                         tuple(m.result.path), m.finish_step)
                        for m in stats.messages
                    ],
                )
            )
        assert results[0] == results[1]

    def test_decision_cache_tracks_information_changes(self):
        from repro.core.routing import DecisionCache, RoutingPolicy

        mesh = Mesh((5, 5))
        info = InformationState.fresh(mesh)
        cache = DecisionCache(info, RoutingPolicy.limited_global())
        before = cache.context((2, 2))
        assert cache.context((2, 2)) is before  # cached while unchanged
        info.labeling.make_faulty((2, 3))
        after = cache.context((2, 2))
        assert after is not before
        assert len(after.usable) == len(before.usable) - 1


class TestWindowedMeasurement:
    def test_low_load_accepts_everything(self):
        result = run_throughput_point(
            (6, 6),
            "limited-global",
            "uniform",
            0.002,
            faults=0,
            seed=3,
            windows=MeasurementWindows(warmup=20, measure=100, drain=150),
        )
        assert result.delivery_rate == 1.0
        assert result.unfinished == 0
        assert result.accepted_throughput == pytest.approx(
            result.offered_load, rel=0.35
        )
        assert 0 < result.mean_setup_latency <= result.p99_setup_latency

    def test_samples_cover_measurement_window(self):
        windows = MeasurementWindows(warmup=20, measure=100, drain=100, sample_every=25)
        result = run_throughput_point(
            (6, 6), "limited-global", "uniform", 0.02, faults=2, seed=1,
            windows=windows,
        )
        assert len(result.samples) == 4
        assert result.samples[0].start_step == 20
        assert sum(s.injected for s in result.samples) == result.injected
        for sample in result.samples:
            assert sample.mean_reserved_links >= 0.0

    def test_windows_validation(self):
        with pytest.raises(ValueError):
            MeasurementWindows(measure=0)

    def test_to_row_keys(self):
        result = run_throughput_point(
            (5, 5), "no-information", "uniform", 0.01, faults=0, seed=0,
            windows=MeasurementWindows(warmup=10, measure=40, drain=60),
        )
        row = result.to_row()
        for key in ("rate", "offered_load", "accepted_throughput",
                    "mean_setup_latency", "p99_setup_latency", "delivery_rate",
                    "unfinished"):
            assert key in row


class TestOpenLoopDeterminismAndParity:
    def test_same_seed_same_windowed_stats(self):
        rows = [
            run_throughput_point(
                (6, 6), "limited-global", "transpose", 0.03, faults=2, seed=9,
                windows=MeasurementWindows(warmup=16, measure=64, drain=120),
            ).to_row()
            for _ in range(2)
        ]
        assert rows[0] == rows[1]

    def test_serial_equals_parallel_batch(self):
        spec = ExperimentSpec(
            name="tp-det",
            mode="throughput",
            mesh_shapes=((6, 6),),
            policies=("limited-global", "no-information"),
            scenarios=("transpose",),
            fault_counts=(2,),
            rates=(0.01, 0.05),
            seeds=(0, 1),
            warmup=16,
            measure=64,
            drain=120,
        )
        serial = run_batch(spec, workers=1).to_json()
        parallel = run_batch(spec, workers=4).to_json()
        assert serial == parallel

    @pytest.mark.parametrize("policy", ["limited-global", "no-information"])
    def test_low_load_matches_closed_batch(self, policy):
        """Near-zero rate: open-loop latencies equal a closed-batch replay."""
        mesh = Mesh((6, 6))
        schedule = DynamicFaultSchedule.static([(2, 2)])
        config = SimulationConfig(router=policy, contention=True, max_steps=10**9)
        source = OpenLoopSource(
            mesh,
            BernoulliInjection(0.002),
            pattern="uniform",
            seed=4,
            flits=16,
            exclude=[(2, 2)],
            stop=300,
        )
        open_sim = Simulator(mesh, schedule=schedule, traffic=source, config=config)
        open_sim.run()
        open_records = {
            (m.message.source, m.message.destination, m.message.start_time):
            (m.result.outcome.value, m.result.hops, m.finish_step)
            for m in open_sim.stats.messages
        }
        assert len(open_records) >= 3  # the rate actually generated traffic

        replay = [
            TrafficMessage(source=s, destination=d, start_time=t, flits=16)
            for (s, d, t) in open_records
        ]
        closed_sim = Simulator(
            mesh,
            schedule=DynamicFaultSchedule.static([(2, 2)]),
            traffic=replay,
            config=SimulationConfig(router=policy, contention=True, max_steps=10**9),
        )
        closed_sim.run()
        closed_records = {
            (m.message.source, m.message.destination, m.message.start_time):
            (m.result.outcome.value, m.result.hops, m.finish_step)
            for m in closed_sim.stats.messages
        }
        assert open_records == closed_records


class TestSaturation:
    def _fake_measure(self, saturation_rate):
        def measure(rate):
            latency = 5.0 if rate <= saturation_rate else 80.0
            accepted = min(rate, saturation_rate)
            return ThroughputResult(
                policy="fake",
                pattern="uniform",
                rate=rate,
                injected=100,
                delivered=100,
                failed=0,
                unfinished=0,
                offered_load=rate,
                accepted_throughput=accepted,
                mean_setup_latency=latency,
                p99_setup_latency=latency * 2,
                samples=(),
                steps=100,
            )

        return measure

    def test_find_saturation_brackets_the_knee(self):
        rate, probed = find_saturation(
            self._fake_measure(0.1), low=0.01, high=0.4, iterations=8
        )
        assert 0.08 <= rate <= 0.12
        assert probed == sorted(probed, key=lambda p: p.rate)

    def test_find_saturation_validation(self):
        with pytest.raises(ValueError):
            find_saturation(self._fake_measure(0.1), low=0.5, high=0.4)

    def test_shape_checks(self):
        assert is_monotone_nondecreasing([1.0, 1.2, 1.19, 1.3], tolerance=0.1)
        assert not is_monotone_nondecreasing([1.0, 2.0, 1.0], tolerance=0.1)
        assert flattens([0.01, 0.02, 0.04, 0.08], [0.009, 0.018, 0.022, 0.023])
        assert not flattens([0.01, 0.02, 0.04, 0.08], [0.009, 0.018, 0.036, 0.072])

    def test_acceptance_curve_monotone_and_flattening(self):
        """The PR acceptance criterion: limited-global on an 8x8 mesh."""
        windows = MeasurementWindows(warmup=30, measure=120, drain=240)
        offered, accepted = [], []
        for rate in (0.002, 0.005, 0.01, 0.02, 0.04, 0.08):
            result = run_throughput_point(
                (8, 8), "limited-global", "transpose", rate, faults=4, seed=0,
                windows=windows,
            )
            offered.append(result.offered_load)
            accepted.append(result.accepted_throughput)
        assert is_monotone_nondecreasing(accepted, tolerance=0.15)
        assert flattens(offered, accepted)

    def test_load_curves_and_rows(self):
        batch, curves = load_curves(
            (6, 6),
            ["limited-global"],
            [0.01, 0.05],
            pattern="uniform",
            faults=2,
            windows=MeasurementWindows(warmup=16, measure=64, drain=120),
        )
        curve = curves["limited-global"]
        assert [p.rate for p in curve.points] == [0.01, 0.05]
        rows = throughput_rows(batch)
        assert [r["rate"] for r in rows["limited-global"]] == [0.01, 0.05]


class TestGlobalProbeTimeoutRelease:
    def test_probe_releases_after_wait_timeout(self):
        from repro.core.routing import RouteOutcome
        from repro.routing import GlobalPathProbe

        mesh = Mesh((4, 4))
        info = InformationState.fresh(mesh)
        probe = GlobalPathProbe(mesh, (0, 0), (3, 0), wait_timeout=3)
        assert probe.step(info) is None
        assert probe.current == (1, 0)

        fence = (lambda u, v: True)
        for _ in range(2):
            assert probe.step(info, link_blocked=fence) is None
            assert probe.current == (1, 0)  # waiting, still holding its link
            assert probe.timeout_releases == 0
        assert probe.step(info, link_blocked=fence) is None
        assert probe.timeout_releases == 1
        assert probe.current == (0, 0)  # released the circuit, back at source
        assert probe.backtrack_hops == 1

        # Once the reservations clear, the retried setup delivers.
        for _ in range(10):
            if probe.step(info) is not None:
                break
        assert probe.outcome is RouteOutcome.DELIVERED

    def test_simulator_counts_timeout_releases(self):
        from repro.mesh.coords import canonical_link

        mesh = Mesh((4, 4))
        message = TrafficMessage(source=(0, 0), destination=(3, 3), start_time=0)
        sim = Simulator(
            mesh,
            traffic=[message],
            config=SimulationConfig(router="global-information", contention=True),
        )
        sim.step()  # probe advances one hop, holding one link
        probe = sim._probes[0][1]
        probe.wait_timeout = 2  # keep the test short
        held = {canonical_link(u, v) for u, v in zip(probe.path, probe.path[1:])}
        foreign = 10**6
        for node in mesh.nodes():
            for neighbor in mesh.neighbors(node):
                link = canonical_link(node, neighbor)
                if link not in held and not sim.circuits.is_blocked(foreign, *link):
                    sim.circuits.reserve_link(foreign, *link)
        for _ in range(4):  # fenced in: waits, then times out and releases
            sim.step()
        assert probe.timeout_releases >= 1
        sim.circuits.release(foreign)
        result = sim.run()
        assert result.stats.timeout_releases >= 1
        assert result.stats.summary()["timeout_releases"] >= 1.0
        assert result.stats.delivery_rate == 1.0


class TestThroughputSpec:
    def test_flits_and_scenario_are_axes(self):
        spec = ExperimentSpec(
            mode="simulate",
            scenarios=("random", "hotspot"),
            flits=(16, 64),
            policies=("limited-global", "no-information"),
        )
        cells = spec.cells()
        assert spec.cell_count == len(cells) == 2 * 2 * 2
        assert {c.scenario for c in cells} == {"random", "hotspot"}
        assert {c.flits for c in cells} == {16, 64}

    def test_cell_seed_policy_invariant_across_new_axes(self):
        spec = ExperimentSpec(
            mode="throughput",
            scenarios=("uniform", "transpose"),
            rates=(0.01, 0.05),
            flits=(16, 64),
            policies=("limited-global", "static-block", "no-information"),
        )
        by_config = {}
        for cell in spec.cells():
            by_config.setdefault(cell.config_key(), set()).add(cell.cell_seed)
        for seeds in by_config.values():
            assert len(seeds) == 1  # every policy shares the configuration seed
        # The rate is likewise excluded from the derivation: every point of
        # one load curve shares the same fault layout and random stream.
        by_curve = {}
        for cell in spec.cells():
            key = tuple(k for k in cell.config_key() if not isinstance(k, float))
            by_curve.setdefault(key, set()).add(cell.cell_seed)
        for seeds in by_curve.values():
            assert len(seeds) == 1
        distinct = {c.cell_seed for c in spec.cells()}
        assert len(distinct) == len(by_curve)

    def test_throughput_mode_forces_contention(self):
        spec = ExperimentSpec(mode="throughput")
        assert spec.contention is True
        assert spec.scenarios == ("uniform",)

    def test_scenario_validation_per_mode(self):
        with pytest.raises(ValueError, match="not valid"):
            ExperimentSpec(mode="simulate", scenarios=("uniform",))
        with pytest.raises(ValueError, match="not valid"):
            ExperimentSpec(mode="throughput", scenarios=("bursty",))
        with pytest.raises(ValueError, match="not valid"):
            ExperimentSpec(mode="offline", scenarios=("hotspot",))

    def test_transpose_requires_cubic_shapes(self):
        with pytest.raises(ValueError, match="cubic"):
            ExperimentSpec(
                mode="simulate", scenarios=("transpose",), mesh_shapes=((8, 4),)
            )

    def test_rates_validation(self):
        with pytest.raises(ValueError, match="rates"):
            ExperimentSpec(mode="simulate", rates=(0.1, 0.2))
        with pytest.raises(ValueError, match="rates"):
            ExperimentSpec(mode="throughput", rates=(0.0,))

    def test_scenario_axis_runs_in_simulate_mode(self):
        spec = ExperimentSpec(
            mode="simulate",
            mesh_shapes=((6, 6),),
            scenarios=("hotspot", "bursty"),
            fault_counts=(2,),
            traffic_sizes=(6,),
        )
        batch = run_batch(spec)
        assert len(batch) == 2
        for result in batch.results:
            assert result.metrics["messages"] > 0


class TestThroughputCli:
    def test_throughput_command_prints_curve(self, capsys):
        from repro.cli import main

        code = main(
            [
                "throughput", "--shape", "6,6", "--policy", "limited-global",
                "--scenario", "transpose", "--rates", "0.01,0.05",
                "--faults", "2", "--warmup", "16", "--measure", "64",
                "--drain", "120",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "policy limited-global:" in out
        assert "accepted" in out

    def test_throughput_command_writes_json(self, capsys, tmp_path):
        import json

        from repro.cli import main

        out_path = tmp_path / "curve.json"
        code = main(
            [
                "throughput", "--shape", "5,5", "--policy", "no-information",
                "--rates", "0.01", "--faults", "0", "--warmup", "8",
                "--measure", "32", "--drain", "60", "--out", str(out_path),
            ]
        )
        assert code == 0
        payload = json.loads(out_path.read_text())
        assert payload["spec"]["mode"] == "throughput"
        assert payload["cells"][0]["rate"] == 0.01


class TestEngineLabelingSkip:
    """The stable-labeling skip must not change any statistic."""

    def test_dynamic_schedule_stats_unchanged_by_skip(self):
        from repro.workloads.scenarios import random_dynamic_scenario

        class NoSkipSimulator(Simulator):
            """Forces a real labeling round every step (the pre-skip engine)."""

            def step(self):
                self._labeling_stable = False
                super().step()

        def run(cls):
            scenario = random_dynamic_scenario(
                shape=(6, 6), dynamic_faults=3, interval=7, messages=8, seed=11
            )
            sim = cls(
                scenario.mesh,
                schedule=scenario.schedule,
                traffic=list(scenario.traffic),
                config=SimulationConfig(router="limited-global"),
            )
            stats = sim.run().stats
            return (
                stats.summary(),
                stats.total_rounds,
                [(c.labeling_rounds, c.total_rounds) for c in stats.convergence],
            )

        assert run(Simulator) == run(NoSkipSimulator)
