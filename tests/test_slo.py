"""Unit tests for :mod:`repro.analysis.slo` on synthetic series.

The SLO module is pure series arithmetic, so every behaviour — dips,
recoveries, never-recovers sentinels, overlapping events, latency
excursions — can be pinned with hand-built series whose answers are known
exactly.
"""

import pytest

from repro.analysis.slo import (
    EventSlo,
    RecoverySlo,
    compute_recovery_slo,
    event_transient,
    moving_average,
    p99_excursion,
)


class TestMovingAverage:
    def test_window_one_is_identity(self):
        series = [3.0, 1.0, 4.0, 1.0, 5.0]
        assert moving_average(series, 1) == series

    def test_trailing_mean(self):
        series = [2.0, 4.0, 6.0, 8.0]
        # Window 2: first value averages only itself.
        assert moving_average(series, 2) == [2.0, 3.0, 5.0, 7.0]

    def test_warmup_divides_by_samples_seen(self):
        assert moving_average([4.0, 8.0], 10) == [4.0, 6.0]

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestEventTransient:
    def _step_down_series(self, *, pre=2.0, post=0.0, at=50, length=100):
        return [pre] * at + [post] * (length - at)

    def test_full_dip_never_recovers(self):
        series = self._step_down_series()
        baseline, dip, ttr = event_transient(series, 50, smooth=1)
        assert baseline == pytest.approx(2.0)
        assert dip == pytest.approx(1.0)
        assert ttr == -1

    def test_recovery_detected_at_threshold(self):
        # Dip to zero for 10 steps, then back to the old level.
        series = [2.0] * 50 + [0.0] * 10 + [2.0] * 40
        baseline, dip, ttr = event_transient(series, 50, smooth=1)
        assert baseline == pytest.approx(2.0)
        assert dip == pytest.approx(1.0)
        assert ttr == 10  # first step at/above 0.9 * baseline

    def test_partial_dip_within_threshold_is_instant_recovery(self):
        # Drop only to 95% of baseline: never below the recovery threshold.
        series = [2.0] * 50 + [1.9] * 50
        baseline, dip, ttr = event_transient(series, 50, smooth=1)
        assert ttr == 0
        assert dip == pytest.approx(0.05)  # shallow, but still measured

    def test_zero_baseline_yields_no_transient(self):
        series = [0.0] * 50 + [1.0] * 50
        baseline, dip, ttr = event_transient(series, 50, smooth=1)
        assert (baseline, dip, ttr) == (0.0, 0.0, 0)

    def test_event_past_series_end(self):
        assert event_transient([1.0] * 10, 10) == (0.0, 0.0, -1)

    def test_event_at_step_zero_has_no_baseline(self):
        assert event_transient([1.0] * 10, 0, smooth=1) == (0.0, 0.0, 0)

    def test_smoothing_spreads_the_trough(self):
        # A single zero step barely dents the 4-step smoothed series.
        series = [2.0] * 50 + [0.0] + [2.0] * 49
        _, dip_smooth, _ = event_transient(series, 50, smooth=4)
        _, dip_raw, _ = event_transient(series, 50, smooth=1)
        assert dip_raw == pytest.approx(1.0)
        assert 0.0 < dip_smooth < dip_raw

    def test_validation(self):
        with pytest.raises(ValueError):
            event_transient([1.0], -1)
        with pytest.raises(ValueError):
            event_transient([1.0], 0, recover_fraction=0.0)
        with pytest.raises(ValueError):
            event_transient([1.0], 0, recover_fraction=1.5)


class TestP99Excursion:
    def test_post_minus_pre(self):
        pairs = [(t, 10.0) for t in range(40, 50)] + [
            (t, 30.0) for t in range(50, 60)
        ]
        assert p99_excursion(pairs, 50) == pytest.approx(20.0)

    def test_empty_side_is_zero(self):
        post_only = [(t, 30.0) for t in range(50, 60)]
        assert p99_excursion(post_only, 50) == 0.0
        pre_only = [(t, 10.0) for t in range(40, 50)]
        assert p99_excursion(pre_only, 50) == 0.0
        assert p99_excursion([], 50) == 0.0

    def test_windows_bound_the_comparison(self):
        pairs = [(0, 999.0), (49, 10.0), (50, 30.0), (500, 999.0)]
        # The outliers fall outside both windows.
        assert p99_excursion(pairs, 50) == pytest.approx(20.0)


class TestRecoverySlo:
    def test_aggregates_are_worst_case(self):
        slo = RecoverySlo(
            events=(
                EventSlo(10, (1, 1), 2.0, 0.3, 5, 4.0, 1),
                EventSlo(40, (2, 2), 2.0, 0.8, 12, 9.0, 2),
            )
        )
        assert slo.dip_depth == pytest.approx(0.8)
        assert slo.time_to_recover == 12
        assert slo.p99_excursion == pytest.approx(9.0)
        assert slo.fault_dropped == 3

    def test_any_unrecovered_event_poisons_the_aggregate(self):
        slo = RecoverySlo(
            events=(
                EventSlo(10, (1, 1), 2.0, 0.3, 5, 0.0, 0),
                EventSlo(40, (2, 2), 2.0, 1.0, -1, 0.0, 0),
            )
        )
        assert slo.time_to_recover == -1
        assert not slo.events[1].recovered
        assert slo.summary()["slo_time_to_recover"] == -1.0

    def test_empty_run(self):
        slo = RecoverySlo(events=())
        assert slo.dip_depth == 0.0
        assert slo.time_to_recover == 0
        assert slo.summary()["fault_events"] == 0.0


class TestComputeRecoverySlo:
    def test_single_event_end_to_end(self):
        delivered = [2.0] * 50 + [0.0] * 10 + [2.0] * 40
        dropped = [0.0] * 100
        dropped[50] = 3.0
        slo = compute_recovery_slo(
            delivered, dropped, [(50, (4, 4))], smooth=1
        )
        assert len(slo.events) == 1
        event = slo.events[0]
        assert event.node == (4, 4)
        assert event.dip_depth == pytest.approx(1.0)
        assert event.time_to_recover == 10
        assert event.fault_dropped == 3

    def test_overlapping_events_attribute_drops_by_window(self):
        # Second fault fires while the first transient is still open:
        # drops between the events belong to the first, later ones to
        # the second, and each event scores its own transient.
        delivered = [2.0] * 50 + [0.0] * 30 + [2.0] * 20
        dropped = [0.0] * 100
        dropped[52] = 1.0  # after event 1, before event 2
        dropped[70] = 2.0  # after event 2
        slo = compute_recovery_slo(
            delivered, dropped, [(60, (2, 2)), (50, (1, 1))], smooth=1
        )
        # Events are scored in time order regardless of input order.
        assert [e.time for e in slo.events] == [50, 60]
        assert slo.events[0].fault_dropped == 1
        assert slo.events[1].fault_dropped == 2
        assert slo.events[0].time_to_recover == 30
        # Event 2's 32-step baseline window straddles the outage start:
        # 22 healthy steps at 2.0 and 10 at 0.0 average to a depressed
        # baseline, against which the still-zero throughput is a full dip.
        assert slo.events[1].baseline == pytest.approx(22 * 2.0 / 32)
        assert slo.events[1].dip_depth == pytest.approx(1.0)
        assert slo.events[1].time_to_recover == 20
        assert slo.dip_depth == pytest.approx(1.0)
        assert slo.fault_dropped == 3

    def test_never_recovers_run(self):
        delivered = [2.0] * 50 + [0.0] * 50
        slo = compute_recovery_slo(
            delivered, [0.0] * 100, [(50, (3, 3))], smooth=1
        )
        assert slo.time_to_recover == -1
        assert not slo.events[0].recovered

    def test_latencies_flow_into_excursion(self):
        delivered = [2.0] * 100
        latencies = [(t, 10.0) for t in range(40, 50)] + [
            (t, 25.0) for t in range(50, 60)
        ]
        slo = compute_recovery_slo(
            delivered,
            [0.0] * 100,
            [(50, (3, 3))],
            latencies_by_finish=latencies,
            smooth=1,
        )
        assert slo.events[0].p99_excursion == pytest.approx(15.0)
