"""Tests for the unified router registry (repro.routing).

Covers registry completeness (every policy name the CLI and the experiment
spec accept resolves), the online/offline parity contract (a contention-free
single-message simulation reproduces the offline route exactly, for every
registered policy) and the online-only behaviors of the static-block and
global-information routers.
"""

import pytest

from repro.cli import _build_parser
from repro.core.block_construction import build_blocks
from repro.core.routing import RouteOutcome
from repro.experiments import OFFLINE_POLICIES, SIMULATE_POLICIES, ExperimentSpec
from repro.faults.injection import dynamic_schedule
from repro.faults.schedule import DynamicFaultSchedule
from repro.mesh.topology import Mesh
from repro.routing import (
    AlgorithmRouter,
    Router,
    available_routers,
    register_router,
    resolve_router,
    route_with,
)
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage

EXPECTED_POLICIES = {
    "limited-global",
    "static-block",
    "boundary-only",
    "no-disabled-avoid",
    "no-information",
    "global-information",
}

FAULTS = [(3, 5), (4, 5), (5, 5), (4, 6)]


def _labeling(mesh):
    return build_blocks(mesh, FAULTS).state


class TestRegistryCompleteness:
    def test_expected_policies_registered(self):
        assert set(available_routers()) == EXPECTED_POLICIES

    def test_every_spec_policy_resolves(self):
        """Every policy name the experiment spec accepts must resolve."""
        for name in (*SIMULATE_POLICIES, *OFFLINE_POLICIES):
            router = resolve_router(name)
            assert isinstance(router, Router)
            assert router.name == name

    def test_spec_accepts_every_registered_policy_in_both_modes(self):
        for mode in ("simulate", "offline"):
            spec = ExperimentSpec(mode=mode, policies=available_routers())
            assert len(spec.policies) == len(EXPECTED_POLICIES)

    def test_cli_policy_choices_match_registry(self):
        """Every policy name the CLI accepts resolves (and vice versa)."""
        parser = _build_parser()
        subparsers = next(
            a for a in parser._actions if hasattr(a, "choices") and a.choices
        )
        for command in ("route", "simulate"):
            sub = subparsers.choices[command]
            policy_action = next(a for a in sub._actions if a.dest == "policy")
            assert tuple(policy_action.choices) == available_routers()

    def test_unknown_name_raises_with_menu(self):
        with pytest.raises(ValueError, match="limited-global"):
            resolve_router("nope")

    def test_resolve_returns_fresh_instances(self):
        assert resolve_router("static-block") is not resolve_router("static-block")

    def test_duplicate_registration_guard(self):
        with pytest.raises(ValueError):
            register_router("limited-global", lambda: None)


class TestOfflineOnlineParity:
    """Contention-free single-message simulation == offline route, per policy."""

    @pytest.mark.parametrize("name", sorted(EXPECTED_POLICIES))
    @pytest.mark.parametrize(
        "source,destination",
        [((0, 5), (9, 5)), ((2, 2), (7, 9)), ((0, 0), (9, 9))],
    )
    def test_parity(self, name, source, destination):
        mesh = Mesh.cube(10, 2)
        offline = route_with(name, mesh, _labeling(mesh), source, destination)
        sim = Simulator(
            mesh,
            schedule=DynamicFaultSchedule.static(FAULTS),
            traffic=[TrafficMessage(source=source, destination=destination)],
            config=SimulationConfig(router=name),
        )
        record = sim.run().stats.messages[0]
        assert record.result.outcome == offline.outcome
        assert record.result.path == offline.path
        assert record.result.hops == offline.hops
        assert record.result.backtrack_hops == offline.backtrack_hops
        assert record.blocked_hops == 0
        assert record.setup_retries == 0

    def test_parity_unreachable_destination(self):
        """A destination walled in by faults is unreachable both ways."""
        mesh = Mesh.cube(8, 2)
        walls = [(0, 1), (1, 1), (1, 0)]
        labeling = build_blocks(mesh, walls).state
        for name in sorted(EXPECTED_POLICIES):
            offline = route_with(name, mesh, labeling, (7, 7), (0, 0))
            sim = Simulator(
                mesh,
                schedule=DynamicFaultSchedule.static(walls),
                traffic=[TrafficMessage(source=(7, 7), destination=(0, 0))],
                config=SimulationConfig(router=name),
            )
            record = sim.run().stats.messages[0]
            assert offline.outcome is not RouteOutcome.DELIVERED
            assert record.result.outcome == offline.outcome, name


class TestAlgorithmRouterViews:
    def test_no_information_router_uses_bare_view(self):
        mesh = Mesh.cube(8, 2)
        labeling = _labeling(mesh)
        router = resolve_router("no-information")
        view = router.offline_view(mesh, labeling)
        assert view.information_cells() == 0

    def test_offline_view_cached_per_labeling_state(self):
        mesh = Mesh.cube(8, 2)
        labeling = _labeling(mesh)
        router = resolve_router("limited-global")
        assert router.offline_view(mesh, labeling) is router.offline_view(mesh, labeling)
        labeling.make_faulty((1, 1))
        assert router.offline_view(mesh, labeling).blocks_known_at((1, 2))


class TestStaticBlockOnline:
    def test_adjacent_view_rebuilds_on_labeling_change(self):
        mesh = Mesh.cube(8, 2)
        labeling = _labeling(mesh)
        router = resolve_router("static-block")
        first = router.adjacent_view(mesh, labeling)
        assert router.adjacent_view(mesh, labeling) is first
        labeling.make_faulty((1, 1))
        second = router.adjacent_view(mesh, labeling)
        assert second is not first

    def test_probe_sees_only_adjacent_information(self):
        """Far from the block the static-block probe holds no records."""
        mesh = Mesh.cube(10, 2)
        labeling = _labeling(mesh)
        router = resolve_router("static-block")
        view = router.adjacent_view(mesh, labeling)
        assert not view.blocks_known_at((0, 0))
        assert view.blocks_known_at((2, 5))  # frame node next to the block


class TestGlobalInformationOnline:
    def test_replans_when_fault_appears_mid_flight(self):
        """A fault dropped onto the planned path forces a live replan."""
        mesh = Mesh.cube(10, 2)
        schedule = dynamic_schedule([(5, 5)], start_time=2)
        sim = Simulator(
            mesh,
            schedule=schedule,
            traffic=[TrafficMessage(source=(0, 5), destination=(9, 5))],
            config=SimulationConfig(router="global-information"),
        )
        record = sim.run().stats.messages[0]
        assert record.delivered
        assert (5, 5) not in record.result.path
        # The straight row was the plan until the fault appeared.
        assert record.result.path[0] == (0, 5)
        assert record.result.backtrack_hops == 0

    def test_unreachable_when_walled_in(self):
        mesh = Mesh.cube(6, 2)
        walls = [(0, 1), (1, 1), (1, 0)]
        sim = Simulator(
            mesh,
            schedule=DynamicFaultSchedule.static(walls),
            traffic=[TrafficMessage(source=(5, 5), destination=(0, 0))],
            config=SimulationConfig(router="global-information"),
        )
        record = sim.run().stats.messages[0]
        assert record.result.outcome is RouteOutcome.UNREACHABLE


class TestSimulationConfigRouter:
    def test_unknown_router_rejected_at_config_time(self):
        with pytest.raises(ValueError, match="registered"):
            SimulationConfig(router="nope")

    def test_policy_fallback_used_when_router_unset(self):
        mesh = Mesh.cube(6, 2)
        sim = Simulator(mesh, config=SimulationConfig())
        assert isinstance(sim.router, AlgorithmRouter)
        assert sim.router.name == "limited-global"
