"""Scalar-vs-vectorized parity: labeling, ledger, decisions, index tables.

The numpy-vectorized labeling engine, the array-backed reservation ledger
and the batched decision engine must be *byte-identical* to their
pure-Python reference implementations — same statuses, same mutation
counters, same block extents, same reserved-link sets, same candidate
classifications, same simulation statistics.  These tests drive both
implementations through randomized fault churn, dynamic schedule replays,
full simulations for every registered router policy in both contention
modes, randomized probe-decision sweeps over every probe kind, and
randomized reserve/release/ref-count/expiry sequences.
"""

import numpy as np
import pytest

from repro.backend import SCALAR, VECTOR
from repro.core.block_construction import (
    LabelingState,
    build_blocks,
    extract_blocks,
    labeling_round,
    run_block_construction,
)
from repro.core.distribution import distribute_information
from repro.core.routing import (
    DecisionCache,
    RoutingPolicy,
    RoutingProbe,
    decision_candidates,
)
from repro.core.state import InformationState
from repro.faults.injection import uniform_random_faults
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.mesh.topology import Mesh
from repro.pcs.circuit import ArrayCircuitLedger, Circuit, LiveCircuitLedger
from repro.routing import available_routers
from repro.routing.static_block import adjacent_only_information
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage
from repro.workloads.traffic import random_pairs, transpose_pairs

BACKENDS = (SCALAR, VECTOR)


def _assert_states_identical(scalar: LabelingState, vector: LabelingState) -> None:
    assert np.array_equal(scalar.codes, vector.codes)
    assert scalar._non_enabled == vector._non_enabled
    assert scalar.mutations == vector.mutations
    scalar_blocks = [(b.extent, tuple(b.faulty_nodes)) for b in extract_blocks(scalar)]
    vector_blocks = [(b.extent, tuple(b.faulty_nodes)) for b in extract_blocks(vector)]
    assert scalar_blocks == vector_blocks


# --------------------------------------------------------------------- #
# labeling rounds
# --------------------------------------------------------------------- #
class TestLabelingParity:
    @pytest.mark.parametrize("shape", [(12, 12), (8, 8, 8), (6, 6, 4, 4)])
    @pytest.mark.parametrize("seed", range(4))
    def test_randomized_fault_churn(self, shape, seed):
        """Fault → converge → recover → converge → re-fault → converge."""
        mesh = Mesh(shape)
        rng = np.random.default_rng(seed)
        count = max(4, mesh.size // 60)
        faults = uniform_random_faults(mesh, count, rng, margin=1)

        states = {b: LabelingState.from_faults(mesh, faults) for b in BACKENDS}
        results = {
            b: run_block_construction(states[b], backend=b) for b in BACKENDS
        }
        assert results[SCALAR].rounds == results[VECTOR].rounds
        assert results[SCALAR].status_changes == results[VECTOR].status_changes
        _assert_states_identical(states[SCALAR], states[VECTOR])

        # Recover a sample of the faults, one convergence per recovery.
        recovered = [faults[i] for i in rng.choice(len(faults), len(faults) // 2, replace=False)]
        for node in recovered:
            for backend in BACKENDS:
                states[backend].recover(node)
                run_block_construction(states[backend], backend=backend)
            _assert_states_identical(states[SCALAR], states[VECTOR])

        # New faults elsewhere (churn), round-by-round lockstep this time.
        new_faults = uniform_random_faults(
            mesh, count // 2 + 1, rng, margin=1, exclude=faults
        )
        for node in new_faults:
            for backend in BACKENDS:
                states[backend].make_faulty(node)
            while True:
                changed = {
                    b: labeling_round(states[b], backend=b) for b in BACKENDS
                }
                assert changed[SCALAR] == changed[VECTOR]
                _assert_states_identical(states[SCALAR], states[VECTOR])
                if changed[SCALAR] == 0:
                    break

    def test_surface_touching_block(self):
        """Faults near the surface exercise the off-mesh sentinel handling."""
        mesh = Mesh.cube(8, 2)
        faults = [(1, 1), (1, 2), (2, 1), (6, 6), (6, 5)]
        states = {b: LabelingState.from_faults(mesh, faults) for b in BACKENDS}
        for backend in BACKENDS:
            run_block_construction(states[backend], backend=backend)
        _assert_states_identical(states[SCALAR], states[VECTOR])

    def test_empty_state_round_is_noop(self):
        mesh = Mesh.cube(6, 2)
        for backend in BACKENDS:
            state = LabelingState(mesh=mesh)
            assert labeling_round(state, backend=backend) == 0
            assert state.mutations == 0


class TestScheduleReplayParity:
    def _schedule(self):
        return DynamicFaultSchedule(
            initial_faults={(4, 4), (4, 5)},
            events=[
                FaultEvent(3, (5, 4)),
                FaultEvent(6, (5, 5)),
                FaultEvent(10, (4, 4), FaultEventKind.RECOVERY),
                FaultEvent(14, (2, 6)),
                FaultEvent(18, (5, 4), FaultEventKind.RECOVERY),
            ],
        )

    @pytest.mark.parametrize("contention", [False, True])
    def test_dynamic_fault_replay(self, contention):
        """Full simulator runs under both backends are byte-identical."""
        mesh = Mesh.cube(10, 2)
        traffic = [
            TrafficMessage(source=(0, 0), destination=(9, 9), start_time=0, flits=16),
            TrafficMessage(source=(9, 0), destination=(0, 9), start_time=4, flits=16),
            TrafficMessage(source=(0, 9), destination=(9, 0), start_time=8, flits=16),
            TrafficMessage(source=(2, 0), destination=(7, 9), start_time=12, flits=16),
        ]
        outputs = {}
        for backend in BACKENDS:
            sim = Simulator(
                mesh,
                schedule=self._schedule(),
                traffic=list(traffic),
                config=SimulationConfig(contention=contention, backend=backend),
            )
            result = sim.run()
            outputs[backend] = (
                result.stats.summary(),
                [
                    (m.message.source, m.message.destination,
                     m.result.outcome, tuple(m.result.path))
                    for m in result.stats.messages
                ],
                result.information.labeling.non_enabled_nodes(),
            )
            if contention:
                assert sim.circuits.reserved_links == 0
        assert outputs[SCALAR] == outputs[VECTOR]


class TestPolicyContentionParity:
    @pytest.mark.parametrize("contention", [False, True])
    @pytest.mark.parametrize("policy", sorted(available_routers()))
    def test_policy_parity_both_contention_modes(self, policy, contention):
        """Acceptance gate: every registry policy x contention mode, both backends.

        With the vector backend the simulator classifies probe decisions
        through the batched engine (and, under contention, scans candidates
        against the array ledger's occupancy columns); the scalar backend
        keeps the per-probe reference loop.  Stats and per-message paths
        must be byte-identical.
        """
        mesh = Mesh.cube(8, 2)
        rng = np.random.default_rng(11)
        faults = uniform_random_faults(mesh, 4, rng, margin=1)
        fault_set = set(faults)
        pairs = [
            (s, d)
            for s, d in transpose_pairs(mesh)
            if s not in fault_set and d not in fault_set
        ][:24]
        traffic = [
            TrafficMessage(source=s, destination=d, start_time=i // 4, flits=8)
            for i, (s, d) in enumerate(pairs)
        ]
        outputs = {}
        for backend in BACKENDS:
            sim = Simulator(
                mesh,
                schedule=DynamicFaultSchedule.static(faults),
                traffic=list(traffic),
                config=SimulationConfig(
                    router=policy, contention=contention, backend=backend
                ),
            )
            stats = sim.run().stats
            outputs[backend] = (
                stats.summary(),
                [
                    (m.message.source, m.message.destination,
                     m.result.outcome, tuple(m.result.path))
                    for m in stats.messages
                ],
            )
        assert outputs[SCALAR] == outputs[VECTOR]


# --------------------------------------------------------------------- #
# batched decision engine
# --------------------------------------------------------------------- #

#: The five Algorithm-3 policies with their offline information view
#: builders; ``global-information`` plans with a BFS (no per-direction
#: classification) and is covered by the full-simulation parity above.
DECISION_POLICIES = {
    "limited-global": (RoutingPolicy.limited_global, distribute_information),
    "static-block": (
        lambda: RoutingPolicy(name="static-block", use_boundary_info=False),
        adjacent_only_information,
    ),
    "boundary-only": (
        lambda: RoutingPolicy(name="boundary-only", use_block_info=False),
        distribute_information,
    ),
    "no-disabled-avoid": (
        lambda: RoutingPolicy(name="no-disabled-avoid", avoid_known_disabled=False),
        distribute_information,
    ),
    "no-information": (
        RoutingPolicy.no_information,
        lambda mesh, labeling: InformationState(mesh=mesh, labeling=labeling),
    ),
}


def _decision_population(mesh, info, policy, rng, count):
    """In-flight headers covering all four probe kinds.

    * **fresh** — a probe still at its source (no stack, no used set);
    * **advancing** — mid-walk with an incoming direction;
    * **revisiting** — nodes with non-empty used-direction sets (walks that
      backtracked or looped);
    * **rule-1** — a probe standing on a *disabled* node away from its
      source (``decision_candidates`` must return ``None``).

    The first three arise from stepping real probes to staggered depths;
    the rule-1 kind is crafted explicitly because delivered walks avoid it.
    """
    labeling = info.labeling
    pairs = random_pairs(
        mesh, count, rng,
        min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )
    cache = DecisionCache(info, policy, backend=SCALAR)
    headers = []
    for i, (src, dst) in enumerate(pairs):
        probe = RoutingProbe(mesh, src, dst, policy=policy)
        for _ in range(i % (mesh.diameter + 2)):
            if probe.done:
                break
            probe.step(info, decision_cache=cache)
        if not probe.done:
            headers.append(probe.header)
    # Rule-1 kind: place a probe on every disabled node (entered from a
    # neighbor, so the source differs and the unconditional-backtrack rule
    # fires), plus one *starting* on a disabled node (rule 1 must not fire).
    for node in sorted(labeling.disabled_nodes):
        for neighbor in mesh.neighbors(node):
            if labeling.is_operational(neighbor):
                probe = RoutingProbe(mesh, neighbor, node, policy=policy)
                probe.header.push(node)
                headers.append(probe.header)
                break
        far = max(mesh.nodes(), key=lambda c: mesh.distance(c, node))
        headers.append(RoutingProbe(mesh, node, far, policy=policy).header)
    return headers


class TestDecisionBatchParity:
    """Vectorized batch classification == scalar reference, byte-identical."""

    @pytest.mark.parametrize("policy_name", sorted(DECISION_POLICIES))
    @pytest.mark.parametrize("shape,seed", [((12, 12), 0), ((12, 12), 1), ((7, 7, 7), 2)])
    def test_randomized_decision_sweep(self, policy_name, shape, seed):
        mesh = Mesh(shape)
        rng = np.random.default_rng(seed)
        faults = uniform_random_faults(mesh, max(4, mesh.size // 80), rng, margin=1)
        labeling = build_blocks(mesh, faults).state
        make_policy, make_info = DECISION_POLICIES[policy_name]
        policy = make_policy()
        info = make_info(mesh, labeling)
        headers = _decision_population(mesh, info, policy, rng, count=48)
        assert headers, "population generation produced no in-flight headers"

        scalar_cache = DecisionCache(info, policy, backend=SCALAR)
        expected = [
            decision_candidates(info, h, policy=policy, cache=scalar_cache)
            for h in headers
        ]
        vector_cache = DecisionCache(info, policy, backend=VECTOR)
        assert vector_cache.batch_candidates(headers) == expected
        # The compact simulator form must carry the same directions in the
        # same order, with each next hop and link slot matching the mesh.
        for header, classified, compact in zip(
            headers, expected, vector_cache.batch_candidate_pairs(headers)
        ):
            if classified is None:
                assert compact is None
                continue
            node = header.current
            assert [d for _, d in classified] == [d for d, _, _ in compact]
            for direction, nxt, slot in compact:
                assert nxt == direction.apply(node)
                assert slot == mesh.link_index(node, nxt)

    def test_rule_one_returns_none(self):
        """A probe on a disabled node away from its source gets ``None``."""
        mesh = Mesh.cube(8, 2)
        faults = [(3, 3), (3, 5), (5, 3), (5, 5), (4, 4)]
        labeling = build_blocks(mesh, faults).state
        disabled = sorted(labeling.disabled_nodes)
        assert disabled, "fault pattern must disable at least one node"
        info = distribute_information(mesh, labeling)
        policy = RoutingPolicy.limited_global()
        node = disabled[0]
        entered = RoutingProbe(mesh, (0, 0), (7, 7), policy=policy)
        entered.header.stack = [(0, 0), node]
        starting = RoutingProbe(mesh, node, (7, 7), policy=policy)
        cache = DecisionCache(info, policy, backend=VECTOR)
        batch = cache.batch_candidates([entered.header, starting.header])
        assert batch[0] is None
        assert batch[1] is not None  # rule 1 never strands a probe at home
        assert batch == [
            decision_candidates(info, h, policy=policy)
            for h in (entered.header, starting.header)
        ]

    def test_batch_tracks_information_mutations(self):
        """The engine's tables refresh when labeling or records change."""
        mesh = Mesh.cube(8, 2)
        labeling = build_blocks(mesh, [(3, 3)]).state
        info = distribute_information(mesh, labeling)
        policy = RoutingPolicy.limited_global()
        cache = DecisionCache(info, policy, backend=VECTOR)
        header = RoutingProbe(mesh, (5, 3), (7, 7), policy=policy).header
        before = cache.batch_candidates([header])
        assert before == [decision_candidates(info, header, policy=policy)]
        # Grow the block: (5,3)'s -x neighbor turns faulty, so its usable
        # direction set (and with it the candidate list) must change.
        labeling.make_faulty((4, 3))
        run_block_construction(labeling)
        info.clear_information()
        fresh = distribute_information(mesh, labeling)
        info.node_blocks.update(fresh.node_blocks)
        info.node_boundaries.update(fresh.node_boundaries)
        info.record_mutations += 1
        after = cache.batch_candidates([header])
        assert after == [decision_candidates(info, header, policy=policy)]
        assert after != before


# --------------------------------------------------------------------- #
# circuit ledger
# --------------------------------------------------------------------- #
class TestLedgerParity:
    def _assert_ledgers_identical(self, scalar, vector):
        assert scalar.reserved_links == vector.reserved_links
        assert scalar.active_holders == vector.active_holders
        assert scalar.reserved_link_set() == vector.reserved_link_set()

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_walks(self, seed):
        """Random probe walks: reserve/backtrack/sync/ref-count/expiry."""
        mesh = Mesh.cube(6, 2)
        rng = np.random.default_rng(seed)
        scalar = LiveCircuitLedger()
        vector = ArrayCircuitLedger(mesh)

        stacks = {}  # holder -> current stack
        next_holder = 0
        step = 0
        for _ in range(300):
            op = rng.integers(0, 10)
            if op < 2 or not stacks:  # start a new probe
                start = tuple(int(c) for c in rng.integers(0, 6, size=2))
                stacks[next_holder] = [start]
                next_holder += 1
            elif op < 6:  # advance one unblocked hop
                holder = int(rng.choice(list(stacks)))
                stack = stacks[holder]
                moves = [
                    n
                    for n in mesh.neighbors(stack[-1])
                    if not scalar.is_blocked(holder, stack[-1], n)
                ]
                if moves:
                    nxt = moves[int(rng.integers(0, len(moves)))]
                    assert vector.is_blocked(holder, stack[-1], nxt) is False
                    scalar.reserve_link(holder, stack[-1], nxt)
                    vector.reserve_link(holder, stack[-1], nxt)
                    stack.append(nxt)
            elif op < 8:  # backtrack one hop
                holder = int(rng.choice(list(stacks)))
                stack = stacks[holder]
                if len(stack) > 1:
                    tail = stack.pop()
                    scalar.release_link(holder, tail, stack[-1])
                    vector.release_link(holder, tail, stack[-1])
            elif op < 9:  # deliver: collapse to circuit, timed hold
                holder = int(rng.choice(list(stacks)))
                stack = stacks.pop(holder)
                circuit = Circuit.from_stack(stack)
                scalar.sync(holder, circuit.path)
                vector.sync(holder, circuit.path)
                hold = step + int(rng.integers(1, 6))
                scalar.hold_until(holder, hold)
                vector.hold_until(holder, hold)
            else:  # abort: release everything
                holder = int(rng.choice(list(stacks)))
                stacks.pop(holder)
                scalar.release(holder)
                vector.release(holder)
            step += 1
            assert scalar.release_expired(step) == vector.release_expired(step)
            self._assert_ledgers_identical(scalar, vector)

        # Drain every remaining hold and probe identically.
        for holder in list(stacks):
            scalar.release(holder)
            vector.release(holder)
        assert scalar.release_expired(step + 100) == vector.release_expired(step + 100)
        self._assert_ledgers_identical(scalar, vector)
        assert scalar.reserved_links == 0

    def test_foreign_link_raises_on_both(self):
        mesh = Mesh.cube(4, 2)
        scalar = LiveCircuitLedger()
        vector = ArrayCircuitLedger(mesh)
        for ledger in (scalar, vector):
            ledger.sync(1, [(0, 0), (1, 0)])
            with pytest.raises(Exception):
                ledger.reserve_link(2, (0, 0), (1, 0))

    def test_double_crossing_refcount(self):
        mesh = Mesh.cube(4, 2)
        vector = ArrayCircuitLedger(mesh)
        vector.reserve_link(1, (0, 0), (1, 0))
        vector.reserve_link(1, (1, 0), (0, 0))
        vector.release_link(1, (1, 0), (0, 0))
        assert vector.is_blocked(2, (0, 0), (1, 0))
        vector.release_link(1, (0, 0), (1, 0))
        assert not vector.is_blocked(2, (0, 0), (1, 0))
        assert vector.reserved_links == 0
        assert vector.active_holders == 0

    @pytest.mark.parametrize("seed", range(4))
    def test_circuit_table_mesh_mode_parity(self, seed):
        """Dict-keyed and occupancy-column CircuitTable behave identically."""
        from repro.pcs.circuit import CircuitTable, ReservationError

        mesh = Mesh.cube(6, 2)
        rng = np.random.default_rng(seed)
        plain = CircuitTable()
        arrayed = CircuitTable(mesh=mesh)
        reserved = []
        for _ in range(120):
            op = rng.integers(0, 3)
            if op < 2:  # try to reserve a random-walk circuit
                node = tuple(int(c) for c in rng.integers(0, 6, size=2))
                path = [node]
                for _ in range(int(rng.integers(1, 6))):
                    moves = [n for n in mesh.neighbors(path[-1]) if n not in path]
                    if not moves:
                        break
                    path.append(moves[int(rng.integers(0, len(moves)))])
                if len(path) < 2:
                    continue
                circuit = Circuit(tuple(path))
                conflicts = plain.conflicts(circuit)
                assert arrayed.conflicts(circuit) == conflicts
                if conflicts:
                    with pytest.raises(ReservationError):
                        plain.reserve(circuit)
                    with pytest.raises(ReservationError):
                        arrayed.reserve(circuit)
                else:
                    plain.reserve(circuit)
                    arrayed.reserve(circuit)
                    reserved.append(circuit)
            elif reserved:  # release one (and exercise the unknown no-op)
                circuit = reserved.pop(int(rng.integers(0, len(reserved))))
                plain.release(circuit)
                arrayed.release(circuit)
                plain.release(circuit)
                arrayed.release(circuit)
            assert plain.reserved_links == arrayed.reserved_links
            assert plain.circuits == arrayed.circuits
        for circuit in reserved:
            plain.release(circuit)
            arrayed.release(circuit)
        assert plain.reserved_links == arrayed.reserved_links == 0

    def test_link_index_rejects_out_of_mesh_endpoints(self):
        """Adjacent but off-mesh coordinate pairs must not map to a slot."""
        mesh = Mesh.cube(6, 2)
        for u, v in [((-1, 0), (0, 0)), ((5, 0), (6, 0)), ((0,), (1,))]:
            with pytest.raises(ValueError):
                mesh.link_index(u, v)

    def test_zero_length_circuit_hold_counts(self):
        """A delivered src==dst circuit holds no links but is still counted."""
        mesh = Mesh.cube(4, 2)
        scalar = LiveCircuitLedger()
        vector = ArrayCircuitLedger(mesh)
        for ledger in (scalar, vector):
            ledger.sync(7, [(1, 1)])
            ledger.hold_until(7, 3)
            assert ledger.release_expired(2) == 0
            assert ledger.release_expired(3) == 1


# --------------------------------------------------------------------- #
# flat index tables
# --------------------------------------------------------------------- #
class TestNeighborTable:
    @pytest.mark.parametrize("shape", [(5, 7), (4, 4, 4), (3, 4, 5, 2)])
    def test_matches_scalar_neighbors(self, shape):
        mesh = Mesh(shape)
        table = mesh.neighbor_table
        assert table.shape == (mesh.size, 2 * mesh.n_dims)
        assert table.dtype == np.int32
        for index in range(mesh.size):
            node = mesh.coord_of(index)
            for column, direction in enumerate(mesh.directions):
                neighbor = mesh.neighbor(node, direction)
                expected = -1 if neighbor is None else mesh.index_of(neighbor)
                assert table[index, column] == expected

    def test_surface_order_pairs_dimensions(self):
        """Columns d and d+n of the table belong to dimension d."""
        mesh = Mesh.cube(4, 3)
        for d in range(mesh.n_dims):
            assert mesh.directions[d].dim == d
            assert mesh.directions[d].sign == -1
            assert mesh.directions[d + mesh.n_dims].dim == d
            assert mesh.directions[d + mesh.n_dims].sign == +1

    def test_table_is_memoized_and_readonly(self):
        mesh = Mesh.cube(4, 2)
        assert mesh.neighbor_table is mesh.neighbor_table
        with pytest.raises(ValueError):
            mesh.neighbor_table[0, 0] = 99
