"""Unit tests for the per-node information state."""

import pytest

from repro.core.block_construction import LabelingState
from repro.core.state import BlockRecord, BoundaryInfo, InformationState
from repro.faults.status import NodeStatus
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh


@pytest.fixture
def info(mesh2d) -> InformationState:
    return InformationState.fresh(mesh2d, faults=[(4, 4)])


class TestRecords:
    def test_block_record_hashable_and_versioned(self):
        a = BlockRecord(Region((1, 1), (2, 2)), version=1)
        b = BlockRecord(Region((1, 1), (2, 2)), version=1)
        assert a == b and hash(a) == hash(b)
        assert a != BlockRecord(Region((1, 1), (2, 2)), version=2)

    def test_boundary_info_validation(self):
        with pytest.raises(ValueError):
            BoundaryInfo(Region((1, 1), (2, 2)), dim=0, dangerous_side=0)
        with pytest.raises(ValueError):
            BoundaryInfo(Region((1, 1), (2, 2)), dim=5, dangerous_side=1)


class TestInformationState:
    def test_fresh_has_faults_and_no_records(self, info):
        assert info.status((4, 4)) is NodeStatus.FAULTY
        assert info.information_cells() == 0
        assert info.nodes_holding_information() == set()

    def test_add_block_info_deduplicates(self, info):
        record = BlockRecord(Region((4, 4), (4, 4)))
        assert info.add_block_info((3, 4), record)
        assert not info.add_block_info((3, 4), record)
        assert info.blocks_known_at((3, 4)) == frozenset({record})
        assert info.has_block_info((3, 4), record.extent)
        assert not info.has_block_info((0, 0), record.extent)

    def test_add_boundary_deduplicates(self, info):
        boundary = BoundaryInfo(Region((4, 4), (4, 4)), dim=0, dangerous_side=-1)
        assert info.add_boundary((3, 3), boundary)
        assert not info.add_boundary((3, 3), boundary)
        assert info.boundaries_at((3, 3)) == frozenset({boundary})

    def test_information_cells_counts_both_kinds(self, info):
        info.add_block_info((3, 4), BlockRecord(Region((4, 4), (4, 4))))
        info.add_boundary(
            (3, 3), BoundaryInfo(Region((4, 4), (4, 4)), dim=0, dangerous_side=-1)
        )
        assert info.information_cells() == 2
        assert info.nodes_holding_information() == {(3, 4), (3, 3)}

    def test_cancel_stale_removes_dead_extents(self, info):
        live = Region((4, 4), (4, 4))
        dead = Region((7, 7), (8, 8))
        info.add_block_info((3, 4), BlockRecord(live))
        info.add_block_info((6, 7), BlockRecord(dead))
        info.add_boundary((6, 6), BoundaryInfo(dead, dim=0, dangerous_side=-1))
        removed = info.cancel_stale([live])
        assert removed == 2
        assert info.blocks_known_at((6, 7)) == frozenset()
        assert info.boundaries_at((6, 6)) == frozenset()
        assert info.blocks_known_at((3, 4))

    def test_clear_information(self, info):
        info.add_block_info((3, 4), BlockRecord(Region((4, 4), (4, 4))))
        info.clear_information()
        assert info.information_cells() == 0
        # labeling untouched
        assert info.status((4, 4)) is NodeStatus.FAULTY

    def test_bump_version(self, info):
        assert info.version == 0
        assert info.bump_version() == 1
        assert info.bump_version() == 2

    def test_add_info_validates_node(self, info):
        with pytest.raises(ValueError):
            info.add_block_info((99, 99), BlockRecord(Region((4, 4), (4, 4))))
