"""Unit tests for the per-node information state."""

import pytest

from repro.core.block_construction import LabelingState
from repro.core.state import BlockRecord, BoundaryInfo, InformationState
from repro.faults.status import NodeStatus
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh


@pytest.fixture
def info(mesh2d) -> InformationState:
    return InformationState.fresh(mesh2d, faults=[(4, 4)])


class TestRecords:
    def test_block_record_hashable_and_versioned(self):
        a = BlockRecord(Region((1, 1), (2, 2)), version=1)
        b = BlockRecord(Region((1, 1), (2, 2)), version=1)
        assert a == b and hash(a) == hash(b)
        assert a != BlockRecord(Region((1, 1), (2, 2)), version=2)

    def test_boundary_info_validation(self):
        with pytest.raises(ValueError):
            BoundaryInfo(Region((1, 1), (2, 2)), dim=0, dangerous_side=0)
        with pytest.raises(ValueError):
            BoundaryInfo(Region((1, 1), (2, 2)), dim=5, dangerous_side=1)


class TestInformationState:
    def test_fresh_has_faults_and_no_records(self, info):
        assert info.status((4, 4)) is NodeStatus.FAULTY
        assert info.information_cells() == 0
        assert info.nodes_holding_information() == set()

    def test_add_block_info_deduplicates(self, info):
        record = BlockRecord(Region((4, 4), (4, 4)))
        assert info.add_block_info((3, 4), record)
        assert not info.add_block_info((3, 4), record)
        assert info.blocks_known_at((3, 4)) == frozenset({record})
        assert info.has_block_info((3, 4), record.extent)
        assert not info.has_block_info((0, 0), record.extent)

    def test_add_boundary_deduplicates(self, info):
        boundary = BoundaryInfo(Region((4, 4), (4, 4)), dim=0, dangerous_side=-1)
        assert info.add_boundary((3, 3), boundary)
        assert not info.add_boundary((3, 3), boundary)
        assert info.boundaries_at((3, 3)) == frozenset({boundary})

    def test_information_cells_counts_both_kinds(self, info):
        info.add_block_info((3, 4), BlockRecord(Region((4, 4), (4, 4))))
        info.add_boundary(
            (3, 3), BoundaryInfo(Region((4, 4), (4, 4)), dim=0, dangerous_side=-1)
        )
        assert info.information_cells() == 2
        assert info.nodes_holding_information() == {(3, 4), (3, 3)}

    def test_cancel_stale_removes_dead_extents(self, info):
        live = Region((4, 4), (4, 4))
        dead = Region((7, 7), (8, 8))
        info.add_block_info((3, 4), BlockRecord(live))
        info.add_block_info((6, 7), BlockRecord(dead))
        info.add_boundary((6, 6), BoundaryInfo(dead, dim=0, dangerous_side=-1))
        removed = info.cancel_stale([live])
        assert removed == 2
        assert info.blocks_known_at((6, 7)) == frozenset()
        assert info.boundaries_at((6, 6)) == frozenset()
        assert info.blocks_known_at((3, 4))

    def test_clear_information(self, info):
        info.add_block_info((3, 4), BlockRecord(Region((4, 4), (4, 4))))
        info.clear_information()
        assert info.information_cells() == 0
        # labeling untouched
        assert info.status((4, 4)) is NodeStatus.FAULTY

    def test_bump_version(self, info):
        assert info.version == 0
        assert info.bump_version() == 1
        assert info.bump_version() == 2

    def test_add_info_validates_node(self, info):
        with pytest.raises(ValueError):
            info.add_block_info((99, 99), BlockRecord(Region((4, 4), (4, 4))))

    def test_status_tolerates_off_mesh_and_wrong_rank(self, info):
        # (4, 4) is faulty; every unrecorded or malformed coordinate reads
        # as enabled rather than aliasing onto a real node's flat index.
        assert info.status((4, 4)) is NodeStatus.FAULTY
        assert info.status((-1, 4)) is NodeStatus.ENABLED
        assert info.status((4,)) is NodeStatus.ENABLED
        assert info.status((4, 4, 0)) is NodeStatus.ENABLED


class TestCancellationSemantics:
    """The deletion process after a block shrinks, and version monotonicity."""

    def test_shrunk_block_drops_only_stale_boundaries(self, info):
        old_extent = Region((3, 3), (5, 5))
        new_extent = Region((3, 3), (4, 4))  # the block after shrinking
        info.add_block_info((2, 3), BlockRecord(old_extent, version=1))
        info.add_boundary((2, 2), BoundaryInfo(old_extent, dim=0, dangerous_side=-1, version=1))
        info.add_boundary((6, 2), BoundaryInfo(old_extent, dim=1, dangerous_side=+1, version=1))
        info.add_block_info((2, 3), BlockRecord(new_extent, version=2))
        info.add_boundary((2, 2), BoundaryInfo(new_extent, dim=0, dangerous_side=-1, version=2))

        removed = info.cancel_stale([new_extent])
        assert removed == 3  # one block record + two boundary records
        assert {r.extent for r in info.blocks_known_at((2, 3))} == {new_extent}
        assert {b.extent for b in info.boundaries_at((2, 2))} == {new_extent}
        assert info.boundaries_at((6, 2)) == frozenset()

    def test_cancel_stale_with_no_live_extents_drops_everything(self, info):
        extent = Region((4, 4), (5, 5))
        info.add_block_info((3, 4), BlockRecord(extent))
        info.add_boundary((3, 3), BoundaryInfo(extent, dim=0, dangerous_side=-1))
        assert info.cancel_stale([]) == 2
        assert info.information_cells() == 0
        assert info.nodes_holding_information() == set()

    def test_versions_strictly_increase(self, info):
        seen = [info.version]
        for _ in range(5):
            seen.append(info.bump_version())
        assert seen == sorted(seen)
        assert len(set(seen)) == len(seen)
        # Cancellation never rolls the generation counter back.
        info.cancel_stale([])
        assert info.version == seen[-1]
        assert info.bump_version() > seen[-1]


class TestRoutingGeometryCache:
    """detour_constraints / known_extent_frames stay consistent under mutation."""

    def test_constraints_resolve_prisms(self, info):
        extent = Region((4, 4), (5, 5))
        info.add_boundary((4, 2), BoundaryInfo(extent, dim=1, dangerous_side=-1))
        constraints = info.detour_constraints((4, 2))
        assert constraints == (
            (Region((4, 0), (5, 3)), Region((4, 6), (5, 9))),
        )
        # Cached: the same tuple object is served on a second read.
        assert info.detour_constraints((4, 2)) is constraints

    def test_cache_invalidated_by_new_record(self, info):
        extent = Region((4, 4), (5, 5))
        node = (4, 2)
        assert info.detour_constraints(node) == ()
        info.add_boundary(node, BoundaryInfo(extent, dim=1, dangerous_side=-1))
        assert len(info.detour_constraints(node)) == 1
        info.add_block_info(node, BlockRecord(extent))
        assert len(info.known_extent_frames(node)) == 1
        extent2 = Region((7, 7), (8, 8))
        info.add_block_info(node, BlockRecord(extent2))
        assert {e for e, _ in info.known_extent_frames(node)} == {extent, extent2}

    def test_cache_cleared_by_cancel_and_clear(self, info):
        extent = Region((4, 4), (5, 5))
        node = (4, 2)
        info.add_boundary(node, BoundaryInfo(extent, dim=1, dangerous_side=-1))
        assert info.detour_constraints(node)
        info.cancel_stale([])
        assert info.detour_constraints(node) == ()
        info.add_boundary(node, BoundaryInfo(extent, dim=1, dangerous_side=-1))
        info.clear_information()
        assert info.detour_constraints(node) == ()

    def test_policy_flags_select_record_kinds(self, info):
        extent = Region((4, 4), (5, 5))
        node = (4, 2)
        info.add_boundary(node, BoundaryInfo(extent, dim=1, dangerous_side=-1))
        assert info.detour_constraints(node, use_boundary_info=False) == ()
        info.add_block_info(node, BlockRecord(extent))
        assert info.detour_constraints(node, use_boundary_info=False)
        assert info.known_extent_frames(node, use_block_info=False) == (
            (extent, extent.expand(1)),
        )
