"""Unit tests for the direction algebra."""

import pytest

from repro.mesh.directions import (
    Direction,
    all_directions,
    direction_between,
    direction_from_surface,
    directions_along_dims,
    opposite,
    opposite_surface,
    surface_index,
)


class TestDirection:
    def test_apply_moves_one_hop(self):
        assert Direction(0, +1).apply((2, 3, 4)) == (3, 3, 4)
        assert Direction(2, -1).apply((2, 3, 4)) == (2, 3, 3)

    def test_reversed_flips_sign(self):
        assert Direction(1, +1).reversed() == Direction(1, -1)
        assert Direction(1, -1).reversed() == Direction(1, +1)

    def test_offset_property(self):
        assert Direction(0, -1).offset == -1
        assert Direction(0, +1).offset == +1


class TestAllDirections:
    def test_count_is_2n(self):
        for n in (1, 2, 3, 4, 5):
            assert len(all_directions(n)) == 2 * n

    def test_surface_index_order(self):
        dirs = all_directions(3)
        # S0..S2 are the negative sides, S3..S5 the positive sides.
        assert dirs[0] == Direction(0, -1)
        assert dirs[2] == Direction(2, -1)
        assert dirs[3] == Direction(0, +1)
        assert dirs[5] == Direction(2, +1)

    def test_rejects_zero_dims(self):
        with pytest.raises(ValueError):
            all_directions(0)


class TestSurfaceNumbering:
    def test_surface_index_roundtrip(self):
        for n in (2, 3, 4):
            for i in range(2 * n):
                direction = direction_from_surface(i, n)
                assert surface_index(direction, n) == i

    def test_opposite_surface_matches_paper(self):
        # In 3-D the paper pairs S_i with S_{(i+3) mod 6}.
        for i in range(6):
            assert opposite_surface(i, 3) == (i + 3) % 6

    def test_opposite_surface_is_involution(self):
        for n in (2, 3, 4):
            for i in range(2 * n):
                assert opposite_surface(opposite_surface(i, n), n) == i

    def test_surface_index_out_of_range(self):
        with pytest.raises(ValueError):
            direction_from_surface(6, 3)
        with pytest.raises(ValueError):
            opposite_surface(-1, 3)
        with pytest.raises(ValueError):
            surface_index(Direction(5, 1), 3)


class TestDirectionBetween:
    def test_positive_and_negative_hops(self):
        assert direction_between((1, 1), (2, 1)) == Direction(0, +1)
        assert direction_between((1, 1), (1, 0)) == Direction(1, -1)

    def test_opposite_of_between_is_reverse(self):
        d = direction_between((3, 4, 5), (3, 5, 5))
        assert opposite(d) == direction_between((3, 5, 5), (3, 4, 5))

    def test_rejects_non_neighbors(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (1, 1))
        with pytest.raises(ValueError):
            direction_between((0, 0), (2, 0))
        with pytest.raises(ValueError):
            direction_between((0, 0), (0, 0))

    def test_rejects_rank_mismatch(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (0, 0, 0))


def test_directions_along_dims():
    dirs = list(directions_along_dims([0, 2]))
    assert dirs == [
        Direction(0, -1),
        Direction(0, +1),
        Direction(2, -1),
        Direction(2, +1),
    ]
