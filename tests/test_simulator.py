"""Unit and integration tests for the step-synchronous simulator (Figure 7)."""

import pytest

from repro.core.routing import RouteOutcome
from repro.faults.schedule import FaultEventKind
from repro.faults.injection import dynamic_schedule
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage
from repro.workloads.scenarios import (
    FIGURE1_EXTENT,
    figure1_scenario,
    figure4_recovery_scenario,
)


class TestSimulationConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(lam=0)
        with pytest.raises(ValueError):
            SimulationConfig(max_steps=0)
        # An explicit 0 used to be silently treated as "unset" by the
        # engine's `or` fallback; it is now rejected outright.
        with pytest.raises(ValueError):
            SimulationConfig(max_probe_lifetime=0)
        with pytest.raises(ValueError):
            SimulationConfig(max_probe_lifetime=-1)

    def test_defaults(self):
        config = SimulationConfig()
        assert config.lam == 2
        assert config.policy.use_boundary_info
        assert config.router is None
        assert not config.contention


class TestFaultFreeSimulation:
    def test_messages_advance_one_hop_per_step(self, mesh2d):
        traffic = [TrafficMessage(source=(0, 0), destination=(5, 5), start_time=0)]
        sim = Simulator(mesh2d, traffic=traffic)
        result = sim.run()
        record = result.stats.messages[0]
        assert record.delivered
        assert record.result.hops == 10
        # Injected at step 0, one hop per step: finishes at step 9.
        assert record.finish_step == 9

    def test_multiple_messages(self, mesh2d):
        traffic = [
            TrafficMessage(source=(0, 0), destination=(9, 9), start_time=0),
            TrafficMessage(source=(9, 0), destination=(0, 9), start_time=3),
        ]
        result = Simulator(mesh2d, traffic=traffic).run()
        assert len(result.stats.messages) == 2
        assert result.stats.delivery_rate == 1.0
        assert result.stats.mean_detours == 0.0

    def test_no_work_terminates_quickly(self, mesh2d):
        result = Simulator(mesh2d).run()
        assert result.steps == 0


class TestStaticFaultSimulation:
    def test_preconverged_information_available_at_step_zero(self, mesh3d):
        scenario = figure1_scenario()
        sim = Simulator(mesh3d, schedule=scenario.schedule)
        assert sim.info.has_block_info((2, 4, 2), FIGURE1_EXTENT)
        assert sim.info.information_cells() > 0

    def test_without_preconvergence_information_builds_during_run(self, mesh3d):
        scenario = figure1_scenario()
        config = SimulationConfig(preconverge_initial_faults=False, lam=4)
        sim = Simulator(mesh3d, schedule=scenario.schedule, config=config)
        assert sim.info.information_cells() == 0
        sim.run(min_steps=40)
        assert sim.info.has_block_info((2, 4, 2), FIGURE1_EXTENT)

    def test_routing_around_static_block(self, mesh3d):
        scenario = figure1_scenario()
        traffic = [TrafficMessage(source=(0, 4, 4), destination=(4, 7, 4))]
        result = Simulator(mesh3d, schedule=scenario.schedule, traffic=traffic).run()
        record = result.stats.messages[0]
        assert record.delivered
        assert record.detours == 0


class TestDynamicFaults:
    def test_convergence_records_created(self, mesh3d):
        schedule = dynamic_schedule([(5, 5, 5)], start_time=3)
        sim = Simulator(mesh3d, schedule=schedule, config=SimulationConfig(lam=4))
        result = sim.run()
        assert len(result.stats.convergence) == 1
        record = result.stats.convergence[0]
        assert record.event.node == (5, 5, 5)
        assert record.detected_step == 3
        assert record.stabilized_step is not None
        assert record.stabilized_step >= 3

    def test_new_block_identified_after_fault(self, mesh3d):
        schedule = dynamic_schedule([(5, 5, 5), (6, 6, 5)], start_time=2, interval=20)
        sim = Simulator(mesh3d, schedule=schedule, config=SimulationConfig(lam=4))
        sim.run()
        holders = sim.info.nodes_holding_information()
        assert holders, "dynamic faults must eventually produce distributed info"

    def test_convergence_bounded_by_schedule_interval(self, mesh3d):
        """With d_i > (a+b+c)/λ each change stabilizes before the next."""
        schedule = dynamic_schedule(
            [(4, 4, 4), (4, 5, 5), (7, 7, 7)], start_time=2, interval=30
        )
        config = SimulationConfig(lam=4)
        result = Simulator(mesh3d, schedule=schedule, config=config).run()
        assert len(result.stats.convergence) == 3
        for record in result.stats.convergence:
            assert record.steps_to_stabilize(config.lam) <= 30

    def test_routing_during_dynamic_fault_still_delivers(self, mesh2d):
        """Faults appearing near the path cause detours, not failures.

        The faults land ahead of the probe, never on a node of its partial
        circuit — a fault hitting the circuit itself tears the probe down
        (see test_fault_recovery.py for that semantics).
        """
        # The message walks east along y=5 while a block forms on its path.
        schedule = dynamic_schedule([(5, 5), (6, 6)], start_time=1, interval=4)
        traffic = [TrafficMessage(source=(0, 5), destination=(9, 5), start_time=0)]
        config = SimulationConfig(lam=2)
        result = Simulator(mesh2d, schedule=schedule, traffic=traffic, config=config).run()
        record = result.stats.messages[0]
        assert record.delivered
        assert record.result.hops > 9

    def test_recovery_dissolves_information(self, mesh3d):
        scenario = figure4_recovery_scenario(recovery_time=2)
        config = SimulationConfig(lam=4)
        sim = Simulator(mesh3d, schedule=scenario.schedule, config=config)
        assert sim.info.has_block_info((2, 4, 2), FIGURE1_EXTENT)
        sim.run(min_steps=30)
        # The original full-extent record must have been cancelled: the
        # stabilized blocks after recovery are strictly smaller.
        extents = {
            record.extent
            for records in sim.info.node_blocks.values()
            for record in records
        }
        assert FIGURE1_EXTENT not in extents

    def test_stats_summary_keys(self, mesh2d):
        schedule = dynamic_schedule([(4, 4)], start_time=1)
        traffic = [TrafficMessage(source=(0, 0), destination=(9, 9))]
        result = Simulator(mesh2d, schedule=schedule, traffic=traffic).run()
        summary = result.stats.summary()
        for key in ("delivery_rate", "mean_detours", "steps", "fault_changes"):
            assert key in summary


class TestExecutionModel:
    def test_lambda_rounds_per_step(self, mesh3d):
        """Exactly λ information rounds are executed per step."""
        schedule = dynamic_schedule([(5, 5, 5)], start_time=0)
        config = SimulationConfig(lam=3, preconverge_initial_faults=False)
        sim = Simulator(mesh3d, schedule=schedule, config=config)
        sim.step()
        sim.step()
        assert sim.stats.total_rounds == 2 * 3

    def test_higher_lambda_stabilizes_in_fewer_steps(self, mesh3d):
        def steps_to_stable(lam):
            schedule = dynamic_schedule([(5, 5, 5), (5, 6, 6)], start_time=1, interval=0)
            sim = Simulator(mesh3d, schedule=schedule, config=SimulationConfig(lam=lam))
            result = sim.run()
            return max(r.stabilized_step for r in result.stats.convergence)

        assert steps_to_stable(8) <= steps_to_stable(1)

    def test_probe_lifetime_limit(self, mesh2d):
        config = SimulationConfig(max_probe_lifetime=3)
        traffic = [TrafficMessage(source=(0, 0), destination=(9, 9))]
        result = Simulator(mesh2d, traffic=traffic, config=config).run()
        record = result.stats.messages[0]
        assert record.result.outcome is RouteOutcome.EXHAUSTED

    def test_probe_lifetime_of_one_is_honored(self, mesh2d):
        """The smallest explicit lifetime cuts probes after one step."""
        config = SimulationConfig(max_probe_lifetime=1)
        traffic = [TrafficMessage(source=(0, 0), destination=(9, 9))]
        result = Simulator(mesh2d, traffic=traffic, config=config).run()
        record = result.stats.messages[0]
        assert record.result.outcome is RouteOutcome.EXHAUSTED
        assert record.result.hops <= 2

    def test_max_steps_flushes_in_flight_probes(self, mesh2d):
        config = SimulationConfig(max_steps=3)
        traffic = [TrafficMessage(source=(0, 0), destination=(9, 9))]
        result = Simulator(mesh2d, traffic=traffic, config=config).run()
        assert len(result.stats.messages) == 1
        assert result.steps == 3

    def test_traffic_validation(self, mesh2d):
        with pytest.raises(ValueError):
            Simulator(
                mesh2d,
                traffic=[TrafficMessage(source=(0, 0), destination=(99, 99))],
            )
