"""Tests for the hotspot/transpose/bursty congestion workloads."""

import numpy as np
import pytest

from repro.mesh.topology import Mesh
from repro.workloads.congestion import (
    bursty_scenario,
    hotspot_pairs,
    hotspot_scenario,
    transpose_scenario,
)


class TestHotspotPairs:
    def test_fraction_targets_hotspot(self):
        mesh = Mesh.cube(10, 2)
        rng = np.random.default_rng(7)
        pairs = hotspot_pairs(mesh, 20, rng, fraction=0.5, min_distance=2)
        hot = (5, 5)
        assert sum(1 for _, d in pairs if d == hot) == 10
        assert len(pairs) == 20
        for source, destination in pairs:
            assert mesh.distance(source, destination) >= 2

    def test_explicit_hotspot_and_exclusions(self):
        mesh = Mesh.cube(8, 2)
        rng = np.random.default_rng(0)
        hot = (1, 1)
        pairs = hotspot_pairs(
            mesh, 10, rng, hotspot=hot, fraction=1.0, exclude=[(0, 0)], min_distance=3
        )
        assert all(d == hot for _, d in pairs)
        assert all(s != (0, 0) for s, _ in pairs)

    def test_fraction_validation(self):
        mesh = Mesh.cube(8, 2)
        with pytest.raises(ValueError):
            hotspot_pairs(mesh, 4, np.random.default_rng(0), fraction=1.5)

    def test_deterministic_in_seed(self):
        mesh = Mesh.cube(8, 2)
        a = hotspot_pairs(mesh, 12, np.random.default_rng(3))
        b = hotspot_pairs(mesh, 12, np.random.default_rng(3))
        assert a == b


class TestScenarios:
    def test_hotspot_scenario_traffic_and_flits(self):
        scenario = hotspot_scenario(shape=(8, 8), messages=10, flits=128, seed=1)
        assert len(scenario.traffic) == 10
        assert all(m.flits == 128 for m in scenario.traffic)
        assert all(m.tag == "hotspot" for m in scenario.traffic)

    def test_transpose_scenario_pairs_are_transposes(self):
        scenario = transpose_scenario(radix=6, n_dims=2, limit=8)
        assert 0 < len(scenario.traffic) <= 8
        for message in scenario.traffic:
            assert message.destination == tuple(reversed(message.source))
            assert message.start_time == 0  # maximally contended by default

    def test_bursty_scenario_groups_arrivals(self):
        scenario = bursty_scenario(
            shape=(8, 8), bursts=3, burst_size=4, burst_interval=10, seed=5
        )
        starts = sorted({m.start_time for m in scenario.traffic})
        assert starts == [0, 10, 20]
        for start in starts:
            assert sum(1 for m in scenario.traffic if m.start_time == start) == 4

    def test_bursty_validation(self):
        with pytest.raises(ValueError):
            bursty_scenario(bursts=0)

    def test_scenarios_deterministic_in_seed(self):
        a = bursty_scenario(seed=9)
        b = bursty_scenario(seed=9)
        assert a.traffic == b.traffic
        assert list(a.schedule.events) == list(b.schedule.events)

    def test_dynamic_faults_layer_on_top(self):
        scenario = hotspot_scenario(shape=(10, 10), messages=6, dynamic_faults=3, seed=2)
        assert len(scenario.schedule.events) == 3
