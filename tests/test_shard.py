"""Tests for the shard planner and the sharded (auto) sweep engine."""

import pytest

from repro.backend import VECTOR, resolve_backend
from repro.experiments import (
    ExperimentSpec,
    plan_shards,
    probe_table_eligible,
    run_batch,
)
from repro.experiments.shard import MIN_STACKED_SHARD

VECTOR_ONLY = pytest.mark.skipif(
    resolve_backend() != VECTOR,
    reason="probe-table eligibility requires the vector backend",
)


def mixed_spec(**overrides) -> ExperimentSpec:
    """Two shapes x an eligible and an ineligible policy x two seeds."""
    params = dict(
        name="shard-unit",
        mode="simulate",
        mesh_shapes=((6, 6), (8, 8)),
        policies=("limited-global", "static-block"),
        scenarios=("transpose",),
        fault_counts=(2,),
        fault_intervals=(5,),
        lams=(2,),
        traffic_sizes=(6,),
        seeds=(0, 1),
        contention=True,
        flits=(16,),
    )
    params.update(overrides)
    return ExperimentSpec(**params)


def indexed(spec):
    return list(enumerate(spec.cells()))


class TestEligibility:
    @VECTOR_ONLY
    def test_algorithm_policies_eligible(self):
        for index, cell in indexed(mixed_spec()):
            expected = cell.policy == "limited-global"
            assert probe_table_eligible(cell) is expected, cell.policy

    def test_scalar_backend_never_eligible(self):
        for index, cell in indexed(mixed_spec()):
            assert probe_table_eligible(cell, backend="scalar") is False

    @VECTOR_ONLY
    def test_non_simulate_modes_never_eligible(self):
        offline = ExperimentSpec(
            name="shard-off", mode="offline", mesh_shapes=((6, 6),),
            policies=("limited-global",), fault_counts=(2,), lams=(1,),
        )
        for index, cell in indexed(offline):
            assert probe_table_eligible(cell) is False


class TestPlanner:
    def test_every_index_in_exactly_one_shard(self):
        cells = indexed(mixed_spec())
        for workers in (1, 2, 4, 8):
            shards = plan_shards(cells, workers=workers)
            seen = [i for shard in shards for i, _ in shard.cells]
            assert sorted(seen) == [i for i, _ in cells], workers

    @VECTOR_ONLY
    def test_partitioned_by_shape_and_eligibility(self):
        shards = plan_shards(indexed(mixed_spec()), workers=1)
        stacked = [s for s in shards if s.kind == "stacked"]
        serial = [s for s in shards if s.kind == "serial"]
        # One stacked group per shape; one serial shard for the rest.
        assert len(stacked) == 2
        for shard in stacked:
            assert len({cell.shape for _, cell in shard.cells}) == 1
            assert all(cell.policy == "limited-global" for _, cell in shard.cells)
        assert len(serial) == 1
        assert all(cell.policy == "static-block" for _, cell in serial[0].cells)

    @VECTOR_ONLY
    def test_large_group_splits_across_workers(self):
        spec = mixed_spec(
            mesh_shapes=((8, 8),), policies=("limited-global",),
            seeds=tuple(range(32)),
        )
        shards = plan_shards(indexed(spec), workers=4)
        assert all(s.kind == "stacked" for s in shards)
        assert len(shards) == 4
        assert all(len(s) == 8 for s in shards)

    @VECTOR_ONLY
    def test_small_group_not_shredded(self):
        """Splitting below MIN_STACKED_SHARD cells would trade the stacking
        win for process overhead — a tiny group stays together-ish."""
        spec = mixed_spec(
            mesh_shapes=((8, 8),), policies=("limited-global",),
            seeds=tuple(range(MIN_STACKED_SHARD)),
        )
        shards = plan_shards(indexed(spec), workers=8)
        assert len(shards) == 1

    def test_planning_is_deterministic(self):
        cells = indexed(mixed_spec())
        assert plan_shards(cells, workers=3) == plan_shards(cells, workers=3)


class TestAutoEngine:
    def test_auto_matches_serial_json_any_worker_count(self):
        spec = mixed_spec()
        reference = run_batch(spec, engine="serial").to_json()
        for workers in (1, 3):
            assert run_batch(spec, engine="auto", workers=workers).to_json() == reference

    def test_stacked_workers_restriction_lifted(self):
        """engine='stacked' with workers>1 dispatches stacked shards across
        the pool instead of raising."""
        spec = mixed_spec()
        reference = run_batch(spec, engine="serial").to_json()
        assert run_batch(spec, engine="stacked", workers=4).to_json() == reference

    def test_serial_engine_parallel_matches(self):
        spec = mixed_spec()
        reference = run_batch(spec, engine="serial", workers=1).to_json()
        assert run_batch(spec, engine="serial", workers=3).to_json() == reference

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            run_batch(mixed_spec(), engine="nope")

    def test_throughput_mode_through_auto(self):
        spec = ExperimentSpec(
            name="shard-tp",
            mode="throughput",
            mesh_shapes=((6, 6),),
            policies=("limited-global",),
            fault_counts=(2,),
            rates=(0.02, 0.05),
            warmup=8,
            measure=32,
            drain=64,
        )
        reference = run_batch(spec, engine="serial").to_json()
        assert run_batch(spec, engine="auto", workers=2).to_json() == reference

    def test_progress_hook_sees_every_cell_parallel(self):
        spec = mixed_spec()
        seen = []
        batch = run_batch(spec, engine="auto", workers=3, on_cell_done=seen.append)
        assert sorted(r.cell.index for r in seen) == list(range(spec.cell_count))
        # ... while the batch itself stays in grid order.
        assert [r.cell.index for r in batch.results] == list(range(spec.cell_count))

    def test_tiny_spec_with_many_workers(self):
        """Worker capping: more workers than cells must still run correctly
        (the pool is capped at the shard count, not spawned at full size)."""
        spec = mixed_spec(
            mesh_shapes=((6, 6),), policies=("limited-global",), seeds=(0,)
        )
        reference = run_batch(spec, engine="serial").to_json()
        assert run_batch(spec, engine="auto", workers=16).to_json() == reference
