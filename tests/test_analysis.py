"""Unit tests for convergence analysis and comparison metrics."""

import numpy as np
import pytest

from repro.analysis.convergence import (
    expected_boundary_rounds,
    expected_identification_rounds,
    expected_labeling_rounds,
    measure_convergence,
)
from repro.analysis.metrics import (
    compare_policies,
    global_table_cells,
    limited_global_cells,
    memory_footprint_row,
    summarize_routes,
)
from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import RouteOutcome, RouteResult
from repro.faults.injection import uniform_random_faults
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import FIGURE1_FAULTS, parametric_block_scenario
from repro.workloads.traffic import random_pairs


class TestMeasureConvergence:
    def test_figure1_measurement(self, mesh3d):
        measurement = measure_convergence(mesh3d, FIGURE1_FAULTS)
        assert measurement.block_extents == (Region((3, 5, 3), (5, 6, 4)),)
        assert measurement.labeling_rounds >= 1
        assert measurement.identification_rounds > 0
        assert measurement.boundary_rounds > 0
        assert measurement.total_rounds == (
            measurement.labeling_rounds
            + measurement.identification_rounds
            + measurement.boundary_rounds
        )
        assert measurement.steps(lam=2) == -(-measurement.total_rounds // 2)

    def test_rounds_grow_with_block_size_not_mesh_size(self):
        """The paper's quick-distribution claim: a+b scales with the block."""
        small_block = parametric_block_scenario(14, 3, edge=2)
        large_block = parametric_block_scenario(14, 3, edge=5)
        m_small = measure_convergence(
            small_block.mesh, list(small_block.expected_extents[0].iter_points())
        )
        m_large = measure_convergence(
            large_block.mesh, list(large_block.expected_extents[0].iter_points())
        )
        assert m_large.identification_rounds > m_small.identification_rounds

        small_mesh = parametric_block_scenario(10, 3, edge=2, origin=(4, 4, 4))
        big_mesh = parametric_block_scenario(16, 3, edge=2, origin=(4, 4, 4))
        m_a = measure_convergence(
            small_mesh.mesh, list(small_mesh.expected_extents[0].iter_points())
        )
        m_b = measure_convergence(
            big_mesh.mesh, list(big_mesh.expected_extents[0].iter_points())
        )
        assert m_a.identification_rounds == m_b.identification_rounds
        assert m_a.labeling_rounds == m_b.labeling_rounds
        # Only the boundary propagation sees the mesh size.
        assert m_b.boundary_rounds >= m_a.boundary_rounds

    def test_expected_formulas_are_upper_bound_flavoured(self, mesh3d):
        """The closed forms track the measurements within a small factor."""
        for edge in (2, 4):
            scenario = parametric_block_scenario(12, 3, edge=edge)
            extent = scenario.expected_extents[0]
            measurement = measure_convergence(
                scenario.mesh, list(extent.iter_points())
            )
            assert measurement.labeling_rounds <= 2 * expected_labeling_rounds(extent)
            assert (
                measurement.identification_rounds
                <= 2 * expected_identification_rounds(extent)
            )
            assert measurement.boundary_rounds <= 2 * expected_boundary_rounds(
                scenario.mesh, extent
            ) + 2


class TestSummarizeRoutes:
    def test_empty_batch(self):
        summary = summarize_routes([])
        assert summary.routes == 0
        assert summary.delivery_rate == 1.0

    def test_mixed_batch(self):
        delivered = RouteResult(
            outcome=RouteOutcome.DELIVERED,
            path=[(0, 0), (1, 0)],
            source=(0, 0),
            destination=(1, 0),
            min_distance=1,
            forward_hops=1,
            backtrack_hops=0,
        )
        failed = RouteResult(
            outcome=RouteOutcome.UNREACHABLE,
            path=[(0, 0)],
            source=(0, 0),
            destination=(5, 5),
            min_distance=10,
            forward_hops=4,
            backtrack_hops=4,
        )
        summary = summarize_routes([delivered, failed])
        assert summary.routes == 2
        assert summary.delivered == 1
        assert summary.delivery_rate == 0.5
        assert summary.mean_hops == 1.0
        assert summary.max_detours == 0


class TestComparePolicies:
    def test_comparison_table(self, rng):
        mesh = Mesh.cube(12, 2)
        faults = uniform_random_faults(mesh, 8, rng)
        labeling = build_blocks(mesh, faults).state
        pairs = random_pairs(
            mesh, 12, rng, min_distance=8, exclude=list(labeling.block_nodes)
        )
        comparison = compare_policies(mesh, labeling, pairs)
        assert set(comparison.summaries) == {
            "limited-global",
            "no-information",
            "static-block",
            "global-information",
        }
        row = comparison.row("mean_detours")
        # The global-information ideal is a lower bound; the limited-global
        # model must not do worse than the information-free routing.
        assert row["global-information"] <= row["limited-global"] + 1e-9
        assert row["limited-global"] <= row["no-information"] + 1e-9
        # Everything delivered (the configurations keep endpoints enabled).
        for summary in comparison.summaries.values():
            assert summary.delivery_rate == 1.0

    def test_optional_baselines_can_be_disabled(self, rng):
        mesh = Mesh.cube(10, 2)
        faults = uniform_random_faults(mesh, 4, rng)
        labeling = build_blocks(mesh, faults).state
        pairs = random_pairs(mesh, 4, rng, exclude=list(labeling.block_nodes))
        comparison = compare_policies(
            mesh, labeling, pairs, include_static_block=False, include_global=False
        )
        assert set(comparison.summaries) == {"limited-global", "no-information"}


class TestMemoryFootprint:
    def test_limited_global_far_below_global_table(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        info = distribute_information(mesh3d, labeling)
        limited = limited_global_cells(info)
        table = global_table_cells(mesh3d, labeling)
        assert limited < table
        assert table == mesh3d.size  # one block -> one entry per node

    def test_memory_footprint_row(self, mesh3d):
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        row = memory_footprint_row(mesh3d, labeling)
        assert row["blocks"] == 1.0
        assert row["reduction_factor"] > 1.0
