"""Unit tests for fault-information-based PCS routing (Algorithm 3)."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.distribution import converged_information, distribute_information
from repro.core.routing import (
    BACKTRACK,
    DirectionClass,
    ProbeHeader,
    RouteOutcome,
    RoutingPolicy,
    RoutingProbe,
    classify_directions,
    route_offline,
    routing_decision,
)
from repro.core.state import InformationState
from repro.mesh.directions import Direction
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import FIGURE1_FAULTS


class TestProbeHeader:
    def test_push_pop_and_incoming(self):
        header = ProbeHeader(destination=(3, 3), stack=[(0, 0)])
        header.push((1, 0))
        header.push((1, 1))
        assert header.current == (1, 1)
        assert header.source == (0, 0)
        assert header.incoming_direction == Direction(1, +1)
        assert header.pop() == (1, 0)
        assert not header.at_source
        assert header.pop() == (0, 0)
        assert header.at_source
        with pytest.raises(RuntimeError):
            header.pop()

    def test_used_directions_persist(self):
        header = ProbeHeader(destination=(3, 3), stack=[(0, 0)])
        header.record_use((0, 0), Direction(0, +1))
        assert Direction(0, +1) in header.used_at((0, 0))
        assert header.used_at((1, 1)) == set()

    def test_used_at_read_does_not_mutate(self):
        header = ProbeHeader(destination=(3, 3), stack=[(0, 0)])
        # Inspecting nodes the probe never forwarded from must not grow the
        # header: record_use is the only writer.
        for node in ((1, 1), (2, 2), (0, 0)):
            header.used_at(node)
        assert header.used == {}
        header.record_use((0, 0), Direction(0, +1))
        assert set(header.used) == {(0, 0)}


class TestPolicies:
    def test_limited_global_uses_everything(self):
        policy = RoutingPolicy.limited_global()
        assert policy.use_block_info and policy.use_boundary_info

    def test_no_information_uses_nothing(self):
        policy = RoutingPolicy.no_information()
        assert not policy.use_block_info and not policy.use_boundary_info


class TestFaultFreeRouting:
    def test_routes_are_minimal_without_faults(self, mesh3d):
        info = InformationState.fresh(mesh3d)
        result = route_offline(info, (0, 0, 0), (9, 9, 9))
        assert result.outcome is RouteOutcome.DELIVERED
        assert result.hops == result.min_distance == 27
        assert result.detours == 0
        assert result.backtrack_hops == 0

    def test_source_equals_destination(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        result = route_offline(info, (4, 4), (4, 4))
        assert result.delivered
        assert result.hops == 0

    def test_path_is_connected(self, mesh3d):
        info = InformationState.fresh(mesh3d)
        result = route_offline(info, (1, 2, 3), (7, 6, 5))
        for u, v in zip(result.path, result.path[1:]):
            assert mesh3d.distance(u, v) == 1


class TestDirectionClassification:
    def test_preferred_before_spare(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        ordered = classify_directions(
            info, (2, 2), (5, 5), policy=RoutingPolicy.limited_global()
        )
        classes = [cls for cls, _ in ordered]
        assert classes[0] is DirectionClass.PREFERRED
        assert classes == sorted(classes)

    def test_faulty_neighbor_excluded(self, mesh2d):
        info = InformationState.fresh(mesh2d, faults=[(3, 2)])
        ordered = classify_directions(
            info, (2, 2), (5, 2), policy=RoutingPolicy.limited_global()
        )
        directions = [d for _, d in ordered]
        assert Direction(0, +1) not in directions

    def test_used_direction_excluded(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        ordered = classify_directions(
            info,
            (2, 2),
            (5, 5),
            policy=RoutingPolicy.limited_global(),
            used={Direction(0, +1)},
        )
        assert Direction(0, +1) not in [d for _, d in ordered]

    def test_incoming_has_lowest_priority(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        ordered = classify_directions(
            info,
            (2, 2),
            (5, 5),
            policy=RoutingPolicy.limited_global(),
            incoming=Direction(0, +1),
        )
        assert ordered[-1] == (DirectionClass.INCOMING, Direction(0, -1))

    def test_detour_demotion_at_boundary(self, mesh3d):
        """A preferred direction entering a dangerous prism is demoted when
        the destination lies in the opposite prism (critical routing)."""
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        # Node (2,2,4) sits on the boundary column west of the block; moving
        # +X enters the prism below the block; destination above the block.
        node, destination = (2, 2, 4), (4, 9, 4)
        assert info.boundaries_at(node)
        ordered = dict(
            (d, cls)
            for cls, d in classify_directions(
                info, node, destination, policy=RoutingPolicy.limited_global()
            )
        )
        assert ordered[Direction(0, +1)] is DirectionClass.PREFERRED_DETOUR
        assert ordered[Direction(1, +1)] is DirectionClass.PREFERRED

    def test_no_demotion_without_information(self, mesh3d):
        bare = InformationState(
            mesh=mesh3d, labeling=build_blocks(mesh3d, FIGURE1_FAULTS).state
        )
        ordered = dict(
            (d, cls)
            for cls, d in classify_directions(
                bare, (2, 2, 4), (4, 9, 4), policy=RoutingPolicy.no_information()
            )
        )
        assert ordered[Direction(0, +1)] is DirectionClass.PREFERRED

    def test_disabled_neighbor_is_last_resort(self, mesh3d):
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        # (2, 5, 3) is adjacent to the disabled member (3, 5, 3).
        ordered = dict(
            (d, cls)
            for cls, d in classify_directions(
                info, (2, 5, 3), (9, 5, 3), policy=RoutingPolicy.limited_global()
            )
        )
        assert ordered[Direction(0, +1)] is DirectionClass.DISABLED_NEIGHBOR


class TestRoutingDecision:
    def test_backtrack_on_disabled_node(self, mesh3d):
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        header = ProbeHeader(destination=(9, 9, 9), stack=[(2, 5, 3), (3, 5, 3)])
        assert (
            routing_decision(info, header, policy=RoutingPolicy.limited_global())
            == BACKTRACK
        )

    def test_backtrack_when_no_unused_direction(self, mesh2d):
        info = InformationState.fresh(mesh2d, faults=[(1, 0), (0, 1)])
        header = ProbeHeader(destination=(5, 5), stack=[(0, 0)])
        # Corner node with both neighbors faulty: nothing usable.
        assert (
            routing_decision(info, header, policy=RoutingPolicy.limited_global())
            == BACKTRACK
        )

    def test_decision_prefers_highest_priority(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        header = ProbeHeader(destination=(5, 2), stack=[(2, 2)])
        decision = routing_decision(info, header, policy=RoutingPolicy.limited_global())
        assert decision == Direction(0, +1)


class TestRoutingAroundBlocks:
    def test_boundary_information_avoids_detour(self, mesh3d):
        """The headline behaviour: with boundary information the probe never
        enters the dangerous area, keeping the path minimal, while the
        information-free probe pays a detour."""
        labeling = build_blocks(mesh3d, FIGURE1_FAULTS).state
        info = distribute_information(mesh3d, labeling)
        bare = InformationState(mesh=mesh3d, labeling=labeling)
        # The x-offset dominates, so the greedy preferred order walks +X
        # towards the block first; the boundary column at x=2 is where the
        # informed probe gets steered +Y instead of entering the prism.
        source, destination = (0, 4, 4), (4, 7, 4)

        informed = route_offline(info, source, destination)
        uninformed = route_offline(
            bare, source, destination, policy=RoutingPolicy.no_information()
        )
        assert informed.delivered and uninformed.delivered
        assert informed.detours == 0
        assert uninformed.detours > 0

    def test_unsafe_source_still_delivered(self, mesh3d):
        """A probe starting inside the dangerous prism detours but arrives."""
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        result = route_offline(info, (4, 2, 4), (4, 9, 4))
        assert result.delivered
        assert result.detours is not None and result.detours > 0

    def test_destination_surrounded_is_unreachable(self, mesh2d):
        """A destination whose neighbors are all faulty cannot be reached and
        the probe reports it by backtracking to the source."""
        faults = [(4, 5), (6, 5), (5, 4), (5, 6)]
        labeling = build_blocks(mesh2d, faults).state
        info = distribute_information(mesh2d, labeling)
        result = route_offline(info, (0, 0), (5, 5))
        assert result.outcome is RouteOutcome.UNREACHABLE

    def test_used_directions_prevent_livelock(self, mesh2d):
        """Every (node, direction) pair is used at most once."""
        faults = [(4, 4), (5, 5), (4, 6), (6, 4)]
        labeling = build_blocks(mesh2d, faults).state
        info = distribute_information(mesh2d, labeling)
        result = route_offline(info, (0, 0), (9, 9))
        assert result.delivered
        seen = set()
        for u, v in zip(result.path, result.path[1:]):
            if mesh2d.distance(u, v) != 1:
                continue
            # only forward moves consume a (node, direction) pair
        assert result.hops <= 4 * mesh2d.size

    def test_exhausted_when_step_budget_too_small(self, mesh3d):
        info = InformationState.fresh(mesh3d)
        result = route_offline(info, (0, 0, 0), (9, 9, 9), max_steps=3)
        assert result.outcome is RouteOutcome.EXHAUSTED
        assert result.detours is None


class TestRoutingProbe:
    def test_step_by_step_matches_offline(self, mesh3d):
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        offline = route_offline(info, (0, 4, 4), (4, 7, 4))
        probe = RoutingProbe(mesh3d, (0, 4, 4), (4, 7, 4))
        while probe.step(info) is None:
            pass
        assert probe.result().path == offline.path

    def test_probe_validates_endpoints(self, mesh2d):
        with pytest.raises(ValueError):
            RoutingProbe(mesh2d, (0, 0), (99, 99))
