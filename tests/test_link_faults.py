"""Unit tests for link-fault handling (treated as node faults, per the paper)."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import route_offline
from repro.faults.links import LinkFault, LinkFaultSet, endpoints_as_node_faults
from repro.mesh.coords import canonical_link
from repro.mesh.topology import Mesh


class TestLinkFault:
    def test_requires_adjacent_endpoints(self):
        with pytest.raises(ValueError):
            LinkFault((0, 0), (2, 0))
        with pytest.raises(ValueError):
            LinkFault((0, 0), (0, 0))

    def test_canonical_is_order_independent(self):
        assert LinkFault((1, 0), (0, 0)).canonical == LinkFault((0, 0), (1, 0)).canonical

    def test_endpoints_normalized_through_canonical_link(self):
        """Construction routes through the shared mesh.coords.canonical_link."""
        fault = LinkFault((1, 0), (0, 0))
        assert (fault.u, fault.v) == canonical_link((1, 0), (0, 0))
        assert fault == LinkFault((0, 0), (1, 0))
        assert len({fault, LinkFault((0, 0), (1, 0))}) == 1


class TestLinkIndexRoundTrip:
    @pytest.mark.parametrize("shape", [(6, 6), (4, 5, 3), (3, 3, 3, 3)])
    def test_every_link_round_trips(self, shape):
        """canonical_link ↔ link_index ↔ link_of_index agree for every link."""
        mesh = Mesh(shape)
        seen = set()
        for node in mesh.nodes():
            for neighbor in mesh.neighbors(node):
                index = mesh.link_index(node, neighbor)
                assert index == mesh.link_index(neighbor, node)
                assert 0 <= index < mesh.link_slots
                assert mesh.link_of_index(index) == canonical_link(node, neighbor)
                assert LinkFault(node, neighbor).index_in(mesh) == index
                seen.add(index)
        assert len(seen) == mesh.n_links

    def test_non_neighbors_rejected(self):
        mesh = Mesh.cube(5, 2)
        with pytest.raises(ValueError):
            mesh.link_index((0, 0), (1, 1))
        with pytest.raises(ValueError):
            mesh.link_index((0, 0), (0, 0))

    def test_fault_set_indices_round_trip(self):
        mesh = Mesh.cube(6, 2)
        faults = LinkFaultSet.of([((2, 2), (2, 3)), ((4, 1), (3, 1))])
        indices = faults.indices(mesh)
        assert len(indices) == 2
        assert {mesh.link_of_index(i) for i in indices} == set(faults.links)


class TestLinkFaultSet:
    def test_membership(self):
        faults = LinkFaultSet.of([((2, 2), (2, 3)), LinkFault((5, 5), (6, 5))])
        assert len(faults) == 2
        assert faults.is_faulty((2, 3), (2, 2))
        assert faults.is_faulty((6, 5), (5, 5))
        assert not faults.is_faulty((0, 0), (0, 1))

    def test_duplicates_collapse(self):
        faults = LinkFaultSet.of([((2, 2), (2, 3)), ((2, 3), (2, 2))])
        assert len(faults) == 1


class TestEndpointsAsNodeFaults:
    def test_one_node_per_link(self, mesh2d):
        node_faults = endpoints_as_node_faults(
            mesh2d, [((4, 4), (4, 5)), ((7, 2), (8, 2))]
        )
        assert len(node_faults) == 2
        # Each returned node is an endpoint of its link.
        assert node_faults[0] in {(4, 4), (4, 5)}
        assert node_faults[1] in {(7, 2), (8, 2)}

    def test_existing_fault_reused(self, mesh2d):
        node_faults = endpoints_as_node_faults(
            mesh2d, [((4, 4), (4, 5))], existing_node_faults=[(4, 5)]
        )
        assert node_faults == []

    def test_prefers_interior_endpoint(self, mesh2d):
        # Link between a surface node and an interior node: pick the interior one.
        node_faults = endpoints_as_node_faults(mesh2d, [((0, 4), (1, 4))])
        assert node_faults == [(1, 4)]

    def test_adjacent_links_coalesce(self, mesh2d):
        # Two links sharing the region around (5,5): the chosen nodes should
        # be adjacent so the labeling builds a single block.
        links = [((5, 5), (5, 6)), ((6, 5), (6, 6)), ((5, 6), (6, 6))]
        node_faults = endpoints_as_node_faults(mesh2d, links)
        result = build_blocks(mesh2d, node_faults)
        assert len(result.blocks) == 1

    def test_routing_avoids_link_fault_region(self, mesh2d):
        links = [((5, 4), (5, 5)), ((4, 5), (5, 5)), ((5, 5), (6, 5))]
        node_faults = endpoints_as_node_faults(mesh2d, links)
        labeling = build_blocks(mesh2d, node_faults).state
        info = distribute_information(mesh2d, labeling)
        route = route_offline(info, (0, 0), (9, 9))
        assert route.delivered
        # The route never uses a faulty link (both endpoints of every hop are
        # operational, which implies no faulty link is traversed under the
        # node-fault mapping).
        fault_set = LinkFaultSet.of(links)
        faulty_nodes = set(labeling.faulty_nodes)
        for u, v in zip(route.path, route.path[1:]):
            assert u not in faulty_nodes and v not in faulty_nodes
