"""Tests for the observability layer (repro.obs).

The load-bearing contracts:

* attaching a recorder or profiler never changes simulation results
  (enabled-vs-disabled parity, on both probe engines);
* the recorder's cumulative-column deltas sum back to the end-of-run
  ``SimulationStats`` aggregates *exactly* — the acceptance criterion of
  the observability PR;
* the JSONL trace round-trips and preserves those sums;
* ``measure_open_loop``'s window samples (now recorder-sliced) match the
  historic inline mark-and-diff reference, number for number;
* sweep telemetry rides on ``BatchResult`` without ever entering the
  canonical JSON, so the determinism contract is untouched.
"""

import json

import numpy as np
import pytest

from repro.experiments import ExperimentSpec, run_batch
from repro.mesh import Mesh
from repro.obs import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    PhaseProfiler,
    ShardRecord,
    StepRecorder,
    SweepTelemetry,
    TRACE_SCHEMA,
    read_trace,
    trace_records,
    write_trace,
)
from repro.obs.recorder import CUMULATIVE_COLUMNS
from repro.obs.report import render_telemetry_report, render_trace_report, sniff_kind
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.stats import percentile
from repro.throughput import MeasurementWindows, OpenLoopSource, make_injection
from repro.throughput.measure import measure_open_loop
from repro.viz.ascii import sparkline
from repro.workloads.scenarios import random_dynamic_scenario


def _contended_sim(backend=None, recorder=None, profiler=None):
    """A contended 8x8 dynamic-fault scenario (the acceptance scenario)."""
    scenario = random_dynamic_scenario(
        shape=(8, 8), dynamic_faults=4, interval=15, messages=24, seed=1
    )
    return Simulator(
        scenario.mesh,
        schedule=scenario.schedule,
        traffic=list(scenario.traffic),
        config=SimulationConfig(
            lam=2, router="limited-global", contention=True, backend=backend
        ),
        recorder=recorder,
        profiler=profiler,
    )


class TestRegistry:
    def test_counter_increments_and_rejects_negative(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.value == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_set_and_add(self):
        g = Gauge("g")
        g.set(3.0)
        g.add(-1.5)
        assert g.value == 1.5

    def test_histogram_buckets_and_moments(self):
        h = Histogram("h", bounds=(1, 2, 4))
        for v in (0, 1, 2, 3, 100):
            h.observe(v)
        assert h.count == 5
        assert h.total == 106.0
        assert h.min == 0 and h.max == 100
        # buckets: <=1 gets 0 and 1; <=2 gets 2; <=4 gets 3; overflow 100.
        assert h.buckets == [2, 1, 1, 1]
        snap = h.snapshot()
        assert snap["mean"] == pytest.approx(21.2)

    def test_registry_lazy_creation_and_type_clash(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        reg.gauge("b").set(2)
        with pytest.raises(TypeError):
            reg.counter("b")
        snap = reg.snapshot()
        assert set(snap) == {"a", "b"}
        assert snap["b"] == {"type": "gauge", "value": 2.0}
        assert reg.names() == ["a", "b"]


class TestPhaseProfiler:
    def test_spans_aggregate_by_nested_path(self):
        prof = PhaseProfiler()
        for _ in range(3):
            with prof.span("outer"):
                with prof.span("inner"):
                    pass
        assert prof.count("outer") == 3
        assert prof.count("outer", "inner") == 3
        assert prof.seconds("outer") >= prof.seconds("outer", "inner") >= 0.0
        assert prof.count("missing") == 0
        tree = prof.to_dict()
        assert tree["outer"]["children"]["inner"]["count"] == 3
        report = prof.report()
        assert "outer" in report and "inner" in report

    def test_profiled_run_matches_unprofiled(self):
        plain = _contended_sim(backend="vector")
        plain.run()
        prof = PhaseProfiler()
        profiled = _contended_sim(backend="vector", profiler=prof)
        profiled.run()
        assert profiled.stats.summary() == plain.stats.summary()
        assert prof.count("step") == plain.stats.steps
        assert prof.seconds("step") > 0.0
        # The table engine's message phases were timed under "messages".
        assert prof.count("step", "messages", "probe_advance") > 0

    def test_object_path_profiled_run_matches(self):
        plain = _contended_sim(backend="scalar")
        plain.run()
        prof = PhaseProfiler()
        profiled = _contended_sim(backend="scalar", profiler=prof)
        profiled.run()
        assert profiled.stats.summary() == plain.stats.summary()
        assert prof.count("step", "information", "labeling_round") > 0


class TestStepRecorder:
    def test_recorder_does_not_change_results(self):
        plain = _contended_sim()
        plain.run()
        recorder = StepRecorder()
        recorded = _contended_sim(recorder=recorder)
        recorded.run()
        assert recorded.stats.summary() == plain.stats.summary()
        assert len(recorder) == plain.stats.steps

    @pytest.mark.parametrize("backend", ["vector", "scalar"])
    def test_series_sums_equal_aggregates(self, backend):
        recorder = StepRecorder(capacity=16)  # force growth too
        sim = _contended_sim(backend=backend, recorder=recorder)
        sim.run()
        stats = sim.stats

        assert len(recorder) == stats.steps
        sums = {
            name: int(recorder.deltas(name).sum()) for name in CUMULATIVE_COLUMNS
        }
        assert sums["finished_total"] == len(stats.messages)
        assert sums["delivered_total"] == len(stats.delivered_messages)
        assert sums["blocked_hops_total"] == stats.total_blocked_hops
        assert sums["setup_retries_total"] == stats.total_setup_retries
        assert sums["link_steps_total"] == stats.circuit_link_steps
        # Deltas of a cumulative column reconstruct its final value.
        assert recorder.cumulative_at("finished_total", stats.steps) == len(
            stats.messages
        )
        # Level columns: every node is in exactly one status bucket.
        statuses = (
            recorder.column("nodes_enabled")
            + recorder.column("nodes_clean")
            + recorder.column("nodes_disabled")
            + recorder.column("nodes_faulty")
        )
        assert (statuses == sim.mesh.size).all()
        # All probes finished, so the final in-flight level is zero.
        assert recorder.column("in_flight")[-1] == 0
        # Peak of the sampled occupancy equals the stats' tracked peak.
        assert recorder.column("reserved_links").max() == stats.peak_reserved_links

    def test_column_access_guards(self):
        recorder = StepRecorder()
        with pytest.raises(KeyError):
            recorder.column("nope")
        with pytest.raises(KeyError):
            recorder.deltas("in_flight")  # a level, not a cumulative column
        assert recorder.cumulative_at("finished_total", 0) == 0
        view = recorder.column("step")
        assert not view.flags.writeable

    def test_rows_are_deltas_plus_levels(self):
        recorder = StepRecorder()
        sim = _contended_sim(recorder=recorder)
        sim.run()
        rows = list(recorder.rows())
        assert len(rows) == sim.stats.steps
        assert rows[0]["step"] == 0
        assert sum(r["finished"] for r in rows) == len(sim.stats.messages)
        assert all("in_flight" in r and "reserved_links" in r for r in rows)


class TestTrace:
    def test_round_trip(self, tmp_path):
        recorder = StepRecorder()
        sim = _contended_sim(recorder=recorder)
        sim.run()
        path = str(tmp_path / "run.jsonl")
        lines = write_trace(path, sim)
        assert lines == len(list(trace_records(sim)))

        trace = read_trace(path)
        assert trace.schema == TRACE_SCHEMA
        assert trace.header["shape"] == [8, 8]
        assert trace.header["steps"] == sim.stats.steps
        assert len(trace.steps) == sim.stats.steps
        assert len(trace.events) == len(sim.schedule.events)
        assert len(trace.convergence) == len(sim.stats.convergence)
        assert trace.summary == sim.stats.summary()
        # The per-step series sum to the aggregates through the file too.
        assert sum(trace.series("finished")) == trace.summary["messages"]
        assert sum(trace.series("delivered")) == round(
            trace.summary["messages"] * trace.summary["delivery_rate"]
        )
        assert sum(trace.series("blocked_hops")) == trace.summary["blocked_hops"]

    def test_read_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "step"}\n')
        with pytest.raises(ValueError, match="no trace header"):
            read_trace(str(path))
        path.write_text('{"kind": "header", "schema": "other/v9"}\n')
        with pytest.raises(ValueError, match="unsupported trace schema"):
            read_trace(str(path))

    def test_report_renders_and_checks_totals(self, tmp_path):
        recorder = StepRecorder()
        sim = _contended_sim(recorder=recorder)
        sim.run()
        path = str(tmp_path / "run.jsonl")
        write_trace(path, sim)
        assert sniff_kind(path) == "trace"
        report = render_trace_report(read_trace(path))
        assert "per-step series" in report
        assert "totals check" in report
        assert "MISMATCH" not in report


class TestWindowSampleParity:
    def test_samples_match_inline_reference(self):
        """Recorder-sliced window samples == the historic mark-and-diff."""
        windows = MeasurementWindows(warmup=40, measure=100, drain=200, sample_every=32)

        def build_source():
            return OpenLoopSource(
                Mesh((6, 6)),
                make_injection("bernoulli", 0.02),
                pattern="uniform",
                seed=5,
                flits=32,
            )

        config = SimulationConfig(
            contention=True, router="limited-global", max_steps=10**9,
            max_probe_lifetime=12,
        )
        result = measure_open_loop(
            build_source().mesh, build_source(), config=config, windows=windows
        )

        # Reference: the pre-recorder inline sampling loop, verbatim.
        source = build_source()
        source.stop = windows.injection_stop
        sim = Simulator(source.mesh, traffic=source, config=config)
        reference = []

        def marks():
            return (
                source.generated,
                len(sim.stats.messages),
                sum(1 for r in sim.stats.messages if r.delivered),
                sim.stats.circuit_link_steps,
            )

        mark, mark_step = marks(), 0
        while sim.current_step < windows.horizon:
            if sim.current_step >= windows.injection_stop and sim.in_flight == 0:
                break
            sim.step()
            now = sim.current_step
            if now == windows.warmup:
                mark, mark_step = marks(), now
            elif windows.warmup < now <= windows.injection_stop and (
                (now - windows.warmup) % windows.sample_every == 0
                or now == windows.injection_stop
            ):
                injected, finished, delivered, link_steps = marks()
                reference.append(
                    (
                        mark_step,
                        injected - mark[0],
                        finished - mark[1],
                        delivered - mark[2],
                        (link_steps - mark[3]) / (now - mark_step),
                    )
                )
                mark, mark_step = (injected, finished, delivered, link_steps), now

        produced = [
            (s.start_step, s.injected, s.finished, s.delivered, s.mean_reserved_links)
            for s in result.samples
        ]
        assert produced == reference

    def test_zero_warmup_and_ragged_tail(self):
        windows = MeasurementWindows(warmup=0, measure=50, drain=100, sample_every=32)
        source = OpenLoopSource(
            Mesh((5, 5)),
            make_injection("bernoulli", 0.02),
            pattern="uniform",
            seed=2,
        )
        result = measure_open_loop(
            source.mesh,
            source,
            config=SimulationConfig(
                contention=True, router="limited-global", max_steps=10**9,
                max_probe_lifetime=10,
            ),
            windows=windows,
        )
        starts = [s.start_step for s in result.samples]
        assert starts == [0, 32]  # boundaries 0, 32, 50 (ragged last window)
        assert sum(s.injected for s in result.samples) == result.injected


class TestSummaryLatencies:
    def test_percentile_nearest_rank(self):
        assert percentile([], 0.5) == 0.0
        assert percentile([7], 0.99) == 7.0
        assert percentile([1, 2, 3, 4], 0.5) == 2.0
        assert percentile([1, 2, 3, 4], 0.99) == 4.0

    def test_summary_latency_keys(self):
        sim = _contended_sim()
        sim.run()
        summary = sim.stats.summary()
        latencies = sim.stats.setup_latencies()
        assert summary["mean_latency"] == pytest.approx(
            sum(latencies) / len(latencies)
        )
        assert summary["p50_latency"] == percentile(latencies, 0.50)
        assert summary["p99_latency"] == percentile(latencies, 0.99)


class TestSweepTelemetry:
    def _spec(self):
        return ExperimentSpec(
            name="telemetry-test",
            mode="simulate",
            mesh_shapes=((5, 5),),
            policies=("limited-global",),
            fault_counts=(2,),
            fault_intervals=(10,),
            lams=(2,),
            traffic_sizes=(6,),
            seeds=(0, 1),
        )

    def test_run_batch_attaches_telemetry(self):
        batch = run_batch(self._spec(), workers=1, engine="auto")
        telemetry = batch.telemetry
        assert telemetry is not None
        assert telemetry.cells == 2
        assert telemetry.wall_seconds > 0.0
        assert telemetry.shards and telemetry.shards[0].kind == "stacked"
        assert 0.0 <= telemetry.worker_utilization <= 1.0
        assert telemetry.cache is None

    def test_telemetry_excluded_from_canonical_json(self):
        auto = run_batch(self._spec(), workers=1, engine="auto")
        serial = run_batch(self._spec(), workers=1, engine="serial")
        # Wall clocks differ; the canonical export must not.
        assert auto.telemetry is not None and serial.telemetry is not None
        assert auto.telemetry.wall_seconds != serial.telemetry.wall_seconds or True
        assert auto.to_json() == serial.to_json()
        assert "telemetry" not in auto.to_dict()
        assert "telemetry" not in json.loads(auto.to_json())

    def test_cache_stats_in_telemetry(self, tmp_path):
        from repro.experiments import ResultCache

        cache = ResultCache(tmp_path)
        cold = run_batch(self._spec(), cache=cache)
        assert cold.telemetry.cache == {
            "hits": 0, "misses": 2, "writes": 2, "invalid": 0,
        }
        warm_cache = ResultCache(tmp_path)
        warm = run_batch(self._spec(), cache=warm_cache)
        assert warm.telemetry.cache == {
            "hits": 2, "misses": 0, "writes": 0, "invalid": 0,
        }
        assert [s.kind for s in warm.telemetry.shards] == ["cached"]
        assert cold.to_json() == warm.to_json()

    def test_payload_round_trip_and_report(self):
        telemetry = SweepTelemetry(
            engine="auto",
            workers=2,
            cells=8,
            wall_seconds=2.0,
            shards=(
                ShardRecord(kind="stacked", cells=6, seconds=1.5, landed_seconds=1.6),
                ShardRecord(kind="serial", cells=2, seconds=1.0, landed_seconds=1.9),
            ),
            cache={"hits": 1, "misses": 7, "writes": 7, "invalid": 0},
        )
        assert telemetry.busy_seconds == 2.5
        assert telemetry.worker_utilization == pytest.approx(2.5 / 4.0)
        payload = telemetry.to_dict()
        assert payload["telemetry"]["version"] == 2
        assert SweepTelemetry.from_dict(payload) == telemetry
        with pytest.raises(ValueError, match="unsupported telemetry version"):
            SweepTelemetry.from_dict({"telemetry": {"version": 99}})
        report = render_telemetry_report(telemetry)
        assert "utilization 62%" in report
        assert "1 hits / 8 lookups" in report

    def test_utilization_caps_and_degenerate(self):
        empty = SweepTelemetry(engine="serial", workers=0, cells=0, wall_seconds=0.0)
        assert empty.worker_utilization == 0.0
        busy = SweepTelemetry(
            engine="serial",
            workers=1,
            cells=1,
            wall_seconds=1.0,
            shards=(ShardRecord("serial", 1, 99.0, 1.0),),
        )
        assert busy.worker_utilization == 1.0  # clamped


class TestSparkline:
    def test_empty_and_constant(self):
        assert sparkline([]) == ""
        assert sparkline([3, 3, 3]) == "▁▁▁"

    def test_shape_and_downsampling(self):
        line = sparkline(list(range(8)))
        assert len(line) == 8
        assert line[0] == "▁" and line[-1] == "█"
        assert sorted(line) == list(line)  # monotone series, monotone bars
        wide = sparkline(list(range(1000)), width=40)
        assert len(wide) == 40
        with pytest.raises(ValueError):
            sparkline([1], width=0)
