"""Unit tests for coordinate arithmetic."""

import pytest

from repro.mesh.coords import (
    add,
    clamp,
    component_delta,
    is_adjacent,
    iter_line,
    manhattan,
    offsets_toward,
    preferred_directions,
    subtract,
)
from repro.mesh.directions import Direction


class TestArithmetic:
    def test_add_subtract_roundtrip(self):
        assert add((1, 2, 3), (4, 5, 6)) == (5, 7, 9)
        assert subtract((5, 7, 9), (4, 5, 6)) == (1, 2, 3)

    def test_rank_mismatch_raises(self):
        with pytest.raises(ValueError):
            add((1, 2), (1, 2, 3))
        with pytest.raises(ValueError):
            subtract((1, 2), (1,))
        with pytest.raises(ValueError):
            manhattan((1, 2), (1, 2, 3))


class TestManhattan:
    def test_distance_matches_paper_definition(self):
        # D(u, v) = sum_i |u_i - v_i|
        assert manhattan((0, 0, 0), (3, 4, 5)) == 12
        assert manhattan((2, 2), (2, 2)) == 0

    def test_symmetry(self):
        assert manhattan((1, 7, 3), (4, 2, 8)) == manhattan((4, 2, 8), (1, 7, 3))

    def test_triangle_inequality(self):
        a, b, c = (0, 0), (3, 4), (7, 1)
        assert manhattan(a, c) <= manhattan(a, b) + manhattan(b, c)


class TestAdjacency:
    def test_adjacent_iff_distance_one(self):
        assert is_adjacent((1, 1), (1, 2))
        assert not is_adjacent((1, 1), (2, 2))
        assert not is_adjacent((1, 1), (1, 1))

    def test_rank_mismatch_is_not_adjacent(self):
        assert not is_adjacent((1, 1), (1, 1, 1))


class TestOffsets:
    def test_offsets_toward(self):
        assert offsets_toward((2, 5, 5), (5, 5, 0)) == (+1, 0, -1)

    def test_preferred_directions(self):
        dirs = preferred_directions((2, 5, 5), (5, 5, 0))
        assert set(dirs) == {Direction(0, +1), Direction(2, -1)}

    def test_no_preferred_at_destination(self):
        assert preferred_directions((3, 3), (3, 3)) == ()

    def test_component_delta(self):
        assert component_delta((2, 2), (5, 1), 0) == 3
        assert component_delta((2, 2), (5, 1), 1) == -1


class TestIterLine:
    def test_walks_in_direction(self):
        pts = list(iter_line((2, 2), Direction(1, -1), 3))
        assert pts == [(2, 1), (2, 0), (2, -1)]

    def test_zero_length(self):
        assert list(iter_line((0, 0), Direction(0, 1), 0)) == []

    def test_negative_length_raises(self):
        with pytest.raises(ValueError):
            list(iter_line((0, 0), Direction(0, 1), -1))


def test_clamp():
    assert clamp((5, -2, 9), (0, 0, 0), (7, 7, 7)) == (5, 0, 7)
    with pytest.raises(ValueError):
        clamp((1, 2), (0,), (5,))
