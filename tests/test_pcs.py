"""Unit tests for the PCS circuit and transfer models."""

import pytest

from repro.core.distribution import converged_information
from repro.core.routing import RouteOutcome, RouteResult, route_offline
from repro.core.state import InformationState
from repro.pcs.circuit import Circuit, CircuitTable, ReservationError
from repro.pcs.transfer import TransferModel, transfer_latency
from repro.workloads.scenarios import FIGURE1_FAULTS


def _route(mesh, info, source, destination):
    return route_offline(info, source, destination)


class TestCircuit:
    def test_rejects_disconnected_path(self):
        with pytest.raises(ValueError):
            Circuit(((0, 0), (2, 0)))

    def test_rejects_repeated_node(self):
        with pytest.raises(ValueError):
            Circuit(((0, 0), (1, 0), (0, 0)))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Circuit(())

    def test_from_straight_route(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        result = _route(mesh2d, info, (0, 0), (3, 0))
        circuit = Circuit.from_route(result)
        assert circuit.source == (0, 0)
        assert circuit.destination == (3, 0)
        assert circuit.length == 3
        assert len(circuit.links) == 3

    def test_from_route_removes_backtracked_prefix(self, mesh3d):
        """Backtracked excursions must not stay reserved."""
        info = converged_information(mesh3d, FIGURE1_FAULTS)
        result = _route(mesh3d, info, (4, 2, 4), (4, 9, 4))
        assert result.backtrack_hops >= 0
        circuit = Circuit.from_route(result)
        assert circuit.source == (4, 2, 4)
        assert circuit.destination == (4, 9, 4)
        # The circuit is a simple path no longer than the probe's walk.
        assert circuit.length <= result.hops
        assert circuit.length >= result.min_distance

    def test_from_stack_collapses_loop_excursions(self):
        """A stack that loops back onto itself cuts the loop at first visit."""
        stack = [(0, 0), (1, 0), (1, 1), (0, 1), (0, 0), (0, 1)]
        circuit = Circuit.from_stack(stack)
        assert circuit.path == ((0, 0), (0, 1))

    def test_from_stack_loop_free_is_identity(self):
        stack = [(0, 0), (1, 0), (1, 1)]
        assert Circuit.from_stack(stack).path == tuple(stack)

    def test_from_failed_route_raises(self, mesh2d):
        result = RouteResult(
            outcome=RouteOutcome.UNREACHABLE,
            path=[(0, 0)],
            source=(0, 0),
            destination=(5, 5),
            min_distance=10,
            forward_hops=0,
            backtrack_hops=0,
        )
        with pytest.raises(ReservationError):
            Circuit.from_route(result)


class TestCircuitTable:
    def test_reserve_and_conflict(self):
        table = CircuitTable()
        a = Circuit(((0, 0), (1, 0), (2, 0)))
        b = Circuit(((1, 0), (2, 0), (2, 1)))  # shares link (1,0)-(2,0)
        c = Circuit(((5, 5), (5, 6)))
        table.reserve(a)
        assert table.conflicts(b)
        with pytest.raises(ReservationError):
            table.reserve(b)
        table.reserve(c)
        assert table.reserved_links == 3
        assert len(table.circuits) == 2

    def test_release(self):
        table = CircuitTable()
        a = Circuit(((0, 0), (1, 0)))
        table.reserve(a)
        table.release(a)
        assert table.reserved_links == 0
        # Releasing again is a no-op.
        table.release(a)
        table.reserve(a)
        assert table.reserved_links == 1


class TestTransferModel:
    def test_setup_latency_counts_all_hops(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        result = _route(mesh2d, info, (0, 0), (4, 4))
        model = TransferModel()
        assert model.setup_latency(result) == pytest.approx(result.hops)

    def test_data_latency_components(self):
        circuit = Circuit(((0, 0), (1, 0), (2, 0)))
        model = TransferModel(data_hop_latency=0.5, flit_injection_latency=0.1)
        assert model.data_latency(circuit, 10) == pytest.approx(0.5 * 2 + 0.1 * 10)
        with pytest.raises(ValueError):
            model.data_latency(circuit, -1)

    def test_end_to_end_and_wrapper(self, mesh2d):
        info = InformationState.fresh(mesh2d)
        result = _route(mesh2d, info, (0, 0), (4, 4))
        model = TransferModel()
        assert transfer_latency(result, 64, model) == pytest.approx(
            model.end_to_end(result, 64)
        )
        # Longer messages take longer.
        assert transfer_latency(result, 128) > transfer_latency(result, 16)
