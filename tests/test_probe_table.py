"""Parity suite for the struct-of-arrays probe engine.

The probe table (:mod:`repro.core.probe_table`) replaces per-object
:class:`~repro.core.routing.RoutingProbe` stepping with flat-column array
passes; the scalar objects remain the oracle.  This suite holds the two to
byte-identity — per-message outcomes and paths AND the aggregated
:class:`SimulationStats` summary — across every registered routing policy,
with and without circuit contention, over all four closed-batch traffic
scenarios, plus randomized configurations.  The stacked sweep engine
(``run_batch(engine="stacked")``) is held to the same bar at the JSON
export level: a multi-shape, multi-policy grid must serialize identically
to the serial runner's output.

Policies whose routers the table cannot host (``static-block``,
``global-information``) construct with ``sim._table is None`` already; for
them the comparison degenerates to a determinism check of the object path,
which keeps the matrix uniform and guards the eligibility gate itself.
"""

import numpy as np
import pytest

from repro.backend import VECTOR, resolve_backend
from repro.experiments import ExperimentSpec, run_batch
from repro.experiments.runner import _build_simulate_sim
from repro.routing import available_routers

POLICIES = available_routers()
SCENARIOS = ("random", "hotspot", "transpose", "bursty")


def _cell(policy, scenario, contention, *, shape=(6, 6), faults=2,
          messages=10, seed=3, flits=16):
    spec = ExperimentSpec(
        name="probe-parity",
        mode="simulate",
        mesh_shapes=(shape,),
        policies=(policy,),
        scenarios=(scenario,),
        fault_counts=(faults,),
        fault_intervals=(6,),
        lams=(2,),
        traffic_sizes=(messages,),
        seeds=(seed,),
        contention=contention,
        flits=(flits,),
    )
    (cell,) = spec.cells()
    return cell


def _fingerprint(stats):
    """SimulationStats summary plus per-message outcome/path."""
    return (
        stats.summary(),
        [
            (m.message.source, m.message.destination, m.result.outcome,
             tuple(m.result.path), m.result.hops,
             m.result.blocked_hops, m.result.setup_retries)
            for m in stats.messages
        ],
    )


def _run(cell, table):
    sim = _build_simulate_sim(cell)
    if not table:
        sim._table = None  # force the scalar per-object oracle path
    return sim.run().stats


class TestProbeTableScalarParity:
    @pytest.mark.parametrize("contention", (False, True),
                             ids=("uncontended", "contended"))
    @pytest.mark.parametrize("scenario", SCENARIOS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_parity_policy_scenario_contention(self, policy, scenario, contention):
        cell = _cell(policy, scenario, contention)
        assert _fingerprint(_run(cell, True)) == _fingerprint(_run(cell, False))

    def test_parity_randomized_configurations(self):
        """Randomly drawn grid points, fixed stream so failures reproduce."""
        rng = np.random.default_rng(20260807)
        for _ in range(8):
            cell = _cell(
                policy=POLICIES[rng.integers(len(POLICIES))],
                scenario=SCENARIOS[rng.integers(len(SCENARIOS))],
                contention=bool(rng.integers(2)),
                shape=(int(rng.integers(5, 9)),) * 2,
                faults=int(rng.integers(0, 4)),
                messages=int(rng.integers(4, 16)),
                seed=int(rng.integers(1 << 16)),
                flits=int(rng.integers(4, 48)),
            )
            assert _fingerprint(_run(cell, True)) == _fingerprint(_run(cell, False)), cell

    def test_table_engaged_for_eligible_policy(self):
        """The matrix above only means something if eligible cells really
        run on the table: guard the eligibility gate in both directions.
        Under the scalar backend no cell is eligible — the table requires
        the vector decision engine."""
        eligible = _build_simulate_sim(_cell("limited-global", "random", True))._table
        if resolve_backend() == VECTOR:
            assert eligible is not None
        else:
            assert eligible is None
        assert _build_simulate_sim(_cell("static-block", "random", True))._table is None


class TestStackedSweepParity:
    def test_parity_stacked_json_matches_serial(self):
        """Multi-shape, multi-policy grid: stacked JSON == serial JSON.

        The grid deliberately mixes two mesh shapes (two stacked groups),
        a probe-table-ineligible policy (per-cell serial fallback inside
        the stacked runner) and contended circuit setup.
        """
        spec = ExperimentSpec(
            name="stacked-parity",
            mode="simulate",
            mesh_shapes=((6, 6), (8, 8)),
            policies=("limited-global", "no-information", "static-block"),
            scenarios=("transpose",),
            fault_counts=(2,),
            fault_intervals=(5,),
            lams=(2,),
            traffic_sizes=(8,),
            seeds=(0, 1),
            contention=True,
            flits=(16,),
        )
        serial = run_batch(spec, engine="serial")
        stacked = run_batch(spec, engine="stacked")
        assert stacked.to_json() == serial.to_json()

    def test_parity_stacked_uncontended(self):
        spec = ExperimentSpec(
            name="stacked-parity-nc",
            mode="simulate",
            mesh_shapes=((7, 7),),
            policies=("limited-global", "boundary-only"),
            scenarios=("random",),
            fault_counts=(3,),
            fault_intervals=(4,),
            lams=(1,),
            traffic_sizes=(10,),
            seeds=(0, 1, 2),
        )
        assert (
            run_batch(spec, engine="stacked").to_json()
            == run_batch(spec, engine="serial").to_json()
        )
