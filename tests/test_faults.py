"""Unit tests for node status, fault schedules and fault injection."""

import numpy as np
import pytest

from repro.faults.injection import (
    FaultInjectionError,
    block_seed_faults,
    clustered_faults,
    dynamic_schedule,
    recovery_schedule,
    uniform_random_faults,
)
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.faults.status import NodeStatus
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh


class TestNodeStatus:
    def test_operational(self):
        assert NodeStatus.ENABLED.is_operational
        assert NodeStatus.DISABLED.is_operational
        assert NodeStatus.CLEAN.is_operational
        assert not NodeStatus.FAULTY.is_operational

    def test_in_block(self):
        assert NodeStatus.FAULTY.in_block
        assert NodeStatus.DISABLED.in_block
        assert not NodeStatus.ENABLED.in_block
        assert not NodeStatus.CLEAN.in_block


class TestFaultEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultEvent(-1, (0, 0))

    def test_node_is_tuple(self):
        event = FaultEvent(3, [1, 2])
        assert event.node == (1, 2)

    def test_ordering_by_time(self):
        early = FaultEvent(1, (0, 0))
        late = FaultEvent(5, (0, 0, 1) if False else (0, 1))
        assert early < late


class TestDynamicFaultSchedule:
    def test_static_schedule(self):
        schedule = DynamicFaultSchedule.static([(1, 1), (2, 2)])
        assert schedule.total_faults == 0
        assert schedule.faulty_set_at(0) == {(1, 1), (2, 2)}
        assert schedule.horizon == 0

    def test_paper_quantities(self):
        schedule = dynamic_schedule(
            [(1, 1), (2, 2), (3, 3)], start_time=4, interval=[5, 7]
        )
        assert schedule.total_faults == 3
        assert schedule.occurrence_times == (4, 9, 16)
        assert schedule.intervals == (5, 7)
        assert schedule.faults_before(3) == 0
        assert schedule.faults_before(4) == 1
        assert schedule.faults_before(100) == 3

    def test_faulty_set_evolves(self):
        schedule = dynamic_schedule([(1, 1), (2, 2)], start_time=2, interval=4)
        assert schedule.faulty_set_at(1) == set()
        assert schedule.faulty_set_at(2) == {(1, 1)}
        assert schedule.faulty_set_at(6) == {(1, 1), (2, 2)}

    def test_recovery_restores_node(self):
        schedule = DynamicFaultSchedule(
            events=[FaultEvent(3, (1, 1), FaultEventKind.RECOVERY)],
            initial_faults={(1, 1)},
        )
        assert schedule.faulty_set_at(2) == {(1, 1)}
        assert schedule.faulty_set_at(3) == set()

    def test_double_fault_rejected(self):
        with pytest.raises(ValueError):
            DynamicFaultSchedule(
                events=[FaultEvent(1, (1, 1)), FaultEvent(2, (1, 1))]
            )

    def test_recovery_of_healthy_node_rejected(self):
        with pytest.raises(ValueError):
            DynamicFaultSchedule(
                events=[FaultEvent(1, (1, 1), FaultEventKind.RECOVERY)]
            )

    def test_events_at_and_timeline(self):
        schedule = dynamic_schedule([(1, 1), (2, 2)], start_time=0, interval=3)
        assert [e.node for e in schedule.events_at(3)] == [(2, 2)]
        timeline = list(schedule.timeline())
        assert timeline[0][0] == 0
        assert timeline[-1][1] == {(1, 1), (2, 2)}

    def test_with_event_appends(self):
        schedule = DynamicFaultSchedule.static([(1, 1)])
        extended = schedule.with_event(FaultEvent(5, (2, 2)))
        assert extended.total_faults == 1
        assert schedule.total_faults == 0  # original untouched

    def test_all_nodes_ever_faulty(self):
        schedule = dynamic_schedule([(2, 2)], initial=[(1, 1)])
        assert schedule.all_nodes_ever_faulty() == {(1, 1), (2, 2)}

    def test_len_and_iter(self):
        schedule = dynamic_schedule([(1, 1), (2, 2)])
        assert len(schedule) == 2
        assert all(isinstance(e, FaultEvent) for e in schedule)


class TestUniformRandomFaults:
    def test_count_and_interior(self, mesh3d, rng):
        faults = uniform_random_faults(mesh3d, 20, rng)
        assert len(faults) == len(set(faults)) == 20
        for fault in faults:
            assert not mesh3d.on_outmost_surface(fault)

    def test_respects_exclusion(self, mesh2d, rng):
        exclude = [(4, 4), (5, 5)]
        faults = uniform_random_faults(mesh2d, 30, rng, exclude=exclude)
        assert not set(faults) & set(exclude)

    def test_too_many_faults_raises(self, rng):
        mesh = Mesh.cube(4, 2)
        with pytest.raises(FaultInjectionError):
            uniform_random_faults(mesh, 100, rng)

    def test_negative_count_raises(self, mesh2d, rng):
        with pytest.raises(ValueError):
            uniform_random_faults(mesh2d, -1, rng)


class TestClusteredFaults:
    def test_cluster_is_tight(self, mesh3d, rng):
        faults = clustered_faults(mesh3d, 6, rng, spread=2, seed_node=(5, 5, 5))
        region = Region.from_points(faults)
        assert region.max_edge <= 4
        for fault in faults:
            assert not mesh3d.on_outmost_surface(fault)

    def test_impossible_cluster_raises(self, mesh2d, rng):
        with pytest.raises(FaultInjectionError):
            clustered_faults(mesh2d, 100, rng, spread=1, seed_node=(5, 5))


class TestBlockSeedFaults:
    def test_corners_always_included(self, mesh3d, rng):
        extent = Region((3, 3, 3), (5, 5, 5))
        faults = block_seed_faults(mesh3d, extent, rng, density=0.3)
        assert set(extent.corner_points()) <= set(faults)
        assert all(extent.contains(f) for f in faults)

    def test_rejects_surface_touching_extent(self, mesh3d, rng):
        with pytest.raises(FaultInjectionError):
            block_seed_faults(mesh3d, Region((0, 3, 3), (2, 5, 5)), rng)

    def test_rejects_bad_density(self, mesh3d, rng):
        with pytest.raises(ValueError):
            block_seed_faults(mesh3d, Region((3, 3, 3), (4, 4, 4)), rng, density=0.0)


class TestScheduleBuilders:
    def test_dynamic_schedule_interval_list_too_short(self):
        with pytest.raises(ValueError):
            dynamic_schedule([(1, 1), (2, 2), (3, 3)], interval=[5])

    def test_dynamic_schedule_negative_interval(self):
        with pytest.raises(ValueError):
            dynamic_schedule([(1, 1), (2, 2)], interval=-1)

    def test_recovery_schedule(self):
        schedule = recovery_schedule(
            [(1, 1), (2, 2)], initial=[(1, 1), (2, 2), (3, 3)], interval=5
        )
        assert len(schedule.recovery_events) == 2
        assert schedule.faulty_set_at(100) == {(3, 3)}

    def test_recovery_schedule_requires_initial_fault(self):
        with pytest.raises(FaultInjectionError):
            recovery_schedule([(9, 9)], initial=[(1, 1)])
