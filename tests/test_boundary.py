"""Unit tests for boundary construction (Definition 3, Figure 3)."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.boundary import (
    BoundaryProtocol,
    boundary_start_nodes,
    compute_boundaries,
    dangerous_prism,
    opposite_prism,
)
from repro.core.faulty_block import FaultyBlock
from repro.core.state import InformationState
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.workloads.scenarios import (
    FIGURE1_EXTENT,
    FIGURE1_FAULTS,
    two_block_scenario,
)


@pytest.fixture
def figure1_block() -> FaultyBlock:
    return FaultyBlock(FIGURE1_EXTENT)


class TestPrismHelpers:
    def test_dangerous_and_opposite_prisms(self, mesh3d):
        prism = dangerous_prism(FIGURE1_EXTENT, mesh3d, dim=1, side=-1)
        target = opposite_prism(FIGURE1_EXTENT, mesh3d, dim=1, side=-1)
        assert prism == Region((3, 0, 3), (5, 4, 4))
        assert target == Region((3, 7, 3), (5, 9, 4))


class TestBoundaryStartNodes:
    def test_2d_start_nodes_are_surface_ends(self, mesh2d):
        block = FaultyBlock(Region((4, 4), (6, 5)))
        starts = boundary_start_nodes(block, mesh2d, dim=1, dangerous_side=-1)
        # The adjacent surface below the block is y=3, x in 4..6; its edge
        # nodes (one hop outside the x-span) are (3,3) and (7,3).
        assert sorted(starts) == [(3, 3), (7, 3)]

    def test_3d_start_nodes_exclude_corners(self, mesh3d, figure1_block):
        starts = boundary_start_nodes(figure1_block, mesh3d, dim=1, dangerous_side=-1)
        # Edges of S1 (y=4): x in {2,6} with z in 3..4, plus z in {2,5} with
        # x in 3..5 — and never the corners like (2,4,2).
        assert (2, 4, 3) in starts
        assert (6, 4, 4) in starts
        assert (4, 4, 2) in starts
        assert (2, 4, 2) not in starts
        # x in {2,6} with z spanning 3..4 (4 nodes) plus z in {2,5} with x
        # spanning 3..5 (6 nodes).
        assert len(starts) == 2 * 2 + 2 * 3

    def test_start_nodes_empty_when_no_room(self, mesh2d):
        block = FaultyBlock(Region((0, 4), (1, 5)))
        assert boundary_start_nodes(block, mesh2d, dim=0, dangerous_side=-1) == []

    def test_invalid_side_rejected(self, mesh2d):
        block = FaultyBlock(Region((4, 4), (5, 5)))
        with pytest.raises(ValueError):
            boundary_start_nodes(block, mesh2d, dim=0, dangerous_side=0)


class TestComputeBoundaries:
    def test_2d_boundary_columns(self, mesh2d):
        """In 2-D the boundary for +Y destinations is the two columns beside
        the block extending towards y = 0 (Figure 3(a) analogue)."""
        block = FaultyBlock(Region((4, 4), (6, 5)))
        informed = compute_boundaries(mesh2d, [block])
        records = {
            node: {(b.dim, b.dangerous_side) for b in infos}
            for node, infos in informed.items()
        }
        # Column x=3 and x=7 below the block carry the (dim=1, side=-1) info.
        for y in range(0, 4):
            assert (1, -1) in records[(3, y)]
            assert (1, -1) in records[(7, y)]
        # Nodes inside the dangerous prism itself do not (the boundary
        # encloses the area; it is not the area).
        assert (5, 2) not in records

    def test_boundary_reaches_mesh_surface(self, mesh3d, figure1_block):
        informed = compute_boundaries(mesh3d, [figure1_block])
        # The -Y propagation walks all the way down to y = 0.
        assert any(node[1] == 0 for node in informed)

    def test_boundary_respects_all_dimensions(self, mesh3d, figure1_block):
        informed = compute_boundaries(mesh3d, [figure1_block])
        dims = {b.dim for infos in informed.values() for b in infos}
        sides = {b.dangerous_side for infos in informed.values() for b in infos}
        assert dims == {0, 1, 2}
        assert sides == {-1, +1}

    def test_boundary_nodes_hold_block_extent(self, mesh3d, figure1_block):
        informed = compute_boundaries(mesh3d, [figure1_block])
        for infos in informed.values():
            for info in infos:
                assert info.extent == FIGURE1_EXTENT

    def test_two_block_merge(self):
        """Figure 3(d): the boundary of block A merges into block B's boundary."""
        scenario = two_block_scenario()
        mesh = scenario.mesh
        result = build_blocks(mesh, scenario.schedule.initial_faults)
        blocks = {b.extent: b for b in result.blocks}
        block_a = blocks[scenario.expected_extents[0]]  # upper block
        informed = compute_boundaries(mesh, [block_a])
        # Block A's -Y propagation runs into block B (y span 2..3, same x/z
        # span); its information must appear beyond B (y < 2) on B's
        # boundary columns, i.e. the propagation continued past the second
        # block rather than silently stopping.
        beyond = [
            node
            for node, infos in informed.items()
            if node[1] < 2 and any(i.extent == block_a.extent for i in infos)
        ]
        assert beyond, "block A's boundary should continue beyond block B"
        # And B's adjacent surface facing A holds A's info as well.
        facing = [
            node
            for node, infos in informed.items()
            if node[1] == 4 and any(i.extent == block_a.extent for i in infos)
        ]
        assert facing


class TestBoundaryProtocol:
    def test_round_counting(self, mesh3d, figure1_block):
        info = InformationState(
            mesh=mesh3d,
            labeling=build_blocks(mesh3d, FIGURE1_FAULTS).state,
        )
        protocol = BoundaryProtocol(info)
        protocol.seed_block(figure1_block)
        rounds = protocol.run()
        assert protocol.done
        # The longest run from a block face to the mesh surface is 6 hops
        # (e.g. from y=4 down to y=0 is 5, from x=6 up to x=9 is 4 ...); the
        # propagation must finish within the mesh diameter.
        assert 0 < rounds <= mesh3d.diameter

    def test_rounds_grow_with_distance_to_surface(self):
        """c_i depends on where the block sits relative to the mesh surface."""
        mesh = Mesh.cube(16, 2)

        def boundary_rounds(extent):
            faults = list(extent.iter_points())
            labeling = build_blocks(mesh, faults).state
            info = InformationState(mesh=mesh, labeling=labeling)
            protocol = BoundaryProtocol(info)
            protocol.seed_block(FaultyBlock(extent))
            return protocol.run()

        near_corner = boundary_rounds(Region((2, 2), (3, 3)))
        centre = boundary_rounds(Region((7, 7), (8, 8)))
        assert near_corner > centre

    def test_seeding_single_boundary(self, mesh2d):
        block = FaultyBlock(Region((4, 4), (5, 5)))
        labeling = build_blocks(mesh2d, list(block.extent.iter_points())).state
        info = InformationState(mesh=mesh2d, labeling=labeling)
        protocol = BoundaryProtocol(info)
        protocol.seed_boundary(block, dim=0, dangerous_side=+1)
        protocol.run()
        dims = {b.dim for infos in protocol.informed.values() for b in infos}
        sides = {b.dangerous_side for infos in protocol.informed.values() for b in infos}
        assert dims == {0}
        assert sides == {+1}

    def test_state_receives_records(self, mesh2d):
        block = FaultyBlock(Region((4, 4), (5, 5)))
        labeling = build_blocks(mesh2d, list(block.extent.iter_points())).state
        info = InformationState(mesh=mesh2d, labeling=labeling)
        protocol = BoundaryProtocol(info)
        protocol.seed_block(block)
        protocol.run()
        assert info.information_cells() > 0
        for node, infos in protocol.informed.items():
            assert info.boundaries_at(node) >= frozenset(infos)
