"""Backend selection and validation (repro.backend + the CLI ``--backend``)."""

import os

import pytest

from repro.backend import (
    ENV_VAR,
    SCALAR,
    VECTOR,
    available_backends,
    default_backend,
    resolve_backend,
)
from repro.cli import main


class TestResolution:
    def test_available_backends(self):
        assert available_backends() == (VECTOR, SCALAR)

    def test_default_is_vector(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_backend() == VECTOR
        assert resolve_backend(None) == VECTOR

    def test_env_var_selects(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, SCALAR)
        assert default_backend() == SCALAR
        # An explicit argument still wins over the environment.
        assert resolve_backend(VECTOR) == VECTOR

    def test_explicit_names_normalized(self):
        assert resolve_backend("VECTOR") == VECTOR
        assert resolve_backend("  Scalar ") == SCALAR

    def test_env_value_normalized(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, " Vector\n")
        assert default_backend() == VECTOR

    def test_env_typo_raises_with_menu(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "vectro")
        with pytest.raises(ValueError) as excinfo:
            default_backend()
        message = str(excinfo.value)
        assert ENV_VAR in message
        assert VECTOR in message and SCALAR in message

    def test_explicit_typo_raises_with_menu(self):
        with pytest.raises(ValueError) as excinfo:
            resolve_backend("numpy")
        message = str(excinfo.value)
        assert VECTOR in message and SCALAR in message


class TestCliBackendFlag:
    SIMULATE = [
        "simulate", "--shape", "6,6", "--faults", "2", "--messages", "3",
        "--interval", "5",
    ]

    def test_simulate_accepts_backend(self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_VAR, VECTOR)
        assert main(self.SIMULATE + ["--backend", "scalar"]) == 0
        assert os.environ[ENV_VAR] == SCALAR
        assert "delivery_rate" in capsys.readouterr().out

    def test_simulate_rejects_unknown_backend(self, capsys):
        with pytest.raises(SystemExit):
            main(self.SIMULATE + ["--backend", "bogus"])
        assert "invalid choice" in capsys.readouterr().err

    def test_backend_not_exported_unless_given(self, capsys, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert main(self.SIMULATE) == 0
        assert ENV_VAR not in os.environ
        capsys.readouterr()

    @pytest.mark.parametrize("backend", [VECTOR, SCALAR])
    def test_sweep_backend_produces_identical_json(self, backend, capsys, monkeypatch):
        """--backend must never change results, only the implementation."""
        monkeypatch.setenv(ENV_VAR, VECTOR)
        args = [
            "sweep", "--shape", "6,6", "--faults", "2", "--messages", "3",
            "--seeds", "0", "--policies", "limited-global",
        ]
        assert main(args + ["--backend", backend]) == 0
        if not hasattr(self, "_reference_json"):
            type(self)._reference_json = capsys.readouterr().out
        else:
            assert capsys.readouterr().out == self._reference_json

    def test_throughput_accepts_backend(self, capsys, monkeypatch):
        monkeypatch.setenv(ENV_VAR, VECTOR)
        args = [
            "throughput", "--shape", "6,6", "--policy", "limited-global",
            "--rates", "0.01", "--faults", "2",
            "--warmup", "8", "--measure", "24", "--drain", "60",
            "--backend", "scalar",
        ]
        assert main(args) == 0
        assert os.environ[ENV_VAR] == SCALAR
        assert "policy limited-global" in capsys.readouterr().out
