"""Edge-case coverage: rectangular meshes, 4-D constructions, mixed dynamics."""

import pytest

from repro.core.block_construction import build_blocks
from repro.core.distribution import converged_information, distribute_information_with_report
from repro.core.routing import RouteOutcome, route_offline
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.traffic import TrafficMessage


class TestRectangularMeshes:
    """The model does not require a uniform radix."""

    def test_block_and_routing_in_rectangular_mesh(self):
        mesh = Mesh((6, 12, 4))
        faults = [(3, 6, 2), (2, 5, 2)]
        result = build_blocks(mesh, faults)
        assert all(b.is_rectangular for b in result.blocks)
        info = converged_information(mesh, faults)
        route = route_offline(info, (0, 0, 0), (5, 11, 3))
        assert route.delivered

    def test_distribution_in_flat_mesh(self):
        mesh = Mesh((20, 4))
        faults = [(10, 2), (11, 1)]
        labeling = build_blocks(mesh, faults).state
        info, report = distribute_information_with_report(mesh, labeling)
        assert report.identification_rounds > 0
        assert info.information_cells() > 0


class TestFourDimensions:
    def test_full_pipeline_in_4d(self, mesh4d):
        extent = Region((2, 2, 2, 2), (3, 3, 3, 3))
        faults = list(extent.iter_points())
        result = build_blocks(mesh4d, faults)
        assert [b.extent for b in result.blocks] == [extent]
        block = result.blocks[0]
        # 2^4 corners, 2n = 8 adjacent surfaces.
        assert len(block.corners(mesh4d)) == 16
        assert len(block.adjacent_surfaces(mesh4d)) == 8
        info = converged_information(mesh4d, faults)
        route = route_offline(info, (0, 0, 0, 0), (5, 5, 5, 5))
        assert route.delivered

    def test_4d_safe_route_is_minimal(self, mesh4d):
        faults = [(2, 2, 2, 2), (3, 3, 2, 2)]
        info = converged_information(mesh4d, faults)
        route = route_offline(info, (4, 4, 4, 4), (5, 5, 5, 5))
        assert route.delivered and route.detours == 0


class TestMixedDynamics:
    def test_fault_and_recovery_in_same_run(self, mesh2d):
        schedule = DynamicFaultSchedule(
            events=[
                FaultEvent(2, (5, 5), FaultEventKind.FAULT),
                FaultEvent(2, (6, 6), FaultEventKind.FAULT),
                FaultEvent(20, (5, 5), FaultEventKind.RECOVERY),
            ],
        )
        traffic = [
            TrafficMessage(source=(0, 0), destination=(9, 9), start_time=0),
            TrafficMessage(source=(9, 0), destination=(0, 9), start_time=25),
        ]
        result = Simulator(
            mesh2d, schedule=schedule, traffic=traffic, config=SimulationConfig(lam=4)
        ).run()
        assert result.stats.delivery_rate == 1.0
        # Three fault changes tracked (two faults + one recovery).
        assert len(result.stats.convergence) == 3

    def test_simultaneous_faults_one_convergence_each(self, mesh3d):
        schedule = DynamicFaultSchedule(
            events=[
                FaultEvent(3, (4, 4, 4), FaultEventKind.FAULT),
                FaultEvent(3, (4, 5, 5), FaultEventKind.FAULT),
            ]
        )
        result = Simulator(
            mesh3d, schedule=schedule, config=SimulationConfig(lam=4)
        ).run()
        assert len(result.stats.convergence) == 2
        assert all(r.stabilized_step is not None for r in result.stats.convergence)

    def test_destination_becomes_faulty_mid_route(self, mesh2d):
        schedule = DynamicFaultSchedule(
            events=[FaultEvent(4, (9, 9), FaultEventKind.FAULT)]
        )
        traffic = [TrafficMessage(source=(0, 0), destination=(9, 9), start_time=0)]
        result = Simulator(
            mesh2d,
            schedule=schedule,
            traffic=traffic,
            config=SimulationConfig(lam=2, max_probe_lifetime=200),
        ).run()
        record = result.stats.messages[0]
        # The probe cannot be delivered to a faulty destination; it must
        # terminate (unreachable or exhausted), not loop forever.
        assert record.result.outcome is not RouteOutcome.DELIVERED
        assert result.steps < 400
