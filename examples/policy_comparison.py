#!/usr/bin/env python
"""Comparing routing policies over randomized fault configurations.

For increasing fault counts in 2-D and 3-D meshes, routes the same batch of
random far-apart messages under four policies — limited-global (the paper),
the information-free PCS baseline, static faulty-block routing (block info
at adjacent nodes only, Wu ICPP 2000) and the global-information ideal — and
prints the mean-detour table.  This is the offline (stabilized-information)
counterpart of the dynamic experiment in ``dynamic_fault_routing.py``.

The sweep is expressed as one declarative :class:`ExperimentSpec` per mesh
and executed through :func:`repro.experiments.run_batch`; every policy
column of a row shares the same fault layout and traffic by construction.
The same tables can be produced from the command line::

    repro-mesh sweep --mode offline --shape 16,16 --faults 4,8,16,24 \
        --policies limited-global,static-block,no-information,global-information

Run with::

    python examples/policy_comparison.py
"""

from repro.experiments import ExperimentSpec, run_batch

POLICIES = ("limited-global", "static-block", "no-information", "global-information")


def run_sweep(n_dims: int, radix: int, fault_counts, *, messages: int = 24, workers: int = 1) -> None:
    spec = ExperimentSpec(
        name=f"policy-comparison-{n_dims}d",
        mode="offline",
        mesh_shapes=(tuple([radix] * n_dims),),
        policies=POLICIES,
        fault_counts=tuple(fault_counts),
        traffic_sizes=(messages,),
    )
    batch = run_batch(spec, workers=workers)
    detours = batch.pivot("mean_detours", rows="faults")
    delivery = batch.pivot("delivery_rate", rows="faults")

    print(f"\n=== {radix}^{n_dims} mesh, {messages} random messages per row ===")
    header = f"{'faults':>7} | " + " | ".join(f"{p:>19}" for p in POLICIES)
    print(header)
    print("-" * len(header))
    for count in spec.fault_counts:
        cells = " | ".join(
            f"{detours[count][p]:>8.2f} ({delivery[count][p] * 100:>5.1f}%)"
            for p in POLICIES
        )
        print(f"{count:>7} | {cells}")
    print("(cells: mean detours and delivery rate)")


def main() -> None:
    run_sweep(2, 16, (4, 8, 16, 24))
    run_sweep(3, 10, (4, 8, 16))


if __name__ == "__main__":
    main()
