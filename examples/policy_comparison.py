#!/usr/bin/env python
"""Comparing routing policies over randomized fault configurations.

For increasing fault counts in 2-D and 3-D meshes, routes the same batch of
random far-apart messages under four policies — limited-global (the paper),
the information-free PCS baseline, static faulty-block routing (block info
at adjacent nodes only, Wu ICPP 2000) and the global-information ideal — and
prints the mean-detour table.  This is the offline (stabilized-information)
counterpart of the dynamic experiment in ``dynamic_fault_routing.py``.

Run with::

    python examples/policy_comparison.py
"""

import numpy as np

from repro.analysis.metrics import compare_policies
from repro.core.block_construction import build_blocks
from repro.faults.injection import clustered_faults, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.workloads.traffic import random_pairs

POLICIES = ("limited-global", "static-block", "no-information", "global-information")


def run_sweep(n_dims: int, radix: int, fault_counts, *, messages: int = 24) -> None:
    print(f"\n=== {radix}^{n_dims} mesh, {messages} random messages per row ===")
    header = f"{'faults':>7} | " + " | ".join(f"{p:>19}" for p in POLICIES)
    print(header)
    print("-" * len(header))
    for count in fault_counts:
        rng = np.random.default_rng(100 + count)
        mesh = Mesh.cube(radix, n_dims)
        # Half the faults clustered (producing a sizable block), half spread.
        faults = clustered_faults(mesh, count // 2, rng, spread=2)
        faults += uniform_random_faults(mesh, count - count // 2, rng, exclude=faults)
        labeling = build_blocks(mesh, faults).state
        pairs = random_pairs(
            mesh,
            messages,
            rng,
            min_distance=mesh.diameter // 2,
            exclude=list(labeling.block_nodes),
        )
        comparison = compare_policies(mesh, labeling, pairs)
        detours = comparison.row("mean_detours")
        delivery = comparison.row("delivery_rate")
        cells = " | ".join(
            f"{detours[p]:>8.2f} ({delivery[p] * 100:>5.1f}%)" for p in POLICIES
        )
        print(f"{count:>7} | {cells}")
    print("(cells: mean detours and delivery rate)")


def main() -> None:
    run_sweep(2, 16, (4, 8, 16, 24))
    run_sweep(3, 10, (4, 8, 16))


if __name__ == "__main__":
    main()
