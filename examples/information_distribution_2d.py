#!/usr/bin/env python
"""Visualizing the limited-global information model in a 2-D mesh.

Shows, as ASCII maps, (1) the faulty blocks produced by the labeling scheme,
(2) which nodes end up holding block/boundary information, and (3) the path
a probe takes with and without that information.  Also prints the memory
footprint comparison against a per-node global fault table.

Run with::

    python examples/information_distribution_2d.py
"""

import numpy as np

from repro import Mesh, RoutingPolicy, build_blocks, route_offline
from repro.analysis.metrics import memory_footprint_row
from repro.core.distribution import distribute_information
from repro.core.state import InformationState
from repro.viz import render_information, render_labeling, render_route


def main() -> None:
    mesh = Mesh.cube(14, 2)
    rng = np.random.default_rng(5)
    # Two clusters of faults producing two separate blocks.
    faults = [(4, 7), (5, 8), (5, 6), (10, 3), (11, 4)]
    result = build_blocks(mesh, faults)
    info = distribute_information(mesh, result.state)

    print("node statuses (F faulty, D disabled, . enabled):\n")
    print(render_labeling(mesh, result.state))

    print("\nwhere information is held (b block record, + boundary record):\n")
    print(render_information(info))

    source, destination = (0, 0), (13, 13)
    informed = route_offline(info, source, destination)
    print(
        f"\nlimited-global route {source} -> {destination}: "
        f"{informed.hops} hops, {informed.detours} detours\n"
    )
    print(render_route(mesh, result.state, informed))

    bare = InformationState(mesh=mesh, labeling=result.state)
    uninformed = route_offline(
        bare, source, destination, policy=RoutingPolicy.no_information()
    )
    print(
        f"\ninformation-free route {source} -> {destination}: "
        f"{uninformed.hops} hops, {uninformed.detours} detours, "
        f"{uninformed.backtrack_hops} backtracks\n"
    )
    print(render_route(mesh, result.state, uninformed))

    print("\nmemory footprint (information cells stored in the whole mesh):")
    row = memory_footprint_row(mesh, result.state)
    print(f"  limited-global model : {int(row['limited_global_cells'])} cells")
    print(f"  global table per node: {int(row['global_table_cells'])} cells")
    print(f"  reduction            : {row['reduction_factor']:.1f}x")


if __name__ == "__main__":
    main()
