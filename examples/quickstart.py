#!/usr/bin/env python
"""Quickstart: the paper's Figure-1 configuration, end to end.

Builds the 10x10x10 mesh with the four faults of Figure 1, runs block
construction (Definition 1 / Algorithm 1), identifies the block and
distributes its information along the boundaries (Algorithm 2), then routes
a message with fault-information-based PCS routing (Algorithm 3) and
contrasts it with the information-free baseline.

Run with::

    python examples/quickstart.py
"""

from repro import Mesh, build_blocks, route_offline
from repro.baselines import route_no_information
from repro.core.distribution import distribute_information_with_report
from repro.core.state import InformationState


def main() -> None:
    # 1. The Figure-1 configuration: four faults in a 10x10x10 mesh.
    mesh = Mesh.cube(10, 3)
    faults = [(3, 5, 4), (4, 5, 4), (5, 5, 3), (3, 6, 3)]
    print(f"mesh: {mesh}  faults: {faults}")

    # 2. Block construction (Definition 1, Algorithm 1).
    result = build_blocks(mesh, faults)
    block = result.blocks[0]
    print(f"\nblock construction converged in {result.rounds} rounds (a_i)")
    print(f"faulty block: {block}  ({len(block.disabled_nodes)} disabled nodes)")

    # 3. Identification + boundary construction (Algorithm 2).
    info, report = distribute_information_with_report(mesh, result.state)
    print(f"identification rounds (b_i): {report.identification_rounds}")
    print(f"boundary construction rounds (c_i): {report.boundary_rounds}")
    print(
        "nodes holding limited-global information: "
        f"{len(info.nodes_holding_information())} of {mesh.size}"
    )

    # 4. Fault-information-based PCS routing (Algorithm 3).
    source, destination = (0, 4, 4), (4, 7, 4)
    informed = route_offline(info, source, destination)
    print(f"\nrouting {source} -> {destination}")
    print(
        f"  limited-global : {informed.outcome.value}, {informed.hops} hops, "
        f"{informed.detours} detours"
    )

    # 5. The same routing without any fault information.
    bare = InformationState(mesh=mesh, labeling=result.state)
    uninformed = route_no_information(bare, source, destination)
    print(
        f"  no information : {uninformed.outcome.value}, {uninformed.hops} hops, "
        f"{uninformed.detours} detours, {uninformed.backtrack_hops} backtracks"
    )


if __name__ == "__main__":
    main()
