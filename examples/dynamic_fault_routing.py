#!/usr/bin/env python
"""Dynamic faults occurring while messages are in flight (Section 5 model).

Runs the step-synchronous simulator on a 12x12x12 mesh: a batch of messages
between distant random pairs is injected while faults appear one per
interval.  The script reports, per fault change, how many rounds each of the
three constructions needed to re-stabilize (the paper's a_i, b_i, c_i) and,
per message, the detours suffered — demonstrating the paper's claims that
the information converges quickly and routing degrades gracefully.

Run with::

    python examples/dynamic_fault_routing.py
"""

from repro.simulator import SimulationConfig, Simulator
from repro.workloads import random_dynamic_scenario


def run_one(lam: int, dynamic_faults: int, interval: int) -> None:
    scenario = random_dynamic_scenario(
        radix=12,
        n_dims=3,
        dynamic_faults=dynamic_faults,
        interval=interval,
        messages=16,
        seed=42,
    )
    config = SimulationConfig(lam=lam)
    simulator = Simulator(
        scenario.mesh,
        schedule=scenario.schedule,
        traffic=list(scenario.traffic),
        config=config,
    )
    result = simulator.run()
    stats = result.stats

    print(f"\n=== λ={lam}, F={dynamic_faults} dynamic faults, d_i={interval} ===")
    print(f"simulated steps: {stats.steps}")
    print("fault-change convergence (rounds):")
    print(f"  {'fault':>12} {'a_i':>5} {'b_i':>5} {'c_i':>5} {'steps':>6}")
    for record in stats.convergence:
        print(
            f"  {str(record.event.node):>12} {record.labeling_rounds:>5} "
            f"{record.identification_rounds:>5} {record.boundary_rounds:>5} "
            f"{record.steps_to_stabilize(lam):>6}"
        )
    print("routing:")
    print(f"  delivery rate : {stats.delivery_rate:.2f}")
    print(f"  mean hops     : {stats.mean_hops:.1f}")
    print(f"  mean detours  : {stats.mean_detours:.2f}")
    print(f"  max detours   : {stats.max_detours}")


def main() -> None:
    # The paper assumes d_i large enough for information to stabilize between
    # faults; the second run violates it to show routing with inconsistent
    # information, and the third shows the effect of more exchange rounds per
    # step (λ).
    run_one(lam=2, dynamic_faults=6, interval=20)
    run_one(lam=2, dynamic_faults=6, interval=4)
    run_one(lam=6, dynamic_faults=6, interval=4)


if __name__ == "__main__":
    main()
