"""Windowed open-loop measurement: warmup, measure, drain.

The standard three-phase methodology for steady-state throughput numbers:

* **warmup** — traffic is offered but not counted, so the measurement does
  not see the empty-network transient;
* **measure** — every message injected in this window is *measured*;
  accepted throughput and setup latency are computed over exactly these
  messages;
* **drain** — injection stops and the simulator keeps stepping until the
  measured messages have finished (or the drain budget runs out, in which
  case the leftovers count as unfinished — which at overload is precisely
  the signal that the offered rate exceeds the saturation rate).

:func:`measure_open_loop` drives a :class:`~repro.simulator.engine.Simulator`
step by step through the three phases and samples a per-window series of
injected/delivered counts and circuit occupancy from the simulator's
:class:`~repro.simulator.stats.SimulationStats` along the way.
:func:`run_throughput_point` is the self-contained entry the experiment
runner and the saturation search share: mesh + faults + policy + rate in,
:class:`ThroughputResult` out, deterministic in the seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.slo import RecoverySlo, compute_recovery_slo
from repro.core.block_construction import build_blocks
from repro.faults.injection import uniform_random_faults
from repro.faults.schedule import DynamicFaultSchedule
from repro.faults.workload import workload_schedule
from repro.mesh.topology import Mesh
from repro.obs.recorder import StepRecorder
from repro.obs.trace import write_trace
from repro.simulator.engine import SimulationConfig, Simulator
from repro.simulator.stats import percentile
from repro.throughput.injection import OpenLoopSource, make_injection

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class MeasurementWindows:
    """Phase lengths (in simulation steps) of one open-loop measurement."""

    warmup: int = 64
    measure: int = 256
    drain: int = 512
    #: Length of the occupancy-series sampling sub-windows.
    sample_every: int = 32

    def __post_init__(self) -> None:
        if self.warmup < 0 or self.measure < 1 or self.drain < 0:
            raise ValueError("warmup/drain must be >= 0 and measure >= 1")
        if self.sample_every < 1:
            raise ValueError("sample_every must be at least 1")

    @property
    def injection_stop(self) -> int:
        """First step with no injection (end of the measurement phase)."""
        return self.warmup + self.measure

    @property
    def horizon(self) -> int:
        """Hard step budget for the whole measurement."""
        return self.warmup + self.measure + self.drain


@dataclass(frozen=True)
class WindowSample:
    """One occupancy-series sample (a ``sample_every``-step sub-window)."""

    start_step: int
    injected: int
    finished: int
    delivered: int
    mean_reserved_links: float


@dataclass(frozen=True)
class ThroughputResult:
    """Steady-state numbers of one open-loop run at one offered rate."""

    policy: str
    pattern: str
    rate: float

    #: Messages generated during the window; how many of them delivered;
    #: failed setup *attempts* (an attempt is terminal only when the source
    #: does not retry); messages still undelivered at the horizon (queued,
    #: in flight, or awaiting a retry that never got to run).
    injected: int
    delivered: int
    failed: int
    unfinished: int

    #: Mean messages offered per (non-faulty) node per step: injections
    #: during the measurement window, normalized by window x nodes.
    offered_load: float

    #: Mean messages accepted per node per step: deliveries *occurring*
    #: during the measurement window (whatever their injection step),
    #: normalized the same way.  At steady state this equals the delivered
    #: fraction of the offered load; past saturation it flattens at the
    #: network's service rate instead of growing with the drained backlog.
    accepted_throughput: float

    #: Setup latency (steps from injection to delivery) over the delivered
    #: measured messages.
    mean_setup_latency: float
    p99_setup_latency: float

    #: Per-sub-window series over the measurement phase.
    samples: Tuple[WindowSample, ...]

    #: Steps actually simulated (includes the drain).
    steps: int

    #: Dynamic fault events fired during the run and the circuits they
    #: dropped mid-transfer (0/0 for a static fault layout).
    fault_events: int = 0
    fault_dropped: int = 0

    #: Per-event recovery SLOs (:class:`~repro.analysis.slo.RecoverySlo`);
    #: ``None`` when the run had no dynamic fault events.
    slo: Optional[RecoverySlo] = None

    @property
    def delivery_rate(self) -> float:
        """Delivered fraction of the measured messages (1.0 when none)."""
        if not self.injected:
            return 1.0
        return self.delivered / self.injected

    def to_row(self) -> Dict[str, float]:
        """Flat metric dictionary (one experiment-cell row)."""
        row = {
            "rate": self.rate,
            "injected": float(self.injected),
            "delivered": float(self.delivered),
            "failed": float(self.failed),
            "unfinished": float(self.unfinished),
            "delivery_rate": self.delivery_rate,
            "offered_load": self.offered_load,
            "accepted_throughput": self.accepted_throughput,
            "mean_setup_latency": self.mean_setup_latency,
            "p99_setup_latency": self.p99_setup_latency,
            "steps": float(self.steps),
        }
        if self.fault_events:
            row["fault_events"] = float(self.fault_events)
            row["fault_dropped"] = float(self.fault_dropped)
            if self.slo is not None:
                row["slo_dip_depth"] = self.slo.dip_depth
                row["slo_time_to_recover"] = float(self.slo.time_to_recover)
                row["slo_p99_excursion"] = self.slo.p99_excursion
        return row


def _window_samples(
    recorder: StepRecorder, windows: MeasurementWindows
) -> List[WindowSample]:
    """Slice the recorder's cumulative columns into measurement sub-windows.

    Sub-windows cover exactly the measurement phase — boundaries at the
    warmup end, every ``sample_every`` steps after it, and the injection
    stop — and each sample is the first difference of the cumulative
    injected/finished/delivered/link-step columns across its window, so the
    numbers are identical to the historic inline mark-and-diff sampling.
    """
    bounds = [windows.warmup]
    boundary = windows.warmup + windows.sample_every
    while boundary < windows.injection_stop:
        bounds.append(boundary)
        boundary += windows.sample_every
    bounds.append(windows.injection_stop)

    cum = recorder.cumulative_at
    samples: List[WindowSample] = []
    for a, b in zip(bounds, bounds[1:]):
        samples.append(
            WindowSample(
                start_step=a,
                injected=cum("injected_total", b) - cum("injected_total", a),
                finished=cum("finished_total", b) - cum("finished_total", a),
                delivered=cum("delivered_total", b) - cum("delivered_total", a),
                mean_reserved_links=(
                    cum("link_steps_total", b) - cum("link_steps_total", a)
                )
                / (b - a),
            )
        )
    return samples


def measure_open_loop(
    mesh: Mesh,
    source: OpenLoopSource,
    *,
    schedule: Optional[DynamicFaultSchedule] = None,
    config: Optional[SimulationConfig] = None,
    windows: Optional[MeasurementWindows] = None,
    recorder: Optional[StepRecorder] = None,
    trace_out: Optional[str] = None,
) -> ThroughputResult:
    """Run the three-phase open-loop measurement and aggregate the window.

    ``source.stop`` is forced to the end of the measurement phase; the
    simulator then drains until every measured message finished or the
    drain budget is exhausted.  The per-window occupancy series is sliced
    from a :class:`~repro.obs.recorder.StepRecorder` attached to the
    simulator (pass ``recorder`` to keep it — e.g. for a trace export, or
    ``trace_out`` to write the JSONL trace, fault/recovery events included,
    directly).  A schedule with dynamic fault events additionally yields
    the per-event recovery SLOs on the result.
    """
    windows = windows or MeasurementWindows()
    config = config or SimulationConfig(contention=True)
    source.stop = windows.injection_stop
    if recorder is None:
        recorder = StepRecorder(capacity=windows.horizon)
    sim = Simulator(
        mesh, schedule=schedule, traffic=source, config=config, recorder=recorder
    )

    while sim.current_step < windows.horizon:
        if sim.current_step >= windows.injection_stop and sim.in_flight == 0:
            break  # drained: every injected message finished
        sim.step()

    if trace_out is not None:
        write_trace(trace_out, sim, recorder)

    samples = _window_samples(recorder, windows)

    lo, hi = windows.warmup, windows.injection_stop

    def created(message) -> int:
        return (
            message.created_time
            if message.created_time is not None
            else message.start_time
        )

    measured = [r for r in sim.stats.messages if lo <= created(r.message) < hi]
    delivered = [r for r in measured if r.delivered]
    failed_attempts = len(measured) - len(delivered)
    delivered_in_window = sum(
        1
        for r in sim.stats.messages
        if r.delivered and r.finish_step is not None and lo <= r.finish_step < hi
    )
    latencies = sim.stats.setup_latencies(delivered)
    active_nodes = len(source.nodes)
    denominator = windows.measure * active_nodes
    generated_measured = source.generated_between(lo, hi)
    terminal_failed = 0 if getattr(source, "retry_failed", False) else failed_attempts

    fault_events = schedule.fault_events if schedule is not None else []
    slo: Optional[RecoverySlo] = None
    if fault_events:
        slo = compute_recovery_slo(
            recorder.deltas("delivered_total").tolist(),
            recorder.deltas("fault_dropped_total").tolist(),
            [(e.time, e.node) for e in fault_events],
            latencies_by_finish=[
                (r.finish_step, float(r.latency_steps))
                for r in sim.stats.messages
                if r.delivered and r.finish_step is not None
            ],
        )

    return ThroughputResult(
        policy=getattr(sim.router, "name", "?"),
        pattern=source.pattern,
        rate=getattr(source.process, "rate", 0.0),
        injected=generated_measured,
        delivered=len(delivered),
        failed=failed_attempts,
        unfinished=generated_measured - len(delivered) - terminal_failed,
        offered_load=generated_measured / denominator if denominator else 0.0,
        accepted_throughput=(
            delivered_in_window / denominator if denominator else 0.0
        ),
        mean_setup_latency=(sum(latencies) / len(latencies)) if latencies else 0.0,
        p99_setup_latency=percentile(latencies, 0.99),
        samples=tuple(samples),
        steps=sim.current_step,
        fault_events=len(fault_events),
        fault_dropped=sim.stats.fault_dropped_circuits,
        slo=slo,
    )


def run_throughput_point(
    shape: Sequence[int],
    policy: str,
    pattern: str,
    rate: float,
    *,
    faults: int = 0,
    lam: int = 2,
    flits: int = 64,
    seed: int = 0,
    injection: str = "bernoulli",
    windows: Optional[MeasurementWindows] = None,
    contention: bool = True,
    batch_by_node: bool = True,
    setup_timeout: Optional[int] = None,
    fault_rate: float = 0.0,
    repair_after: int = 0,
    fault_schedule: Optional[DynamicFaultSchedule] = None,
    trace_out: Optional[str] = None,
) -> ThroughputResult:
    """One self-contained open-loop measurement point.

    Builds the mesh, a *static* pre-stabilized fault set (``faults`` nodes,
    so a steady state exists to measure), the open-loop source and the
    simulator, and runs the windowed measurement.  Everything derives from
    ``seed``; the fault layout and injection stream are policy-independent,
    so per-policy curves measured with the same seed are comparable
    point-for-point.

    Dynamic faults during the measurement come from one of two places, in
    precedence order: an explicit ``fault_schedule`` (its initial faults
    replace the seeded static layout), or ``fault_rate > 0`` — a seeded
    MTBF/MTTR workload (:func:`~repro.faults.workload.mtbf_schedule`) firing
    inside the measurement window on top of the static set, each fault
    repaired ``repair_after`` steps later (0 = permanent).  The workload
    stream is seeded independently of the injection stream and is
    policy-independent, so per-policy runs see identical fault timelines.

    Endpoints exclude every *block* node (faulty or disabled): a setup to a
    disabled node can never deliver, and the source retries failed setups.
    ``setup_timeout`` bounds one setup attempt (default ``diameter + 2``
    steps): a congested-network PCS setup aborts and retries rather than
    wander — a wandering probe holds its whole partial circuit, so long
    budgets make every failure expensive for everyone else, and the offline
    worst-case walk bound would let one stuck probe hold links for the whole
    measurement.
    """
    mesh = Mesh(tuple(shape))
    windows = windows or MeasurementWindows()
    rng = np.random.default_rng(seed)
    fault_nodes = uniform_random_faults(mesh, faults, rng, margin=1)
    if fault_schedule is not None:
        schedule = fault_schedule
        fault_nodes = tuple(sorted(schedule.initial_faults))
    elif fault_rate > 0.0:
        schedule = workload_schedule(
            mesh,
            rate=fault_rate,
            start=windows.warmup,
            stop=windows.injection_stop,
            repair_after=repair_after,
            seed=np.random.default_rng([seed, 0xFA17]),
            initial=fault_nodes,
        )
    else:
        schedule = DynamicFaultSchedule.static(fault_nodes)
    blocked = build_blocks(mesh, fault_nodes).state.block_nodes if fault_nodes else ()
    source = OpenLoopSource(
        mesh,
        make_injection(injection, rate),
        pattern=pattern,
        seed=seed,
        flits=flits,
        exclude=blocked,
    )
    config = SimulationConfig(
        lam=lam,
        router=policy,
        contention=contention,
        batch_by_node=batch_by_node,
        max_probe_lifetime=(
            setup_timeout if setup_timeout is not None else max(8, mesh.diameter + 2)
        ),
        max_steps=10**9,  # the measurement horizon bounds the run
    )
    return measure_open_loop(
        mesh,
        source,
        schedule=schedule,
        config=config,
        windows=windows,
        trace_out=trace_out,
    )
