"""Open-loop throughput and saturation measurement.

The closed-batch experiments replay fixed message lists; this subsystem
offers load at a *rate* and measures what the network sustains:

* :mod:`repro.throughput.injection` — per-node open-loop message sources
  (Bernoulli and bursty on/off processes crossed with uniform / transpose /
  hotspot spatial patterns) feeding the simulator as it runs, via the
  :class:`~repro.simulator.traffic.TrafficSource` protocol;
* :mod:`repro.throughput.measure` — the warmup / measure / drain windowed
  methodology producing steady-state accepted throughput, mean/p99 setup
  latency and a circuit-occupancy series;
* :mod:`repro.throughput.saturation` — per-policy load–latency/throughput
  curves through the experiment grid, plus a binary search for the knee of
  the latency curve (the saturation point).

The ``repro-mesh throughput`` CLI subcommand is a thin veneer over
:func:`load_curves` and :func:`saturation_for_policy`.
"""

from repro.throughput.injection import (
    PATTERNS,
    BernoulliInjection,
    BurstyInjection,
    OpenLoopSource,
    make_injection,
)
from repro.throughput.measure import (
    MeasurementWindows,
    ThroughputResult,
    WindowSample,
    measure_open_loop,
    run_throughput_point,
)
from repro.throughput.saturation import (
    LoadCurve,
    LoadPoint,
    find_saturation,
    load_curves,
    saturation_for_policy,
)

__all__ = [
    "BernoulliInjection",
    "BurstyInjection",
    "LoadCurve",
    "LoadPoint",
    "MeasurementWindows",
    "OpenLoopSource",
    "PATTERNS",
    "ThroughputResult",
    "WindowSample",
    "find_saturation",
    "load_curves",
    "make_injection",
    "measure_open_loop",
    "run_throughput_point",
    "saturation_for_policy",
]
