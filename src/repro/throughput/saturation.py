"""Load–latency curves and the saturation-point search.

Two complementary tools on top of the windowed open-loop measurement:

* :func:`load_curves` sweeps a fixed list of injection rates for every
  policy **through the experiment grid** (:func:`repro.experiments.run_batch`
  with a ``throughput``-mode :class:`~repro.experiments.spec.ExperimentSpec`),
  so curves inherit the runner's determinism contract — serial and
  multi-process sweeps produce byte-identical JSON — and return per-policy
  :class:`LoadCurve` objects;
* :func:`find_saturation` binary-searches the injection rate to the *knee*
  of the latency curve: the largest rate whose mean setup latency stays
  under ``latency_factor`` times the zero-load latency while the network
  still accepts at least ``min_acceptance`` of the offered load.

The conventional definition of saturation throughput is the accepted
throughput at that knee; past it the accepted curve flattens while latency
(and the unfinished backlog) grows without bound.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.throughput.measure import (
    MeasurementWindows,
    ThroughputResult,
    run_throughput_point,
)


@dataclass(frozen=True)
class LoadPoint:
    """One (offered rate, measured outcome) point of a load curve."""

    rate: float
    offered_load: float
    accepted_throughput: float
    mean_setup_latency: float
    p99_setup_latency: float
    delivery_rate: float

    @classmethod
    def from_result(cls, result: ThroughputResult) -> "LoadPoint":
        return cls(
            rate=result.rate,
            offered_load=result.offered_load,
            accepted_throughput=result.accepted_throughput,
            mean_setup_latency=result.mean_setup_latency,
            p99_setup_latency=result.p99_setup_latency,
            delivery_rate=result.delivery_rate,
        )

    @classmethod
    def from_metrics(cls, metrics: Dict[str, float]) -> "LoadPoint":
        """Rebuild a point from an experiment cell's metric row."""
        return cls(
            rate=metrics["rate"],
            offered_load=metrics["offered_load"],
            accepted_throughput=metrics["accepted_throughput"],
            mean_setup_latency=metrics["mean_setup_latency"],
            p99_setup_latency=metrics["p99_setup_latency"],
            delivery_rate=metrics["delivery_rate"],
        )


@dataclass(frozen=True)
class LoadCurve:
    """A policy's load–latency/throughput curve, points by ascending rate."""

    policy: str
    points: Tuple[LoadPoint, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "points", tuple(sorted(self.points, key=lambda p: p.rate))
        )

    @property
    def peak_accepted(self) -> float:
        """Largest accepted throughput along the curve."""
        return max((p.accepted_throughput for p in self.points), default=0.0)

    def knee(
        self, *, latency_factor: float = 3.0, min_acceptance: float = 0.9
    ) -> Optional[LoadPoint]:
        """Last point before saturation, or ``None`` if every point is past it.

        Saturation is detected against the curve's own zero-load latency
        (the first point's mean latency): a point saturates when its mean
        latency exceeds ``latency_factor`` times zero-load, or when accepted
        throughput falls under ``min_acceptance`` of offered.
        """
        if not self.points:
            return None
        zero_load = self.points[0].mean_setup_latency
        knee: Optional[LoadPoint] = None
        for point in self.points:
            if _saturated(point, zero_load, latency_factor, min_acceptance):
                break
            knee = point
        return knee


def _saturated(
    point: LoadPoint,
    zero_load_latency: float,
    latency_factor: float,
    min_acceptance: float,
) -> bool:
    if zero_load_latency > 0 and point.mean_setup_latency > (
        latency_factor * zero_load_latency
    ):
        return True
    if point.offered_load > 0 and (
        point.accepted_throughput < min_acceptance * point.offered_load
    ):
        return True
    return False


def load_curves(
    shape: Sequence[int],
    policies: Sequence[str],
    rates: Sequence[float],
    *,
    pattern: str = "uniform",
    faults: int = 0,
    lam: int = 2,
    flits: int = 64,
    seeds: Sequence[int] = (0,),
    injection: str = "bernoulli",
    windows: Optional[MeasurementWindows] = None,
    workers: int = 1,
    name: str = "throughput",
    fault_rate: float = 0.0,
    repair_after: int = 0,
):
    """Per-policy load curves via the experiment grid.

    Returns ``(batch, curves)``: the raw
    :class:`~repro.experiments.results.BatchResult` (canonical JSON export,
    worker-count independent) and a ``{policy: LoadCurve}`` mapping with
    replicate seeds averaged per rate.  ``fault_rate``/``repair_after``
    switch on the dynamic MTBF fault workload inside every cell's
    measurement window (see :func:`~repro.throughput.measure.run_throughput_point`).
    """
    # Imported here so repro.throughput stays importable without pulling the
    # experiments package in (and to keep the import graph acyclic).
    from repro.analysis.throughput import throughput_rows
    from repro.experiments import ExperimentSpec, run_batch

    windows = windows or MeasurementWindows()
    spec = ExperimentSpec(
        name=name,
        mode="throughput",
        mesh_shapes=(tuple(shape),),
        policies=tuple(policies),
        scenarios=(pattern,),
        fault_counts=(faults,),
        lams=(lam,),
        flits=(flits,),
        rates=tuple(rates),
        seeds=tuple(seeds),
        injection=injection,
        warmup=windows.warmup,
        measure=windows.measure,
        drain=windows.drain,
        fault_rates=(fault_rate,),
        repair_after=repair_after,
    )
    batch = run_batch(spec, workers=workers)
    rows = throughput_rows(batch)  # single source of replicate averaging
    curves: Dict[str, LoadCurve] = {
        policy: LoadCurve(
            policy=policy,
            points=tuple(LoadPoint.from_metrics(row) for row in rows[policy]),
        )
        for policy in policies
    }
    return batch, curves


def find_saturation(
    measure: Callable[[float], ThroughputResult],
    *,
    low: float = 0.005,
    high: float = 0.5,
    iterations: int = 7,
    latency_factor: float = 3.0,
    min_acceptance: float = 0.9,
) -> Tuple[float, List[LoadPoint]]:
    """Binary-search the knee of the latency curve.

    ``measure`` maps an injection rate to a :class:`ThroughputResult` (use a
    :func:`functools.partial` over :func:`run_throughput_point`).  The
    zero-load latency is taken at ``low``; the search then halves the
    bracket ``iterations`` times, keeping rates that are not yet saturated.
    Returns the largest non-saturated rate found and every probed point
    (ascending by rate) for plotting.
    """
    if not 0.0 < low < high:
        raise ValueError("need 0 < low < high")
    baseline = measure(low)
    zero_load = baseline.mean_setup_latency
    probed: List[LoadPoint] = [LoadPoint.from_result(baseline)]
    best = low
    lo, hi = low, high
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        point = LoadPoint.from_result(measure(mid))
        probed.append(point)
        if _saturated(point, zero_load, latency_factor, min_acceptance):
            hi = mid
        else:
            lo = mid
            best = max(best, mid)
    probed.sort(key=lambda p: p.rate)
    return best, probed


def saturation_for_policy(
    shape: Sequence[int],
    policy: str,
    *,
    pattern: str = "uniform",
    faults: int = 0,
    lam: int = 2,
    flits: int = 64,
    seed: int = 0,
    injection: str = "bernoulli",
    windows: Optional[MeasurementWindows] = None,
    low: float = 0.005,
    high: float = 0.5,
    iterations: int = 7,
    latency_factor: float = 3.0,
    min_acceptance: float = 0.9,
    fault_rate: float = 0.0,
    repair_after: int = 0,
) -> Tuple[float, List[LoadPoint]]:
    """Convenience: :func:`find_saturation` over :func:`run_throughput_point`."""

    def measure(rate: float) -> ThroughputResult:
        return run_throughput_point(
            shape,
            policy,
            pattern,
            rate,
            faults=faults,
            lam=lam,
            flits=flits,
            seed=seed,
            injection=injection,
            windows=windows,
            fault_rate=fault_rate,
            repair_after=repair_after,
        )

    return find_saturation(
        measure,
        low=low,
        high=high,
        iterations=iterations,
        latency_factor=latency_factor,
        min_acceptance=min_acceptance,
    )
