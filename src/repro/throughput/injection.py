"""Open-loop message injection: per-node sources feeding the simulator live.

Closed-batch experiments replay a fixed list of messages; an *open-loop*
experiment instead offers load at a fixed **rate** — every node decides at
every step, independently of how the network is doing, whether to inject a
message.  This is the standard interconnection-network methodology for
saturation measurements: because injection never waits for the network,
accepted throughput genuinely saturates once setups cannot keep up.

Two ingredients compose an :class:`OpenLoopSource`:

* an **injection process** deciding *when* each node injects —
  :class:`BernoulliInjection` (memoryless, ``rate`` per node per step) or
  :class:`BurstyInjection` (a two-state on/off Markov process with the same
  mean rate but clustered arrivals);
* a **spatial pattern** deciding *where* each message goes — ``uniform``
  (uniform-random destinations), ``transpose`` (the adversarial coordinate
  reversal) or ``hotspot`` (a fraction of messages target one node), the
  same families as the closed-batch congestion workloads in
  :mod:`repro.workloads.congestion`.

Everything is deterministic in the source's seed: the per-step RNG draws
happen in a fixed order, so two runs with the same seed inject the same
messages at the same steps.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.mesh.topology import Mesh
from repro.simulator.traffic import TrafficMessage

Coord = Tuple[int, ...]

#: Spatial destination patterns an :class:`OpenLoopSource` understands.
PATTERNS = ("uniform", "transpose", "hotspot")


@dataclass(frozen=True)
class BernoulliInjection:
    """Memoryless injection: each node injects with ``rate`` per step."""

    rate: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")

    def injecting(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Boolean mask over ``count`` nodes: who injects this step."""
        return rng.random(count) < self.rate


class BurstyInjection:
    """On/off (two-state Markov) injection with mean rate ``rate``.

    Each node is either ON or OFF.  An ON node injects with probability
    ``rate * burstiness`` per step; an OFF node never injects.  Transition
    probabilities are chosen so the expected ON duration is ``mean_burst``
    steps and the stationary ON fraction is ``1 / burstiness`` — the mean
    offered load equals ``rate``, but arrivals cluster into bursts whose
    setups race for the same links.
    """

    def __init__(
        self, rate: float, *, burstiness: float = 4.0, mean_burst: float = 8.0
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError("rate must be within [0, 1]")
        if burstiness < 1.0:
            raise ValueError("burstiness must be at least 1")
        if mean_burst < 1.0:
            raise ValueError("mean_burst must be at least 1")
        self.rate = rate
        self.burstiness = burstiness
        self.mean_burst = mean_burst
        self.on_rate = min(1.0, rate * burstiness)
        # The ON-state rate saturates at 1, so for rate > 1/burstiness the
        # duty cycle widens instead (rate = on_rate * duty stays exact
        # instead of silently plateauing at 1/burstiness).
        self.duty = rate / self.on_rate if self.on_rate > 0 else 0.0
        self.p_off = 1.0 / mean_burst
        # Stationary ON fraction p_on/(p_on+p_off) == duty.
        self.p_on = (
            self.p_off * self.duty / (1.0 - self.duty) if self.duty < 1.0 else 1.0
        )
        self._state: Optional[np.ndarray] = None

    def injecting(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Boolean mask over ``count`` nodes: who injects this step."""
        if self._state is None or len(self._state) != count:
            # Start in the stationary distribution so the warmup window does
            # not have to absorb an all-OFF transient.
            self._state = rng.random(count) < self.duty
        flips = rng.random(count)
        self._state = np.where(
            self._state, flips >= self.p_off, flips < self.p_on
        )
        return self._state & (rng.random(count) < self.on_rate)


def make_injection(
    kind: str, rate: float, *, burstiness: float = 4.0, mean_burst: float = 8.0
):
    """Build an injection process by name (``"bernoulli"`` or ``"bursty"``)."""
    if kind == "bernoulli":
        return BernoulliInjection(rate)
    if kind == "bursty":
        return BurstyInjection(rate, burstiness=burstiness, mean_burst=mean_burst)
    raise ValueError(f"unknown injection process {kind!r} (bernoulli or bursty)")


class OpenLoopSource:
    """A :class:`~repro.simulator.traffic.TrafficSource` offering load at a rate.

    The simulator polls the source once per step; the source asks its
    injection process which of the non-excluded nodes *generate* a message
    and draws each message's destination from the spatial pattern.

    Each node has **one injection port**: at most one of its messages is in
    setup at a time, and messages generated while the port is busy wait in
    the node's source queue (the simulator reports finished setups back
    through :meth:`message_finished`).  Generation never depends on network
    state — that is what makes the load open-loop — but emission respects
    the port, so latency past saturation grows with the queue instead of the
    network drowning in physically impossible concurrent setups.  Every
    emitted message carries its generation step in ``created_time``, so
    latency accounting includes the queueing delay.

    ``stop`` ends generation (exclusive); queued messages freeze there too,
    and the measurement harness counts them as unfinished backlog.
    """

    def __init__(
        self,
        mesh: Mesh,
        process,
        *,
        pattern: str = "uniform",
        seed: int = 0,
        flits: int = 64,
        stop: Optional[int] = None,
        exclude: Sequence[Coord] = (),
        hotspot: Optional[Coord] = None,
        hotspot_fraction: float = 0.5,
        retry_failed: bool = True,
        retry_backoff: int = 8,
    ) -> None:
        if pattern not in PATTERNS:
            raise ValueError(f"unknown pattern {pattern!r} (choose from {PATTERNS})")
        if pattern == "transpose" and len(set(mesh.shape)) != 1:
            raise ValueError("transpose traffic requires a uniform (cubic) mesh")
        self.mesh = mesh
        self.process = process
        self.pattern = pattern
        self.flits = flits
        self.stop = stop
        self.rng = np.random.default_rng(seed)
        excluded = {tuple(e) for e in exclude}
        #: Nodes that may inject / receive, in mesh enumeration order.
        self.nodes: List[Coord] = [n for n in mesh.nodes() if n not in excluded]
        if len(self.nodes) < 2:
            raise ValueError("need at least two non-excluded nodes")
        self._excluded = excluded
        self.hotspot = self._pick_hotspot(hotspot) if pattern == "hotspot" else None
        if not 0.0 <= hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be within [0, 1]")
        self.hotspot_fraction = hotspot_fraction
        #: Messages generated so far (the offered load; includes queued).
        self.generated = 0
        #: Messages actually emitted into the simulator so far.
        self.injected = 0
        #: Generation steps of every message generated (for the windowed
        #: offered-load accounting).
        self.generation_log: List[int] = []
        #: A setup that failed (exhausted its lifetime, or transiently
        #: unreachable) is re-issued by the source, keeping its original
        #: generation step — the PCS retry model.
        self.retry_failed = retry_failed
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        #: Steps a node's port stays idle before re-issuing a failed setup,
        #: scaled by the attempt count.  All probes decide deterministically,
        #: so two colliding setups retried immediately would collide again
        #: in lockstep forever; attempt-scaled backoff staggers them apart.
        self.retry_backoff = retry_backoff
        #: Per-node FIFO of (created_step, destination, ready_step, attempt)
        #: waiting for the port.
        self._queues: dict = {node: deque() for node in self.nodes}
        #: Nodes whose injection port currently has a setup in flight (the
        #: value is the attempt number of the in-flight setup).
        self._busy: dict = {}

    def _pick_hotspot(self, hotspot: Optional[Coord]) -> Coord:
        if hotspot is not None:
            hot = self.mesh.validate(hotspot)
            if hot in self._excluded:
                raise ValueError(f"hotspot {hot} is excluded (faulty?)")
            return hot
        centre = tuple(s // 2 for s in self.mesh.shape)
        if centre not in self._excluded:
            return centre
        # Fall back to the usable node nearest the centre (deterministic).
        return min(self.nodes, key=lambda n: (self.mesh.distance(n, centre), n))

    # ------------------------------------------------------------------ #
    # TrafficSource protocol
    # ------------------------------------------------------------------ #
    def poll(self, step: int) -> List[TrafficMessage]:
        if self.stop is None or step < self.stop:
            # Generation: open-loop, independent of network state.
            mask = self.process.injecting(self.rng, len(self.nodes))
            for index in np.flatnonzero(mask):
                source = self.nodes[int(index)]
                destination = self._destination(source)
                if destination is None:
                    continue
                self._queues[source].append((step, destination, step, 0))
                self.generated += 1
                self.generation_log.append(step)
        else:
            return []  # generation (and emission) stop together
        # Emission: one message per free injection port (heads still backing
        # off after a failed attempt keep their port idle this step).
        out: List[TrafficMessage] = []
        for node in self.nodes:
            if node in self._busy:
                continue
            queue = self._queues[node]
            if not queue or queue[0][2] > step:
                continue
            created, destination, _ready, attempt = queue.popleft()
            self._busy[node] = attempt
            out.append(
                TrafficMessage(
                    source=node,
                    destination=destination,
                    start_time=step,
                    tag=self.pattern,
                    flits=self.flits,
                    created_time=created,
                )
            )
        self.injected += len(out)
        return out

    def message_finished(self, record) -> None:
        """Simulator feedback: a setup terminated; free the node's port.

        With :attr:`retry_failed`, an undelivered setup goes back to the
        *front* of its node's queue (it is the node's oldest message) and is
        re-issued — unless generation has stopped, in which case it stays in
        the backlog accounting as a frozen queue entry.
        """
        message = record.message
        attempt = self._busy.pop(message.source, 0)
        if self.retry_failed and not record.delivered:
            created = (
                message.created_time
                if message.created_time is not None
                else message.start_time
            )
            finish = record.finish_step if record.finish_step is not None else 0
            ready = finish + 1 + self.retry_backoff * (attempt + 1)
            self._queues[message.source].appendleft(
                (created, message.destination, ready, attempt + 1)
            )

    def exhausted(self, step: int) -> bool:
        return self.stop is not None and step >= self.stop

    @property
    def queued(self) -> int:
        """Messages generated but not yet emitted (source backlog)."""
        return sum(len(q) for q in self._queues.values())

    def queued_created_between(self, lo: int, hi: int) -> int:
        """Backlogged messages generated in ``[lo, hi)``."""
        return sum(
            1 for q in self._queues.values() for entry in q if lo <= entry[0] < hi
        )

    def generated_between(self, lo: int, hi: int) -> int:
        """Messages generated in ``[lo, hi)`` (emitted or still queued)."""
        return sum(1 for created in self.generation_log if lo <= created < hi)

    # ------------------------------------------------------------------ #
    # destinations
    # ------------------------------------------------------------------ #
    def _destination(self, source: Coord) -> Optional[Coord]:
        if self.pattern == "transpose":
            destination = tuple(reversed(source))
            if destination == source or destination in self._excluded:
                return None  # diagonal / faulty partner: nothing to send
            return destination
        if self.pattern == "hotspot" and self.rng.random() < self.hotspot_fraction:
            if source != self.hotspot:
                return self.hotspot
            # The hotspot itself falls through to uniform traffic.
        index = int(self.rng.integers(0, len(self.nodes)))
        if self.nodes[index] == source:
            index = (index + 1) % len(self.nodes)
        return self.nodes[index]
