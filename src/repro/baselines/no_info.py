"""Information-free backtracking PCS routing — thin adapter.

The probe uses only what PCS hardware always has: detection of faults on
adjacent links/nodes and the used-direction lists in its own header.  It is
Algorithm 3 run with an empty information model, registered as the
``"no-information"`` router; this wrapper keeps the historical signature,
which routes against a caller-supplied information provider (whose records,
if any, the policy ignores).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.routing import (
    InformationProvider,
    RouteResult,
    RoutingPolicy,
    route_offline,
)

__all__ = ["route_no_information"]


def route_no_information(
    info: InformationProvider,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    max_steps: Optional[int] = None,
) -> RouteResult:
    """Route with adjacent-fault detection only (no block/boundary records)."""
    return route_offline(
        info,
        source,
        destination,
        policy=RoutingPolicy.no_information(),
        max_steps=max_steps,
    )
