"""Static faulty-block routing (Wu, ICPP 2000) — thin adapter.

The implementation lives in :mod:`repro.routing.static_block`, where it is
registered as the ``"static-block"`` router (offline *and* online); this
module re-exports the historical entry points.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.block_construction import LabelingState
from repro.core.routing import RouteResult
from repro.mesh.topology import Mesh
from repro.routing.static_block import StaticBlockRouter, adjacent_only_information

__all__ = ["adjacent_only_information", "route_static_block"]


def route_static_block(
    mesh: Mesh,
    labeling: LabelingState,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    max_steps: Optional[int] = None,
) -> RouteResult:
    """Route with block information available only next to each block."""
    return StaticBlockRouter().route(
        mesh, labeling, source, destination, max_steps=max_steps
    )
