"""Static faulty-block routing (Wu, ICPP 2000) — the paper's predecessor.

Wu's minimal adaptive routing keeps block information only at the nodes
*adjacent* to a block (and at its corners/edges), with no boundary
propagation.  A probe therefore only learns about a block when it is already
next to it — often after it has entered the dangerous area — and must walk
around the block instead of having been steered away at the boundary.  This
baseline isolates the contribution of boundary propagation: it shares the
labeling, identification and routing machinery with the limited-global model
and differs only in which nodes hold the information.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.core.block_construction import LabelingState, extract_blocks
from repro.core.routing import RouteResult, RoutingPolicy, route_offline
from repro.core.state import BlockRecord, InformationState
from repro.mesh.topology import Mesh


def adjacent_only_information(
    mesh: Mesh, labeling: LabelingState, *, version: int = 0
) -> InformationState:
    """Information state with block records at adjacent-frame nodes only.

    This is exactly what the identification back-propagation produces,
    *without* the subsequent boundary construction.
    """
    info = InformationState(mesh=mesh, labeling=labeling, version=version)
    for block in extract_blocks(labeling):
        record = BlockRecord(extent=block.extent, version=version)
        for node in block.frame_nodes(mesh):
            info.add_block_info(node, record)
    return info


def route_static_block(
    mesh: Mesh,
    labeling: LabelingState,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    max_steps: Optional[int] = None,
) -> RouteResult:
    """Route with block information available only next to each block."""
    info = adjacent_only_information(mesh, labeling)
    policy = RoutingPolicy(name="static-block", use_boundary_info=False)
    return route_offline(info, source, destination, policy=policy, max_steps=max_steps)
