"""Comparison routing algorithms.

The paper argues for limited-global information by contrast with two
extremes and one predecessor:

* **no information** — backtracking PCS with only adjacent-fault detection
  (:mod:`repro.baselines.no_info`): probes discover blocks by running into
  them, so they detour and backtrack far more;
* **global information** — every node knows every fault and a shortest path
  around the faults is always taken (:mod:`repro.baselines.global_info`):
  the unreachable ideal whose memory/update costs the paper's model avoids;
* **static faulty-block routing** (Wu, ICPP 2000 [14]) — block information
  is available only at the nodes adjacent to a block, not along boundaries
  (:mod:`repro.baselines.static_block`): the direct predecessor of the
  limited-global model, which warns probes too late to avoid dangerous
  areas.
"""

from repro.baselines.global_info import GlobalInformationRouter, route_global_information
from repro.baselines.no_info import route_no_information
from repro.baselines.static_block import adjacent_only_information, route_static_block

__all__ = [
    "GlobalInformationRouter",
    "adjacent_only_information",
    "route_global_information",
    "route_no_information",
    "route_static_block",
]
