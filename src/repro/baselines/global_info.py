"""Global-information routing baseline.

Every node is assumed to know the entire fault configuration at all times,
so the router can always follow a shortest path in the fault-free subgraph.
This is the ideal the traditional "routing table at every node" approach
strives for; the paper's model trades a small number of extra detours for
not having to maintain that table.  Two avoidance levels are provided:

* avoiding *faulty* nodes only (the true shortest usable path);
* avoiding whole *blocks* (faulty + disabled nodes), which is what a
  block-based global scheme would do and is the fairer comparison for the
  limited-global model.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.block_construction import LabelingState
from repro.core.routing import RouteOutcome, RouteResult
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


class GlobalInformationRouter:
    """Shortest-path router with full knowledge of the fault configuration."""

    def __init__(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        *,
        avoid_blocks: bool = True,
    ) -> None:
        self.mesh = mesh
        self.labeling = labeling
        self.avoid_blocks = avoid_blocks

    def blocked_nodes(self) -> Set[Coord]:
        """Nodes the router refuses to traverse."""
        if self.avoid_blocks:
            return set(self.labeling.block_nodes)
        return set(self.labeling.faulty_nodes)

    def shortest_path(
        self, source: Sequence[int], destination: Sequence[int]
    ) -> Optional[List[Coord]]:
        """BFS shortest path avoiding the blocked nodes, or ``None``."""
        source = self.mesh.validate(source)
        destination = self.mesh.validate(destination)
        blocked = self.blocked_nodes()
        if source in blocked or destination in blocked:
            return None
        if source == destination:
            return [source]
        parents: Dict[Coord, Coord] = {}
        seen: Set[Coord] = {source}
        frontier = deque([source])
        while frontier:
            node = frontier.popleft()
            for neighbor in self.mesh.neighbors(node):
                if neighbor in seen or neighbor in blocked:
                    continue
                parents[neighbor] = node
                if neighbor == destination:
                    path = [neighbor]
                    while path[-1] != source:
                        path.append(parents[path[-1]])
                    path.reverse()
                    return path
                seen.add(neighbor)
                frontier.append(neighbor)
        return None

    def route(
        self, source: Sequence[int], destination: Sequence[int]
    ) -> RouteResult:
        """Route result along the globally-known shortest path."""
        source = self.mesh.validate(source)
        destination = self.mesh.validate(destination)
        path = self.shortest_path(source, destination)
        min_distance = self.mesh.distance(source, destination)
        if path is None:
            return RouteResult(
                outcome=RouteOutcome.UNREACHABLE,
                path=[source],
                source=source,
                destination=destination,
                min_distance=min_distance,
                forward_hops=0,
                backtrack_hops=0,
            )
        return RouteResult(
            outcome=RouteOutcome.DELIVERED,
            path=path,
            source=source,
            destination=destination,
            min_distance=min_distance,
            forward_hops=len(path) - 1,
            backtrack_hops=0,
        )


def route_global_information(
    mesh: Mesh,
    labeling: LabelingState,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    avoid_blocks: bool = True,
) -> RouteResult:
    """Convenience wrapper around :class:`GlobalInformationRouter`."""
    return GlobalInformationRouter(mesh, labeling, avoid_blocks=avoid_blocks).route(
        source, destination
    )
