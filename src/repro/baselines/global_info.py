"""Global-information routing baseline — thin adapter.

The implementation lives in :mod:`repro.routing.global_info`, where it is
registered as the ``"global-information"`` router (offline *and* online);
this module re-exports the historical entry points.
"""

from __future__ import annotations

from repro.routing.global_info import (
    GlobalInformationRouter,
    route_global_information,
)

__all__ = ["GlobalInformationRouter", "route_global_information"]
