"""Circuit reservations for pipelined circuit switching.

After a routing probe reaches its destination, the nodes on its final stack
hold a reserved circuit from source to destination.  :class:`Circuit`
captures that path (with backtracked prefixes already released, exactly as
PCS releases links when a probe retreats), :class:`CircuitTable` tracks
link occupancy between fully set-up circuits, and
:class:`LiveCircuitLedger` is the simulator's per-step view: it mirrors the
partial circuit each in-flight probe holds (reserving links as the probe
advances, releasing them on backtrack) and keeps delivered circuits
reserved through their data-transmission hold time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, FrozenSet, List, Optional, Sequence, Set, Tuple, Union

from repro.backend import VECTOR, resolve_backend
from repro.core.routing import RouteOutcome, RouteResult
from repro.mesh.coords import canonical_link, is_adjacent

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]
Link = Tuple[Coord, Coord]


class ReservationError(RuntimeError):
    """Raised when a circuit cannot be reserved (conflict or invalid path)."""


@dataclass(frozen=True)
class Circuit:
    """A reserved source-to-destination circuit."""

    path: Tuple[Coord, ...]

    def __post_init__(self) -> None:
        path = tuple(tuple(p) for p in self.path)
        if len(path) < 1:
            raise ValueError("a circuit needs at least one node")
        for u, v in zip(path, path[1:]):
            if not is_adjacent(u, v):
                raise ValueError(f"{u} and {v} are not adjacent; not a valid circuit")
        if len(set(path)) != len(path):
            raise ValueError("a reserved circuit cannot visit a node twice")
        object.__setattr__(self, "path", path)

    @classmethod
    def from_route(cls, result: RouteResult) -> "Circuit":
        """The circuit held after a successful path setup.

        The probe's final stack is its path with every backtracked excursion
        removed; it is reconstructed here by replaying the visited sequence
        and dropping loops.
        """
        if result.outcome is not RouteOutcome.DELIVERED:
            raise ReservationError(
                f"cannot reserve a circuit for a {result.outcome.value} routing"
            )
        stack: List[Coord] = []
        for node in result.path:
            if node in stack:
                # Backtrack released everything after the earlier visit.
                while stack and stack[-1] != node:
                    stack.pop()
            else:
                stack.append(node)
        return cls(tuple(stack))

    @classmethod
    def from_stack(cls, stack: Sequence[Sequence[int]]) -> "Circuit":
        """The circuit held by a probe's final stack, loop excursions dropped.

        A probe stack contains no backtracked prefixes (those were popped),
        but a forward move back onto the probe's own path leaves the loop on
        the stack; the effective data circuit cuts each loop back to the
        first visit.  Unlike :meth:`from_route` this never looks at released
        links — every link of the result is on the given stack — which is
        the invariant the live reservation ledger relies on at delivery.
        """
        out: List[Coord] = []
        for node in (tuple(n) for n in stack):
            if node in out:
                while out and out[-1] != node:
                    out.pop()
            else:
                out.append(node)
        return cls(tuple(out))

    @property
    def source(self) -> Coord:
        """First node of the circuit."""
        return self.path[0]

    @property
    def destination(self) -> Coord:
        """Last node of the circuit."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """Number of links of the circuit."""
        return len(self.path) - 1

    @property
    def links(self) -> FrozenSet[Link]:
        """Undirected links reserved by the circuit."""
        return frozenset(
            canonical_link(u, v) for u, v in zip(self.path, self.path[1:])
        )


@dataclass
class CircuitTable:
    """Link-occupancy bookkeeping across concurrently reserved circuits.

    Without a mesh the table keys links by their canonical endpoint pair in
    a dict (the historic representation).  Constructed with a mesh it keeps
    one flat int32 occupancy column over the mesh's canonical link-index
    space instead, so membership checks are O(1) array reads with no tuple
    hashing — the representation very large meshes want.
    """

    mesh: Optional["Mesh"] = None
    _links_in_use: Dict[Link, Circuit] = field(default_factory=dict)
    _circuits: List[Circuit] = field(default_factory=list)
    #: Slot id per reserved circuit, aligned with ``_circuits`` (array mode).
    _slots: List[int] = field(default_factory=list, repr=False)
    _occupancy: object = field(default=None, repr=False)
    _next_slot: int = field(default=0, repr=False)
    _reserved_count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.mesh is not None:
            import numpy as np

            self._occupancy = np.full(self.mesh.link_slots, -1, dtype=np.int32)

    def _indices(self, circuit: Circuit) -> List[int]:
        link_index = self.mesh.link_index
        return [link_index(u, v) for u, v in circuit.links]

    def conflicts(self, circuit: Circuit) -> Set[Link]:
        """Links of ``circuit`` already reserved by another circuit."""
        if self._occupancy is None:
            return {link for link in circuit.links if link in self._links_in_use}
        occupancy = self._occupancy
        link_index = self.mesh.link_index
        return {
            link for link in circuit.links if occupancy[link_index(*link)] >= 0
        }

    def reserve(self, circuit: Circuit) -> None:
        """Reserve every link of ``circuit``; raise on any conflict."""
        conflicts = self.conflicts(circuit)
        if conflicts:
            raise ReservationError(f"links already reserved: {sorted(conflicts)}")
        if self._occupancy is None:
            for link in circuit.links:
                self._links_in_use[link] = circuit
        else:
            slot = self._next_slot
            self._next_slot += 1
            indices = self._indices(circuit)
            self._occupancy[indices] = slot
            self._slots.append(slot)
            self._reserved_count += len(indices)
        self._circuits.append(circuit)

    def release(self, circuit: Circuit) -> None:
        """Release every link of ``circuit`` (a no-op for unknown circuits)."""
        if circuit not in self._circuits:
            return
        position = self._circuits.index(circuit)
        self._circuits.pop(position)
        if self._occupancy is None:
            for link in circuit.links:
                if self._links_in_use.get(link) is circuit:
                    del self._links_in_use[link]
            return
        slot = self._slots.pop(position)
        occupancy = self._occupancy
        for index in self._indices(circuit):
            if occupancy[index] == slot:
                occupancy[index] = -1
                self._reserved_count -= 1

    @property
    def reserved_links(self) -> int:
        """Number of links currently reserved."""
        if self._occupancy is None:
            return len(self._links_in_use)
        return self._reserved_count

    @property
    def circuits(self) -> List[Circuit]:
        """Circuits currently holding reservations."""
        return list(self._circuits)


@dataclass
class LiveCircuitLedger:
    """Per-step link reservations for circuits in setup and in transfer.

    Each in-flight probe is a *holder* (an opaque integer).  The ledger
    mirrors the probe's partial circuit: links are reserved as the probe
    advances and released as it backtracks (:meth:`sync`).  When a probe
    delivers, its final circuit stays reserved until a release step derived
    from the transfer model (:meth:`hold_until` / :meth:`release_expired`);
    a failed or expired setup releases everything at once
    (:meth:`release`).  :meth:`is_blocked` is the contention predicate the
    routing probes consult — a link is blocked for everyone but its holder.
    """

    _link_holder: Dict[Link, int] = field(default_factory=dict)
    #: Per holder, the held links with a traversal count: a probe that loops
    #: back over its own circuit crosses the same undirected link twice, and
    #: one backtrack must then not release it for good.
    _held: Dict[int, Dict[Link, int]] = field(default_factory=dict)
    #: Min-heap of ``(release_step, holder)`` for circuits in transfer.
    _expiries: List[Tuple[int, int]] = field(default_factory=list)

    def blocked_for(self, holder: int):
        """The :data:`~repro.core.routing.LinkBlocked` predicate of ``holder``."""
        link_holder = self._link_holder

        def link_blocked(u: Coord, v: Coord) -> bool:
            owner = link_holder.get(canonical_link(u, v))
            return owner is not None and owner != holder

        return link_blocked

    def is_blocked(self, holder: int, u: Sequence[int], v: Sequence[int]) -> bool:
        """True iff the ``u``–``v`` link is reserved by a different holder."""
        owner = self._link_holder.get(canonical_link(u, v))
        return owner is not None and owner != holder

    def reserve_link(self, holder: int, u: Coord, v: Coord) -> None:
        """Reserve the ``u``–``v`` link for ``holder`` (one forward hop).

        Crossing a link the holder already has (a probe looping back over
        its own circuit) bumps its traversal count; taking a foreign link is
        a bookkeeping bug.
        """
        link = canonical_link(u, v)
        owner = self._link_holder.get(link)
        if owner is not None and owner != holder:
            raise ReservationError(
                f"link {link} is held by {owner}, cannot be taken by {holder}"
            )
        self._link_holder[link] = holder
        held = self._held.setdefault(holder, {})
        held[link] = held.get(link, 0) + 1

    def release_link(self, holder: int, u: Coord, v: Coord) -> None:
        """Release one traversal of the ``u``–``v`` link (one backtrack)."""
        link = canonical_link(u, v)
        held = self._held.get(holder)
        if held is None or link not in held:
            return
        held[link] -= 1
        if held[link] <= 0:
            del held[link]
            if self._link_holder.get(link) == holder:
                del self._link_holder[link]
            if not held:
                del self._held[holder]

    def sync(self, holder: int, stack: Sequence[Coord]) -> None:
        """Make ``holder``'s reservation exactly the links along ``stack``.

        The probes only ever move onto links they saw unreserved, so taking
        over a link held by someone else indicates a bookkeeping bug.
        """
        links: Dict[Link, int] = {}
        for u, v in zip(stack, stack[1:]):
            link = canonical_link(u, v)
            links[link] = links.get(link, 0) + 1
        held = self._held.get(holder, {})
        for link in held.keys() - links.keys():
            if self._link_holder.get(link) == holder:
                del self._link_holder[link]
        for link in links.keys() - held.keys():
            owner = self._link_holder.get(link)
            if owner is not None and owner != holder:
                raise ReservationError(
                    f"link {link} is held by {owner}, cannot be taken by {holder}"
                )
            self._link_holder[link] = holder
        if links:
            self._held[holder] = links
        else:
            self._held.pop(holder, None)

    def release(self, holder: int) -> None:
        """Drop every link ``holder`` has reserved."""
        for link in self._held.pop(holder, ()):
            if self._link_holder.get(link) == holder:
                del self._link_holder[link]

    def hold_until(self, holder: int, release_step: int) -> None:
        """Keep ``holder``'s current links reserved until ``release_step``."""
        heapq.heappush(self._expiries, (release_step, holder))

    def release_expired(self, step: int) -> int:
        """Release every timed hold due at ``step``; returns how many."""
        released = 0
        while self._expiries and self._expiries[0][0] <= step:
            _, holder = heapq.heappop(self._expiries)
            self.release(holder)
            released += 1
        return released

    def release_crossing(self, node: Sequence[int]) -> int:
        """Release every holder with a link incident to ``node``; returns count.

        The teardown hook for a node fault: any reservation standing on a
        link into or out of the failed node is dropped in one call, whether
        it belongs to an in-setup probe or a circuit in its transfer hold.
        A torn-down transfer hold leaves its heap entry behind; the later
        timed release finds nothing held and is a no-op.
        """
        target = tuple(node)
        doomed = [
            holder
            for holder, held in self._held.items()
            if any(target in link for link in held)
        ]
        for holder in doomed:
            self.release(holder)
        return len(doomed)

    @property
    def reserved_links(self) -> int:
        """Number of links currently reserved (setup + transfer)."""
        return len(self._link_holder)

    @property
    def active_holders(self) -> int:
        """Number of holders currently reserving at least one link."""
        return len(self._held)

    def reserved_link_set(self) -> Set[Link]:
        """The canonical links currently reserved (parity/inspection hook)."""
        return set(self._link_holder)


class ArrayCircuitLedger:
    """Numpy-backed :class:`LiveCircuitLedger` for very large meshes.

    Same API and byte-identical behavior, but link state lives in three flat
    preallocated columns over the mesh's canonical link-index space
    (:meth:`Mesh.link_index`): ``holder`` (the reserving holder id, ``-1``
    free), ``refcount`` (the holder's traversal count of the link) and
    ``release`` (the step a timed transfer hold expires, ``-1`` none) — so
    :meth:`is_blocked` and :meth:`reserve_link` are O(1) indexed
    reads/writes with no per-step dict churn, and :meth:`release_expired`
    finds every due link in one vectorized numpy sweep over the release
    column.  (The holder/refcount columns are flat Python lists rather than
    ndarrays: the engine reads them one element at a time, where list
    indexing beats numpy scalar indexing; the release column *is* an
    ndarray because it is only ever swept whole.)  A per-holder set of held
    link indices is kept on the side so releasing a holder touches only its
    own links.

    One usage contract (the engine's lifecycle satisfies it, and the dict
    ledger shares it in practice): a holder reserves no further links after
    :meth:`hold_until` — the timed release clears exactly the links stamped
    when the hold was taken.
    """

    def __init__(self, mesh: "Mesh") -> None:
        import numpy as np

        self.mesh = mesh
        slots = mesh.link_slots
        self._holder: List[int] = [-1] * slots
        self._refcount: List[int] = [0] * slots
        self._release = np.full(slots, -1, dtype=np.int64)
        #: Per holder, the link indices it currently holds (refcounts live in
        #: the ``refcount`` column; a link has one holder, so no ambiguity).
        self._held: Dict[int, Set[int]] = {}
        #: Min-heap of ``(release_step, holder)`` — kept for the exact
        #: released-holder counting semantics of the dict ledger; the link
        #: clearing itself is the vectorized column sweep.
        self._expiries: List[Tuple[int, int]] = []
        self._reserved_count = 0
        #: Bumped whenever a link transitions held -> free.  A probe waiting
        #: on an all-blocked candidate list can only be unblocked by such a
        #: transition (reserves only ever block more), so the probe engine
        #: parks waiters and skips their re-scan while the epoch is unchanged.
        self._epoch = 0

    def blocked_for(self, holder: int):
        """The :data:`~repro.core.routing.LinkBlocked` predicate of ``holder``.

        The returned predicate additionally exposes a ``slot_blocked``
        attribute taking a canonical link slot (:meth:`Mesh.link_index`)
        directly — the vectorized decision batch precomputes each
        candidate's slot, so the contended scan skips the endpoint-pair
        lookup entirely.
        """
        holder_col = self._holder
        link_index = self.mesh.link_index

        def link_blocked(u: Coord, v: Coord) -> bool:
            owner = holder_col[link_index(u, v)]
            return owner >= 0 and owner != holder

        def slot_blocked(slot: int) -> bool:
            owner = holder_col[slot]
            return owner >= 0 and owner != holder

        link_blocked.slot_blocked = slot_blocked
        return link_blocked

    def is_blocked(self, holder: int, u: Sequence[int], v: Sequence[int]) -> bool:
        """True iff the ``u``–``v`` link is reserved by a different holder."""
        owner = self._holder[self.mesh.link_index(u, v)]
        return bool(owner >= 0 and owner != holder)

    def reserve_link(self, holder: int, u: Coord, v: Coord) -> None:
        """Reserve the ``u``–``v`` link for ``holder`` (one forward hop)."""
        self.reserve_slot(holder, self.mesh.link_index(u, v))

    def reserve_slot(self, holder: int, index: int) -> None:
        """:meth:`reserve_link` by precomputed canonical link slot.

        The struct-of-arrays probe engine carries each candidate's slot
        through its tables, so the per-hop reserve needs no endpoint-pair
        lookup at all.
        """
        owner = self._holder[index]
        if owner >= 0 and owner != holder:
            raise ReservationError(
                f"link {self.mesh.link_of_index(index)} is held by {owner}, "
                f"cannot be taken by {holder}"
            )
        if owner < 0:
            self._holder[index] = holder
            self._reserved_count += 1
        self._held.setdefault(holder, set()).add(index)
        self._refcount[index] += 1

    def release_slot(self, holder: int, index: int) -> None:
        """:meth:`release_link` by precomputed canonical link slot."""
        held = self._held.get(holder)
        if held is None or index not in held:
            return
        self._refcount[index] -= 1
        if self._refcount[index] <= 0:
            self._refcount[index] = 0
            self._release[index] = -1
            held.discard(index)
            if self._holder[index] == holder:
                self._holder[index] = -1
                self._reserved_count -= 1
                self._epoch += 1
            if not held:
                del self._held[holder]

    def release_link(self, holder: int, u: Coord, v: Coord) -> None:
        """Release one traversal of the ``u``–``v`` link (one backtrack)."""
        self.release_slot(holder, self.mesh.link_index(u, v))

    def sync(self, holder: int, stack: Sequence[Coord]) -> None:
        """Make ``holder``'s reservation exactly the links along ``stack``."""
        link_index = self.mesh.link_index
        counts: Dict[int, int] = {}
        for u, v in zip(stack, stack[1:]):
            index = link_index(u, v)
            counts[index] = counts.get(index, 0) + 1
        held = self._held.get(holder, set())
        for index in held - counts.keys():
            if self._holder[index] == holder:
                self._holder[index] = -1
                self._reserved_count -= 1
                self._epoch += 1
            self._refcount[index] = 0
            self._release[index] = -1
        for index in counts.keys() - held:
            owner = self._holder[index]
            if owner >= 0 and owner != holder:
                raise ReservationError(
                    f"link {self.mesh.link_of_index(index)} is held by {owner}, "
                    f"cannot be taken by {holder}"
                )
            self._holder[index] = holder
            self._reserved_count += 1
        for index, count in counts.items():
            self._refcount[index] = count
        if counts:
            self._held[holder] = set(counts)
        else:
            self._held.pop(holder, None)

    def release(self, holder: int) -> None:
        """Drop every link ``holder`` has reserved."""
        for index in self._held.pop(holder, ()):
            if self._holder[index] == holder:
                self._holder[index] = -1
                self._refcount[index] = 0
                self._release[index] = -1
                self._reserved_count -= 1
                self._epoch += 1

    def hold_until(self, holder: int, release_step: int) -> None:
        """Keep ``holder``'s current links reserved until ``release_step``."""
        heapq.heappush(self._expiries, (release_step, holder))
        for index in self._held.get(holder, ()):
            self._release[index] = release_step

    def release_crossing(self, node: Sequence[int]) -> int:
        """Release every holder with a link incident to ``node``; returns count.

        Same teardown semantics as the dict ledger: releasing through
        :meth:`release` resets the release column for the dropped links, so
        the stale ``_expiries`` heap entry of a torn-down transfer hold is a
        no-op when it comes due.
        """
        target = tuple(node)
        link_of_index = self.mesh.link_of_index
        doomed = [
            holder
            for holder, held in self._held.items()
            if any(target in link_of_index(index) for index in held)
        ]
        for holder in doomed:
            self.release(holder)
        return len(doomed)

    def release_expired(self, step: int) -> int:
        """Release every timed hold due at ``step``; returns how many."""
        if not self._expiries or self._expiries[0][0] > step:
            return 0
        import numpy as np

        # One vectorized sweep over the release column finds every due link.
        due = np.flatnonzero((self._release >= 0) & (self._release <= step))
        if due.size:
            for index in due.tolist():
                if self._holder[index] >= 0:
                    self._holder[index] = -1
                    self._reserved_count -= 1
                    self._epoch += 1
                self._refcount[index] = 0
            self._release[due] = -1
        released = 0
        while self._expiries and self._expiries[0][0] <= step:
            _, holder = heapq.heappop(self._expiries)
            self._held.pop(holder, None)
            released += 1
        return released

    @property
    def reserved_links(self) -> int:
        """Number of links currently reserved (setup + transfer)."""
        return self._reserved_count

    @property
    def active_holders(self) -> int:
        """Number of holders currently reserving at least one link."""
        return len(self._held)

    def reserved_link_set(self) -> Set[Link]:
        """The canonical links currently reserved (parity/inspection hook)."""
        link_of_index = self.mesh.link_of_index
        return {
            link_of_index(index)
            for index, owner in enumerate(self._holder)
            if owner >= 0
        }


#: Either live-ledger implementation (they share one API).
CircuitLedger = Union[LiveCircuitLedger, ArrayCircuitLedger]


def make_live_ledger(
    mesh: "Mesh", backend: Optional[str] = None
) -> CircuitLedger:
    """Build the live reservation ledger for the selected backend."""
    if resolve_backend(backend) == VECTOR:
        return ArrayCircuitLedger(mesh)
    return LiveCircuitLedger()
