"""Circuit reservations for pipelined circuit switching.

After a routing probe reaches its destination, the nodes on its final stack
hold a reserved circuit from source to destination.  :class:`Circuit`
captures that path (with backtracked prefixes already released, exactly as
PCS releases links when a probe retreats), and :class:`CircuitTable` tracks
link occupancy so experiments can also measure contention between
concurrently set-up circuits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.routing import RouteOutcome, RouteResult
from repro.mesh.coords import is_adjacent

Coord = Tuple[int, ...]
Link = Tuple[Coord, Coord]


class ReservationError(RuntimeError):
    """Raised when a circuit cannot be reserved (conflict or invalid path)."""


def _canonical_link(u: Coord, v: Coord) -> Link:
    """Undirected link identifier (order-independent)."""
    return (u, v) if u <= v else (v, u)


@dataclass(frozen=True)
class Circuit:
    """A reserved source-to-destination circuit."""

    path: Tuple[Coord, ...]

    def __post_init__(self) -> None:
        path = tuple(tuple(p) for p in self.path)
        if len(path) < 1:
            raise ValueError("a circuit needs at least one node")
        for u, v in zip(path, path[1:]):
            if not is_adjacent(u, v):
                raise ValueError(f"{u} and {v} are not adjacent; not a valid circuit")
        if len(set(path)) != len(path):
            raise ValueError("a reserved circuit cannot visit a node twice")
        object.__setattr__(self, "path", path)

    @classmethod
    def from_route(cls, result: RouteResult) -> "Circuit":
        """The circuit held after a successful path setup.

        The probe's final stack is its path with every backtracked excursion
        removed; it is reconstructed here by replaying the visited sequence
        and dropping loops.
        """
        if result.outcome is not RouteOutcome.DELIVERED:
            raise ReservationError(
                f"cannot reserve a circuit for a {result.outcome.value} routing"
            )
        stack: List[Coord] = []
        for node in result.path:
            if node in stack:
                # Backtrack released everything after the earlier visit.
                while stack and stack[-1] != node:
                    stack.pop()
            else:
                stack.append(node)
        return cls(tuple(stack))

    @property
    def source(self) -> Coord:
        """First node of the circuit."""
        return self.path[0]

    @property
    def destination(self) -> Coord:
        """Last node of the circuit."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """Number of links of the circuit."""
        return len(self.path) - 1

    @property
    def links(self) -> FrozenSet[Link]:
        """Undirected links reserved by the circuit."""
        return frozenset(
            _canonical_link(u, v) for u, v in zip(self.path, self.path[1:])
        )


@dataclass
class CircuitTable:
    """Link-occupancy bookkeeping across concurrently reserved circuits."""

    _links_in_use: Dict[Link, Circuit] = field(default_factory=dict)
    _circuits: List[Circuit] = field(default_factory=list)

    def conflicts(self, circuit: Circuit) -> Set[Link]:
        """Links of ``circuit`` already reserved by another circuit."""
        return {link for link in circuit.links if link in self._links_in_use}

    def reserve(self, circuit: Circuit) -> None:
        """Reserve every link of ``circuit``; raise on any conflict."""
        conflicts = self.conflicts(circuit)
        if conflicts:
            raise ReservationError(f"links already reserved: {sorted(conflicts)}")
        for link in circuit.links:
            self._links_in_use[link] = circuit
        self._circuits.append(circuit)

    def release(self, circuit: Circuit) -> None:
        """Release every link of ``circuit`` (a no-op for unknown circuits)."""
        if circuit not in self._circuits:
            return
        self._circuits.remove(circuit)
        for link in circuit.links:
            if self._links_in_use.get(link) is circuit:
                del self._links_in_use[link]

    @property
    def reserved_links(self) -> int:
        """Number of links currently reserved."""
        return len(self._links_in_use)

    @property
    def circuits(self) -> List[Circuit]:
        """Circuits currently holding reservations."""
        return list(self._circuits)
