"""Circuit reservations for pipelined circuit switching.

After a routing probe reaches its destination, the nodes on its final stack
hold a reserved circuit from source to destination.  :class:`Circuit`
captures that path (with backtracked prefixes already released, exactly as
PCS releases links when a probe retreats), :class:`CircuitTable` tracks
link occupancy between fully set-up circuits, and
:class:`LiveCircuitLedger` is the simulator's per-step view: it mirrors the
partial circuit each in-flight probe holds (reserving links as the probe
advances, releasing them on backtrack) and keeps delivered circuits
reserved through their data-transmission hold time.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from repro.core.routing import RouteOutcome, RouteResult
from repro.mesh.coords import canonical_link, is_adjacent

Coord = Tuple[int, ...]
Link = Tuple[Coord, Coord]


class ReservationError(RuntimeError):
    """Raised when a circuit cannot be reserved (conflict or invalid path)."""


@dataclass(frozen=True)
class Circuit:
    """A reserved source-to-destination circuit."""

    path: Tuple[Coord, ...]

    def __post_init__(self) -> None:
        path = tuple(tuple(p) for p in self.path)
        if len(path) < 1:
            raise ValueError("a circuit needs at least one node")
        for u, v in zip(path, path[1:]):
            if not is_adjacent(u, v):
                raise ValueError(f"{u} and {v} are not adjacent; not a valid circuit")
        if len(set(path)) != len(path):
            raise ValueError("a reserved circuit cannot visit a node twice")
        object.__setattr__(self, "path", path)

    @classmethod
    def from_route(cls, result: RouteResult) -> "Circuit":
        """The circuit held after a successful path setup.

        The probe's final stack is its path with every backtracked excursion
        removed; it is reconstructed here by replaying the visited sequence
        and dropping loops.
        """
        if result.outcome is not RouteOutcome.DELIVERED:
            raise ReservationError(
                f"cannot reserve a circuit for a {result.outcome.value} routing"
            )
        stack: List[Coord] = []
        for node in result.path:
            if node in stack:
                # Backtrack released everything after the earlier visit.
                while stack and stack[-1] != node:
                    stack.pop()
            else:
                stack.append(node)
        return cls(tuple(stack))

    @classmethod
    def from_stack(cls, stack: Sequence[Sequence[int]]) -> "Circuit":
        """The circuit held by a probe's final stack, loop excursions dropped.

        A probe stack contains no backtracked prefixes (those were popped),
        but a forward move back onto the probe's own path leaves the loop on
        the stack; the effective data circuit cuts each loop back to the
        first visit.  Unlike :meth:`from_route` this never looks at released
        links — every link of the result is on the given stack — which is
        the invariant the live reservation ledger relies on at delivery.
        """
        out: List[Coord] = []
        for node in (tuple(n) for n in stack):
            if node in out:
                while out and out[-1] != node:
                    out.pop()
            else:
                out.append(node)
        return cls(tuple(out))

    @property
    def source(self) -> Coord:
        """First node of the circuit."""
        return self.path[0]

    @property
    def destination(self) -> Coord:
        """Last node of the circuit."""
        return self.path[-1]

    @property
    def length(self) -> int:
        """Number of links of the circuit."""
        return len(self.path) - 1

    @property
    def links(self) -> FrozenSet[Link]:
        """Undirected links reserved by the circuit."""
        return frozenset(
            canonical_link(u, v) for u, v in zip(self.path, self.path[1:])
        )


@dataclass
class CircuitTable:
    """Link-occupancy bookkeeping across concurrently reserved circuits."""

    _links_in_use: Dict[Link, Circuit] = field(default_factory=dict)
    _circuits: List[Circuit] = field(default_factory=list)

    def conflicts(self, circuit: Circuit) -> Set[Link]:
        """Links of ``circuit`` already reserved by another circuit."""
        return {link for link in circuit.links if link in self._links_in_use}

    def reserve(self, circuit: Circuit) -> None:
        """Reserve every link of ``circuit``; raise on any conflict."""
        conflicts = self.conflicts(circuit)
        if conflicts:
            raise ReservationError(f"links already reserved: {sorted(conflicts)}")
        for link in circuit.links:
            self._links_in_use[link] = circuit
        self._circuits.append(circuit)

    def release(self, circuit: Circuit) -> None:
        """Release every link of ``circuit`` (a no-op for unknown circuits)."""
        if circuit not in self._circuits:
            return
        self._circuits.remove(circuit)
        for link in circuit.links:
            if self._links_in_use.get(link) is circuit:
                del self._links_in_use[link]

    @property
    def reserved_links(self) -> int:
        """Number of links currently reserved."""
        return len(self._links_in_use)

    @property
    def circuits(self) -> List[Circuit]:
        """Circuits currently holding reservations."""
        return list(self._circuits)


@dataclass
class LiveCircuitLedger:
    """Per-step link reservations for circuits in setup and in transfer.

    Each in-flight probe is a *holder* (an opaque integer).  The ledger
    mirrors the probe's partial circuit: links are reserved as the probe
    advances and released as it backtracks (:meth:`sync`).  When a probe
    delivers, its final circuit stays reserved until a release step derived
    from the transfer model (:meth:`hold_until` / :meth:`release_expired`);
    a failed or expired setup releases everything at once
    (:meth:`release`).  :meth:`is_blocked` is the contention predicate the
    routing probes consult — a link is blocked for everyone but its holder.
    """

    _link_holder: Dict[Link, int] = field(default_factory=dict)
    #: Per holder, the held links with a traversal count: a probe that loops
    #: back over its own circuit crosses the same undirected link twice, and
    #: one backtrack must then not release it for good.
    _held: Dict[int, Dict[Link, int]] = field(default_factory=dict)
    #: Min-heap of ``(release_step, holder)`` for circuits in transfer.
    _expiries: List[Tuple[int, int]] = field(default_factory=list)

    def blocked_for(self, holder: int):
        """The :data:`~repro.core.routing.LinkBlocked` predicate of ``holder``."""
        link_holder = self._link_holder

        def link_blocked(u: Coord, v: Coord) -> bool:
            owner = link_holder.get(canonical_link(u, v))
            return owner is not None and owner != holder

        return link_blocked

    def is_blocked(self, holder: int, u: Sequence[int], v: Sequence[int]) -> bool:
        """True iff the ``u``–``v`` link is reserved by a different holder."""
        owner = self._link_holder.get(canonical_link(u, v))
        return owner is not None and owner != holder

    def reserve_link(self, holder: int, u: Coord, v: Coord) -> None:
        """Reserve the ``u``–``v`` link for ``holder`` (one forward hop).

        Crossing a link the holder already has (a probe looping back over
        its own circuit) bumps its traversal count; taking a foreign link is
        a bookkeeping bug.
        """
        link = canonical_link(u, v)
        owner = self._link_holder.get(link)
        if owner is not None and owner != holder:
            raise ReservationError(
                f"link {link} is held by {owner}, cannot be taken by {holder}"
            )
        self._link_holder[link] = holder
        held = self._held.setdefault(holder, {})
        held[link] = held.get(link, 0) + 1

    def release_link(self, holder: int, u: Coord, v: Coord) -> None:
        """Release one traversal of the ``u``–``v`` link (one backtrack)."""
        link = canonical_link(u, v)
        held = self._held.get(holder)
        if held is None or link not in held:
            return
        held[link] -= 1
        if held[link] <= 0:
            del held[link]
            if self._link_holder.get(link) == holder:
                del self._link_holder[link]
            if not held:
                del self._held[holder]

    def sync(self, holder: int, stack: Sequence[Coord]) -> None:
        """Make ``holder``'s reservation exactly the links along ``stack``.

        The probes only ever move onto links they saw unreserved, so taking
        over a link held by someone else indicates a bookkeeping bug.
        """
        links: Dict[Link, int] = {}
        for u, v in zip(stack, stack[1:]):
            link = canonical_link(u, v)
            links[link] = links.get(link, 0) + 1
        held = self._held.get(holder, {})
        for link in held.keys() - links.keys():
            if self._link_holder.get(link) == holder:
                del self._link_holder[link]
        for link in links.keys() - held.keys():
            owner = self._link_holder.get(link)
            if owner is not None and owner != holder:
                raise ReservationError(
                    f"link {link} is held by {owner}, cannot be taken by {holder}"
                )
            self._link_holder[link] = holder
        if links:
            self._held[holder] = links
        else:
            self._held.pop(holder, None)

    def release(self, holder: int) -> None:
        """Drop every link ``holder`` has reserved."""
        for link in self._held.pop(holder, ()):
            if self._link_holder.get(link) == holder:
                del self._link_holder[link]

    def hold_until(self, holder: int, release_step: int) -> None:
        """Keep ``holder``'s current links reserved until ``release_step``."""
        heapq.heappush(self._expiries, (release_step, holder))

    def release_expired(self, step: int) -> int:
        """Release every timed hold due at ``step``; returns how many."""
        released = 0
        while self._expiries and self._expiries[0][0] <= step:
            _, holder = heapq.heappop(self._expiries)
            self.release(holder)
            released += 1
        return released

    @property
    def reserved_links(self) -> int:
        """Number of links currently reserved (setup + transfer)."""
        return len(self._link_holder)

    @property
    def active_holders(self) -> int:
        """Number of holders currently reserving at least one link."""
        return len(self._held)
