"""Pipelined circuit switching (PCS) substrate.

PCS separates routing into a *path-setup* phase (a probe explores the
network, may backtrack, and reserves a circuit hop by hop) and a *data
transmission* phase over the reserved circuit.  The paper's contribution
concerns the path-setup phase only — that is Algorithm 3, implemented in
:mod:`repro.core.routing` — but a complete system also needs the circuit
bookkeeping, which lives here:

* :mod:`repro.pcs.circuit` — circuit reservations derived from a finished
  probe, link-occupancy accounting and release;
* :mod:`repro.pcs.transfer` — the (trivially pipelined) data-phase model
  used to convert a path length into an end-to-end message latency.
"""

from repro.pcs.circuit import (
    ArrayCircuitLedger,
    Circuit,
    CircuitLedger,
    CircuitTable,
    LiveCircuitLedger,
    ReservationError,
    make_live_ledger,
)
from repro.pcs.transfer import TransferModel, transfer_latency

__all__ = [
    "ArrayCircuitLedger",
    "Circuit",
    "CircuitLedger",
    "CircuitTable",
    "LiveCircuitLedger",
    "ReservationError",
    "TransferModel",
    "make_live_ledger",
    "transfer_latency",
]
