"""Data-phase latency model for pipelined circuit switching.

Once a circuit is reserved, PCS streams the message over it in a pipelined
fashion, so the transmission latency is (path length) x (per-hop header
latency) + (message length / bandwidth).  The paper's evaluation quantities
are all about the *setup* phase, but end-to-end comparisons (e.g. against a
hypothetical router with global tables whose setup never detours) need a way
to convert the path-setup step count and circuit length into a latency
figure; this module provides that conversion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.routing import RouteResult
from repro.pcs.circuit import Circuit


@dataclass(frozen=True)
class TransferModel:
    """Latency parameters of the PCS pipeline.

    All quantities are in abstract time units; only ratios matter for the
    comparisons the experiments report.
    """

    #: Per-hop latency of the path-setup probe (one simulation step).
    setup_hop_latency: float = 1.0

    #: Per-hop latency of the circuit pipeline during data transmission.
    data_hop_latency: float = 0.2

    #: Time to push one flit onto the circuit.
    flit_injection_latency: float = 0.05

    def setup_latency(self, result: RouteResult) -> float:
        """Latency of the path-setup phase (every hop, including backtracks)."""
        return self.setup_hop_latency * result.hops

    def data_latency(self, circuit: Circuit, message_flits: int) -> float:
        """Latency of streaming ``message_flits`` flits over ``circuit``."""
        if message_flits < 0:
            raise ValueError("message_flits must be non-negative")
        pipeline_fill = self.data_hop_latency * circuit.length
        streaming = self.flit_injection_latency * message_flits
        return pipeline_fill + streaming

    def hold_steps(self, circuit: Circuit, message_flits: int) -> int:
        """Simulation steps a delivered circuit stays reserved for its data.

        One simulation step is one setup hop (``setup_hop_latency``), so the
        data latency is converted at that rate and rounded up; even an empty
        message holds the circuit for one step (the acknowledgment flit).
        """
        latency = self.data_latency(circuit, message_flits)
        return max(1, math.ceil(latency / self.setup_hop_latency))

    def end_to_end(self, result: RouteResult, message_flits: int) -> float:
        """Total latency: path setup plus pipelined data transmission."""
        circuit = Circuit.from_route(result)
        return self.setup_latency(result) + self.data_latency(circuit, message_flits)


def transfer_latency(
    result: RouteResult,
    message_flits: int = 64,
    model: TransferModel | None = None,
) -> float:
    """Convenience wrapper computing the end-to-end latency of one routing."""
    model = model or TransferModel()
    return model.end_to_end(result, message_flits)
