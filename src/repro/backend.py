"""Scalar/vector backend selection for the hot-loop implementations.

Two of the steady-state hot loops — the labeling rounds of block
construction and the live circuit-reservation ledger — exist in two
byte-identical implementations: a pure-Python *scalar* reference loop and
a numpy-vectorized *vector* engine.  The vector engine is the default; the
scalar path is kept as the parity oracle (the randomized parity tests
assert identical statuses, block extents and reserved-link sets) and as
the benchmark baseline.  Both run on the same numpy-backed state — numpy
is a runtime dependency of the package either way.

Selection, in priority order:

1. an explicit argument (``labeling_round(state, backend="scalar")``,
   ``SimulationConfig(backend="vector")``),
2. the ``REPRO_BACKEND`` environment variable (``vector`` or ``scalar``),
3. the built-in default (``vector``).
"""

from __future__ import annotations

import os
from typing import Optional

VECTOR = "vector"
SCALAR = "scalar"
_BACKENDS = (VECTOR, SCALAR)

#: Environment variable overriding the default backend.
ENV_VAR = "REPRO_BACKEND"


def default_backend() -> str:
    """The backend used when no explicit choice is made."""
    value = os.environ.get(ENV_VAR)
    if value is not None:
        value = value.strip().lower()
        if value not in _BACKENDS:
            raise ValueError(
                f"{ENV_VAR}={value!r} is not a known backend; choose from {_BACKENDS}"
            )
        return value
    return VECTOR


def resolve_backend(explicit: Optional[str] = None) -> str:
    """Resolve an explicit backend name (``None`` → environment/default)."""
    if explicit is None:
        return default_backend()
    if explicit not in _BACKENDS:
        raise ValueError(
            f"unknown backend {explicit!r}; choose from {_BACKENDS}"
        )
    return explicit
