"""Scalar/vector backend selection for the hot-loop implementations.

Three of the steady-state hot loops — the labeling rounds of block
construction, the live circuit-reservation ledger and the per-probe
routing-decision engine — exist in two byte-identical implementations: a
pure-Python *scalar* reference loop and a numpy-vectorized *vector*
engine.  The vector engine is the default; the scalar path is kept as the
parity oracle (the randomized parity tests assert identical statuses,
block extents, reserved-link sets and probe decisions) and as the
benchmark baseline.  Both run on the same numpy-backed state — numpy is a
runtime dependency of the package either way.

Selection, in priority order:

1. an explicit argument (``labeling_round(state, backend="scalar")``,
   ``SimulationConfig(backend="vector")``, the CLI's ``--backend``),
2. the ``REPRO_BACKEND`` environment variable (``vector`` or ``scalar``),
3. the built-in default (``vector``).

Every entry point validates eagerly: an unknown name — explicit argument
*or* a typo'd environment value — raises :class:`ValueError` naming the
allowed backends instead of silently running some default.
"""

from __future__ import annotations

import os
from typing import Optional, Tuple

VECTOR = "vector"
SCALAR = "scalar"
_BACKENDS = (VECTOR, SCALAR)

#: Environment variable overriding the default backend.
ENV_VAR = "REPRO_BACKEND"


def available_backends() -> Tuple[str, ...]:
    """Every selectable backend name (the CLI's ``--backend`` menu)."""
    return _BACKENDS


def _validated(value: str, source: str) -> str:
    """Normalize and validate one backend name, naming its origin on error."""
    name = value.strip().lower()
    if name not in _BACKENDS:
        raise ValueError(
            f"{source}={value!r} is not a known backend; "
            f"choose from {', '.join(_BACKENDS)}"
        )
    return name


def default_backend() -> str:
    """The backend used when no explicit choice is made."""
    value = os.environ.get(ENV_VAR)
    if value is not None:
        return _validated(value, ENV_VAR)
    return VECTOR


def resolve_backend(explicit: Optional[str] = None) -> str:
    """Resolve an explicit backend name (``None`` → environment/default)."""
    if explicit is None:
        return default_backend()
    return _validated(explicit, "backend")
