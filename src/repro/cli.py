"""Command-line interface for the reproduction library.

Eight subcommands cover the workflows the experiments use:

* ``repro-mesh route``       — route one source/destination pair against a
  static fault set, under any policy;
* ``repro-mesh simulate``    — run the step-synchronous simulator with a
  randomized dynamic-fault scenario and print the summary;
* ``repro-mesh compare``     — the policy-comparison table for a randomized
  static configuration;
* ``repro-mesh convergence`` — measure a/b/c for a parametric block;
* ``repro-mesh sweep``       — run a declarative experiment grid through
  :mod:`repro.experiments`, optionally across worker processes, and emit
  canonical JSON;
* ``repro-mesh throughput``  — open-loop saturation measurement: sweep
  injection rates (or binary-search the saturation point) and print
  per-policy load-latency/throughput curves;
* ``repro-mesh report``      — render an observability artifact (a JSONL
  step trace from ``simulate --trace-out`` or a telemetry JSON from
  ``sweep --telemetry-out``) as an ASCII table with sparklines;
* ``repro-mesh serve``       — run the asyncio HTTP service
  (:mod:`repro.service`): submit ``repro.spec/v1`` payloads over POST,
  stream per-cell results as NDJSON, fetch the canonical
  ``repro.result/v1`` JSON — byte-identical to ``sweep --out``.

The mesh is either the uniform ``--radix``/``--dims`` cube or an explicit
rectangular ``--shape 16,8,4`` (the two options are mutually exclusive).

The CLI is intentionally a thin veneer over the public API so that every
number it prints can also be obtained programmatically.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import measure_convergence
from repro.analysis.metrics import compare_policies, contention_row
from repro.analysis.throughput import throughput_rows
from repro.backend import ENV_VAR as BACKEND_ENV_VAR
from repro.backend import available_backends, resolve_backend
from repro.core.block_construction import build_blocks
from repro.experiments import (
    ENGINES,
    MODES,
    SPEC_SCHEMA,
    ExperimentSpec,
    ResultCache,
    run_batch,
)
from repro.faults.injection import uniform_random_faults
from repro.mesh.topology import Mesh
from repro.routing import available_routers, resolve_router
from repro.simulator.engine import SimulationConfig, Simulator
from repro.throughput import MeasurementWindows, load_curves, saturation_for_policy
from repro.workloads.congestion import (
    bursty_scenario,
    hotspot_scenario,
    transpose_scenario,
)
from repro.workloads.scenarios import parametric_block_scenario, random_dynamic_scenario
from repro.workloads.traffic import random_pairs

Coord = Tuple[int, ...]

DEFAULT_RADIX = 10
DEFAULT_DIMS = 3


def _parse_coord(text: str, n_dims: int) -> Coord:
    parts = [p for p in text.replace("(", "").replace(")", "").split(",") if p.strip()]
    if len(parts) != n_dims:
        raise argparse.ArgumentTypeError(
            f"expected {n_dims} comma-separated coordinates, got {text!r}"
        )
    return tuple(int(p) for p in parts)


def _parse_faults(texts: Sequence[str], n_dims: int) -> List[Coord]:
    return [_parse_coord(t, n_dims) for t in texts]


def _parse_shape(text: str) -> Tuple[int, ...]:
    parts = [p for p in text.replace("(", "").replace(")", "").split(",") if p.strip()]
    if not parts:
        raise argparse.ArgumentTypeError(f"empty mesh shape {text!r}")
    try:
        shape = tuple(int(p) for p in parts)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid mesh shape {text!r}")
    if any(s < 2 for s in shape):
        raise argparse.ArgumentTypeError(
            f"every dimension needs radix >= 2, got {shape}"
        )
    return shape


def _parse_int_list(text: str) -> Tuple[int, ...]:
    try:
        return tuple(int(p) for p in text.split(",") if p.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated integers, got {text!r}")


def _parse_float_list(text: str) -> Tuple[float, ...]:
    try:
        return tuple(float(p) for p in text.split(",") if p.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(f"expected comma-separated numbers, got {text!r}")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="hot-loop implementation (labeling rounds, circuit ledger, "
        "decision engine); defaults to $REPRO_BACKEND or 'vector'",
    )


def _apply_backend(args: argparse.Namespace) -> None:
    """Export a validated ``--backend`` choice for this run.

    Setting the environment variable (rather than threading a parameter
    through every subsystem) also reaches the worker processes of
    ``sweep``/``throughput`` fan-out, which inherit the environment.
    """
    if getattr(args, "backend", None) is not None:
        os.environ[BACKEND_ENV_VAR] = resolve_backend(args.backend)


def _add_mesh_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--radix", type=int, default=None,
        help=f"nodes per dimension (k, default {DEFAULT_RADIX})",
    )
    parser.add_argument(
        "--dims", type=int, default=None,
        help=f"mesh dimensionality (n, default {DEFAULT_DIMS})",
    )
    parser.add_argument(
        "--shape", default=None,
        help="rectangular mesh shape, e.g. 16,8,4 (mutually exclusive with --radix/--dims)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _resolve_shapes(
    shapes: Sequence[str],
    radix: Optional[int],
    dims: Optional[int],
) -> Tuple[Tuple[int, ...], ...]:
    """Resolve --shape vs --radix/--dims; the two styles are exclusive."""
    if shapes:
        if radix is not None or dims is not None:
            raise argparse.ArgumentTypeError(
                "--shape is mutually exclusive with --radix/--dims"
            )
        return tuple(_parse_shape(s) for s in shapes)
    radix = radix if radix is not None else DEFAULT_RADIX
    dims = dims if dims is not None else DEFAULT_DIMS
    return (tuple([radix] * dims),)


def _mesh_shape_from_args(args: argparse.Namespace) -> Tuple[int, ...]:
    shapes = [args.shape] if args.shape is not None else []
    (shape,) = _resolve_shapes(shapes, args.radix, args.dims)
    return shape


def _mesh_from_args(args: argparse.Namespace) -> Mesh:
    return Mesh(_mesh_shape_from_args(args))


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mesh",
        description="Limited-global fault information model for n-D meshes (IPDPS 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="route one message against a static fault set")
    _add_mesh_arguments(route)
    route.add_argument("--source", required=True, help="source address, e.g. 0,0,0")
    route.add_argument("--destination", required=True, help="destination address")
    route.add_argument("--fault", action="append", default=[], help="faulty node (repeatable)")
    route.add_argument("--random-faults", type=int, default=0, help="additional random faults")
    route.add_argument(
        "--policy",
        choices=available_routers(),
        default="limited-global",
        help="routing policy (any registered router)",
    )

    simulate = sub.add_parser("simulate", help="run a randomized dynamic-fault simulation")
    _add_mesh_arguments(simulate)
    simulate.add_argument("--faults", type=int, default=6, help="dynamic fault count")
    simulate.add_argument("--interval", type=int, default=15, help="steps between faults (d_i)")
    simulate.add_argument("--messages", type=int, default=12, help="routing messages")
    simulate.add_argument("--lam", type=int, default=2, help="information rounds per step (λ)")
    simulate.add_argument(
        "--policy",
        choices=available_routers(),
        default="limited-global",
        help="routing policy driving every probe (any registered router)",
    )
    simulate.add_argument(
        "--scenario",
        choices=("random", "hotspot", "transpose", "bursty"),
        default="random",
        help="traffic family (congestion scenarios contend for links)",
    )
    simulate.add_argument(
        "--contention", action="store_true",
        help="run the PCS circuit phase: probes reserve links, delivered "
        "circuits hold them for a flits-derived time",
    )
    simulate.add_argument(
        "--flits", type=int, default=64,
        help="message length in flits (circuit hold time under contention)",
    )
    simulate.add_argument(
        "--trace-out", default=None,
        help="attach a per-step recorder and write the run's JSONL trace "
        "(step series, fault events, convergence, summary) here",
    )
    simulate.add_argument(
        "--profile", action="store_true",
        help="time the step pipeline's phases and print the nested timing "
        "report to stderr",
    )
    _add_backend_argument(simulate)

    compare = sub.add_parser("compare", help="compare routing policies on random faults")
    _add_mesh_arguments(compare)
    compare.add_argument("--faults", type=int, default=8)
    compare.add_argument("--messages", type=int, default=20)

    convergence = sub.add_parser("convergence", help="measure a/b/c for a parametric block")
    _add_mesh_arguments(convergence)
    convergence.add_argument("--edge", type=int, default=3, help="block edge length")

    sweep = sub.add_parser(
        "sweep",
        help="run a declarative experiment grid (repro.experiments) and emit JSON",
    )
    sweep.add_argument(
        "--spec", default=None, metavar="FILE.json",
        help="read the whole grid from a versioned repro.spec/v1 JSON "
        "document (the payload ExperimentSpec.to_dict emits and the HTTP "
        "service accepts) instead of the grid flags below",
    )
    sweep.add_argument(
        "--shape", action="append", default=None,
        help="mesh shape, e.g. 16,8,4 (repeatable; mutually exclusive with --radix/--dims)",
    )
    sweep.add_argument("--radix", type=int, default=None, help="uniform mesh radix")
    sweep.add_argument("--dims", type=int, default=None, help="uniform mesh dimensionality")
    sweep.add_argument("--mode", choices=MODES, default="simulate")
    sweep.add_argument(
        "--policies", default="limited-global",
        help="comma-separated policy names (registered routers: "
        f"{','.join(available_routers())})",
    )
    sweep.add_argument(
        "--contention", action="store_true",
        help="simulate mode: run the PCS circuit phase in every cell",
    )
    sweep.add_argument(
        "--flits", type=_parse_int_list, default=(64,),
        help="message lengths in flits (sweepable axis, e.g. 16,64,256)",
    )
    sweep.add_argument(
        "--scenarios", default=None,
        help="comma-separated traffic families (simulate mode: "
        "random,hotspot,transpose,bursty)",
    )
    sweep.add_argument("--faults", type=_parse_int_list, default=(4,), help="fault counts, e.g. 4,8")
    sweep.add_argument("--interval", type=_parse_int_list, default=(10,), help="steps between faults (d_i)")
    sweep.add_argument("--lam", type=_parse_int_list, default=(2,), help="information rounds per step (λ)")
    sweep.add_argument("--messages", type=_parse_int_list, default=(12,), help="routing messages per cell")
    sweep.add_argument("--seeds", type=_parse_int_list, default=(0,), help="replicate seeds, e.g. 0,1,2")
    sweep.add_argument(
        "--fault-rate", type=_parse_float_list, default=(0.0,),
        help="throughput mode: dynamic MTBF fault rates per step (sweepable "
        "axis, e.g. 0.0,0.02; 0 = static faults only)",
    )
    sweep.add_argument(
        "--repair-after", type=int, default=0,
        help="throughput mode: repair each dynamic fault this many steps "
        "after it occurs (0 = permanent)",
    )
    sweep.add_argument("--workers", type=int, default=1, help="worker processes (1 = serial)")
    sweep.add_argument(
        "--shard-timeout", type=float, default=None,
        help="pool inactivity budget in seconds: if no shard completes for "
        "this long the pool is abandoned and the rest runs in-process",
    )
    sweep.add_argument(
        "--engine",
        choices=ENGINES,
        default="auto",
        help="cell execution engine: 'auto' (default) shards same-shape "
        "stacked probe-table groups and serial chunks across the workers; "
        "'serial' runs one cell at a time; 'stacked' forces the lockstep "
        "probe-table engine — all three emit byte-identical JSON",
    )
    cache_group = sweep.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache", action="store_true",
        help="serve cells from the content-addressed result cache and "
        "persist misses as they land (keyed by cell parameters, seed, "
        "backend and package version)",
    )
    cache_group.add_argument(
        "--no-cache", action="store_true",
        help="force the cache off even when --cache-dir/--resume is given",
    )
    sweep.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory (implies --cache; default "
        "$REPRO_CACHE_DIR or ~/.cache/repro-mesh)",
    )
    sweep.add_argument(
        "--resume", action="store_true",
        help="resume an interrupted sweep: alias for --cache — completed "
        "cells are read back from the cache, only missing cells run",
    )
    sweep.add_argument("--name", default="sweep", help="spec name (seeds the cell derivation)")
    sweep.add_argument("--out", default=None, help="write JSON here instead of stdout")
    sweep.add_argument(
        "--telemetry-out", default=None,
        help="write the run's execution telemetry (shard timings, worker "
        "utilization, cache stats) as JSON to this separate file — the "
        "canonical sweep JSON itself never contains telemetry",
    )
    _add_backend_argument(sweep)

    report = sub.add_parser(
        "report",
        help="render an observability artifact (simulate --trace-out JSONL "
        "or sweep --telemetry-out JSON) as an ASCII report",
    )
    report.add_argument("file", help="trace (.jsonl) or telemetry (.json) file")
    report.add_argument(
        "--width", type=int, default=60, help="sparkline width in characters"
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP experiment service (repro.service): submit "
        "repro.spec/v1 payloads, stream NDJSON cell results, fetch "
        "canonical repro.result/v1 JSON",
    )
    serve.add_argument("--host", default="127.0.0.1", help="bind address")
    serve.add_argument("--port", type=int, default=8642, help="bind port (0 = auto)")
    serve.add_argument(
        "--max-running", type=int, default=2,
        help="jobs executing concurrently (forced to 1 when --workers > 1, "
        "because the process pool is shared)",
    )
    serve.add_argument(
        "--max-queued", type=int, default=16,
        help="jobs allowed to wait; submissions beyond this answer "
        "429 with Retry-After (backpressure)",
    )
    serve.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="cell execution engine for every job (same semantics as "
        "sweep --engine)",
    )
    serve.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per job (1 = in-process)",
    )
    serve_cache = serve.add_mutually_exclusive_group()
    serve_cache.add_argument(
        "--cache-dir", default=None,
        help="result-cache directory shared by all jobs (default "
        "$REPRO_CACHE_DIR or ~/.cache/repro-mesh); overlapping "
        "submissions share content-addressed entries",
    )
    serve_cache.add_argument(
        "--no-cache", action="store_true",
        help="run every job without the result cache",
    )
    serve.add_argument(
        "--shard-timeout", type=float, default=None,
        help="pool inactivity budget in seconds (same semantics as "
        "sweep --shard-timeout)",
    )
    _add_backend_argument(serve)

    throughput = sub.add_parser(
        "throughput",
        help="open-loop saturation measurement: per-policy load-latency/"
        "throughput curves (repro.throughput)",
    )
    throughput.add_argument(
        "--shape", action="append", default=None,
        help="mesh shape, e.g. 8,8 (default; mutually exclusive with --radix/--dims)",
    )
    throughput.add_argument("--radix", type=int, default=None, help="uniform mesh radix")
    throughput.add_argument("--dims", type=int, default=None, help="uniform mesh dimensionality")
    throughput.add_argument("--seed", type=int, default=0, help="random seed")
    throughput.add_argument(
        "--policy", default="limited-global",
        help="comma-separated policy names (registered routers: "
        f"{','.join(available_routers())})",
    )
    throughput.add_argument(
        "--scenario", choices=("uniform", "transpose", "hotspot"), default="uniform",
        help="open-loop spatial pattern",
    )
    throughput.add_argument(
        "--injection", choices=("bernoulli", "bursty"), default="bernoulli",
        help="open-loop injection process",
    )
    throughput.add_argument(
        "--rates", type=_parse_float_list,
        default=(0.002, 0.005, 0.01, 0.02, 0.04, 0.08),
        help="offered injection rates per node per step, e.g. 0.01,0.05",
    )
    throughput.add_argument(
        "--saturation", action="store_true",
        help="binary-search the saturation rate per policy instead of "
        "sweeping --rates",
    )
    throughput.add_argument("--faults", type=int, default=4, help="static fault count")
    throughput.add_argument(
        "--fault-rate", type=float, default=0.0,
        help="dynamic MTBF fault workload: per-step fault probability inside "
        "the measurement window (0 = static faults only)",
    )
    throughput.add_argument(
        "--repair-after", type=int, default=0,
        help="repair each dynamic fault this many steps after it occurs "
        "(0 = permanent)",
    )
    throughput.add_argument(
        "--trace-out", default=None,
        help="write the run's JSONL step trace (fault events included) here; "
        "requires a single policy and a single rate",
    )
    throughput.add_argument("--lam", type=int, default=2, help="information rounds per step (λ)")
    throughput.add_argument("--flits", type=int, default=64, help="message length in flits")
    throughput.add_argument("--warmup", type=int, default=64, help="warmup steps (uncounted)")
    throughput.add_argument("--measure", type=int, default=256, help="measurement window steps")
    throughput.add_argument("--drain", type=int, default=512, help="drain budget steps")
    throughput.add_argument("--seeds", type=_parse_int_list, default=None,
                            help="replicate seeds (defaults to --seed)")
    throughput.add_argument("--workers", type=int, default=1, help="worker processes (1 = serial)")
    throughput.add_argument("--out", default=None, help="write curve JSON here")
    _add_backend_argument(throughput)

    return parser


def _cmd_route(args: argparse.Namespace) -> int:
    mesh = _mesh_from_args(args)
    rng = np.random.default_rng(args.seed)
    source = _parse_coord(args.source, mesh.n_dims)
    destination = _parse_coord(args.destination, mesh.n_dims)
    faults = _parse_faults(args.fault, mesh.n_dims)
    if args.random_faults:
        faults += uniform_random_faults(
            mesh, args.random_faults, rng, exclude=[source, destination, *faults]
        )
    result = build_blocks(mesh, faults)
    route = resolve_router(args.policy).route(
        mesh, result.state, source, destination
    )

    print(f"mesh {mesh}, {len(faults)} faults, {len(result.blocks)} blocks")
    print(f"policy          : {args.policy}")
    print(f"outcome         : {route.outcome.value}")
    print(f"hops / minimal  : {route.hops} / {route.min_distance}")
    print(f"detours         : {route.detours}")
    print(f"backtracks      : {route.backtrack_hops}")
    return 0 if route.delivered else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    shape = _mesh_shape_from_args(args)
    if args.scenario == "hotspot":
        scenario = hotspot_scenario(
            shape=shape,
            messages=args.messages,
            dynamic_faults=args.faults,
            interval=args.interval,
            flits=args.flits,
            seed=args.seed,
        )
    elif args.scenario == "transpose":
        if len(set(shape)) != 1:
            raise argparse.ArgumentTypeError(
                "transpose traffic requires a uniform (cubic) mesh"
            )
        scenario = transpose_scenario(
            radix=shape[0],
            n_dims=len(shape),
            limit=args.messages,
            dynamic_faults=args.faults,
            interval=args.interval,
            flits=args.flits,
            seed=args.seed,
        )
    elif args.scenario == "bursty":
        scenario = bursty_scenario(
            shape=shape,
            bursts=max(1, args.messages // 6),
            burst_size=min(6, args.messages),
            dynamic_faults=args.faults,
            interval=args.interval,
            flits=args.flits,
            seed=args.seed,
        )
    else:
        scenario = random_dynamic_scenario(
            shape=shape,
            dynamic_faults=args.faults,
            interval=args.interval,
            messages=args.messages,
            seed=args.seed,
        )
    recorder = profiler = None
    if args.trace_out:
        from repro.obs import StepRecorder

        recorder = StepRecorder()
    if args.profile:
        from repro.obs import PhaseProfiler

        profiler = PhaseProfiler()
    sim = Simulator(
        scenario.mesh,
        schedule=scenario.schedule,
        traffic=list(scenario.traffic),
        config=SimulationConfig(
            lam=args.lam,
            router=args.policy,
            contention=args.contention,
        ),
        recorder=recorder,
        profiler=profiler,
    )
    stats = sim.run().stats
    print(f"scenario        : {scenario.name}")
    print(f"policy          : {args.policy}")
    for key, value in stats.summary().items():
        print(f"{key:<24}: {value:.3f}")
    if args.contention:
        utilization = contention_row(stats, scenario.mesh)["link_utilization"]
        print(f"{'link_utilization':<24}: {utilization:.3f}")
    if recorder is not None:
        from repro.obs import write_trace

        lines = write_trace(args.trace_out, sim)
        print(
            f"wrote {lines} trace records ({len(recorder)} steps) to "
            f"{args.trace_out}",
            file=sys.stderr,
        )
    if profiler is not None:
        print(profiler.report(), file=sys.stderr)
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    mesh = _mesh_from_args(args)
    faults = uniform_random_faults(mesh, args.faults, rng)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        args.messages,
        rng,
        min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )
    comparison = compare_policies(mesh, labeling, pairs)
    print(f"mesh {mesh}, {args.faults} faults, {args.messages} messages")
    print(f"{'policy':<20} {'delivery':>9} {'mean hops':>10} {'mean detours':>13}")
    for name, summary in comparison.summaries.items():
        print(
            f"{name:<20} {summary.delivery_rate:>9.2f} {summary.mean_hops:>10.2f} "
            f"{summary.mean_detours:>13.2f}"
        )
    return 0


def _cmd_convergence(args: argparse.Namespace) -> int:
    scenario = parametric_block_scenario(
        edge=args.edge, shape=_mesh_shape_from_args(args)
    )
    extent = scenario.expected_extents[0]
    measurement = measure_convergence(scenario.mesh, list(extent.iter_points()))
    print(f"mesh {scenario.mesh}, block edge {args.edge} ({extent.lo}..{extent.hi})")
    print(f"labeling rounds (a)       : {measurement.labeling_rounds}")
    print(f"identification rounds (b) : {measurement.identification_rounds}")
    print(f"boundary rounds (c)       : {measurement.boundary_rounds}")
    print(f"total / steps at λ=2      : {measurement.total_rounds} / {measurement.steps(2)}")
    return 0


def _sweep_spec_from_args(args: argparse.Namespace) -> ExperimentSpec:
    """Build the sweep's spec — from ``--spec FILE.json`` or the grid flags.

    Both paths go through :meth:`ExperimentSpec.from_dict`, so a file, an
    HTTP submission and a flag-built grid are validated identically.
    """
    if args.spec is not None:
        if args.shape or args.radix is not None or args.dims is not None:
            raise argparse.ArgumentTypeError(
                "--spec carries the whole grid; it is mutually exclusive "
                "with --shape/--radix/--dims"
            )
        import json as _json

        try:
            with open(args.spec, "r", encoding="utf-8") as handle:
                payload = _json.load(handle)
        except OSError as exc:
            raise argparse.ArgumentTypeError(f"cannot read --spec file: {exc}")
        except _json.JSONDecodeError as exc:
            raise argparse.ArgumentTypeError(f"--spec file is not valid JSON: {exc}")
        try:
            return ExperimentSpec.from_dict(payload)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc))

    shapes = _resolve_shapes(args.shape or [], args.radix, args.dims)
    scenarios: Tuple[str, ...] = ()
    if args.scenarios:
        scenarios = tuple(s.strip() for s in args.scenarios.split(",") if s.strip())
    payload = {
        "schema": SPEC_SCHEMA,
        "name": args.name,
        "mode": args.mode,
        "mesh_shapes": [list(shape) for shape in shapes],
        "policies": [p.strip() for p in args.policies.split(",") if p.strip()],
        "scenarios": list(scenarios),
        "fault_counts": list(args.faults),
        "fault_intervals": list(args.interval),
        "lams": list(args.lam),
        "traffic_sizes": list(args.messages),
        "seeds": list(args.seeds),
        "contention": args.contention,
        "flits": list(args.flits),
        "fault_rates": list(args.fault_rate),
        "repair_after": args.repair_after,
    }
    try:
        return ExperimentSpec.from_dict(payload)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = _sweep_spec_from_args(args)
    cache = None
    if (args.cache or args.resume or args.cache_dir is not None) and not args.no_cache:
        cache = (
            ResultCache(args.cache_dir) if args.cache_dir is not None else ResultCache()
        )
    print(
        f"sweep {spec.name!r}: {spec.cell_count} cells, mode={spec.mode}, "
        f"engine={args.engine}, workers={max(args.workers, 1)}"
        + (f", cache={cache.root}" if cache is not None else ""),
        file=sys.stderr,
    )
    batch = run_batch(
        spec,
        workers=args.workers,
        engine=args.engine,
        cache=cache,
        shard_timeout=args.shard_timeout,
    )
    if cache is not None:
        stats = cache.stats
        print(
            f"cache: {stats.hits} hits / {stats.lookups} lookups "
            f"({stats.hit_rate:.0%}), {stats.writes} written, "
            f"{stats.invalid} invalid entries recomputed",
            file=sys.stderr,
        )
    if args.telemetry_out:
        import json as _json

        telemetry = batch.telemetry_dict()
        with open(args.telemetry_out, "w", encoding="utf-8") as handle:
            _json.dump(telemetry, handle, sort_keys=True, indent=2)
            handle.write("\n")
        print(f"wrote sweep telemetry to {args.telemetry_out}", file=sys.stderr)
    payload = batch.to_json()
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {len(batch)} cell results to {args.out}", file=sys.stderr)
    else:
        print(payload)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import make_service

    cache_dir = None
    if not args.no_cache:
        if args.cache_dir is not None:
            cache_dir = args.cache_dir
        else:
            from repro.experiments.cache import default_cache_dir

            cache_dir = str(default_cache_dir())
    service = make_service(
        host=args.host,
        port=args.port,
        max_running=args.max_running,
        max_queued=args.max_queued,
        engine=args.engine,
        workers=args.workers,
        cache_dir=cache_dir,
        shard_timeout=args.shard_timeout,
    )
    try:
        asyncio.run(service.serve_forever())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0


def _cmd_throughput(args: argparse.Namespace) -> int:
    if args.shape:
        shapes = _resolve_shapes(args.shape, args.radix, args.dims)
    elif args.radix is not None or args.dims is not None:
        shapes = _resolve_shapes([], args.radix, args.dims)
    else:
        shapes = ((8, 8),)  # saturation curves want a modest default mesh
    if len(shapes) != 1:
        raise argparse.ArgumentTypeError(
            "throughput measures one mesh at a time; give --shape once"
        )
    (shape,) = shapes
    policies = tuple(p.strip() for p in args.policy.split(",") if p.strip())
    windows = MeasurementWindows(
        warmup=args.warmup, measure=args.measure, drain=args.drain
    )
    seeds = args.seeds if args.seeds is not None else (args.seed,)

    if args.trace_out:
        if len(policies) != 1 or len(args.rates) != 1 or args.saturation:
            raise argparse.ArgumentTypeError(
                "--trace-out records one run: give a single --policy and a "
                "single rate in --rates (and no --saturation)"
            )
        from repro.throughput import run_throughput_point

        result = run_throughput_point(
            shape,
            policies[0],
            args.scenario,
            args.rates[0],
            faults=args.faults,
            lam=args.lam,
            flits=args.flits,
            seed=seeds[0],
            injection=args.injection,
            windows=windows,
            fault_rate=args.fault_rate,
            repair_after=args.repair_after,
            trace_out=args.trace_out,
        )
        _print_curve(policies[0], [result.to_row()])
        if result.slo is not None:
            ttr = result.slo.time_to_recover
            print(
                f"  SLO over {result.fault_events} fault events: "
                f"dip {result.slo.dip_depth:.0%}, time-to-recover "
                f"{'never' if ttr < 0 else ttr}, "
                f"p99 excursion {result.slo.p99_excursion:+.0f}, "
                f"{result.fault_dropped} circuits fault-dropped"
            )
        print(f"wrote step trace to {args.trace_out}", file=sys.stderr)
        return 0

    if args.saturation:
        for policy in policies:
            rate, probed = saturation_for_policy(
                shape,
                policy,
                pattern=args.scenario,
                faults=args.faults,
                lam=args.lam,
                flits=args.flits,
                seed=seeds[0],
                injection=args.injection,
                windows=windows,
                fault_rate=args.fault_rate,
                repair_after=args.repair_after,
            )
            print(f"policy {policy}: saturation rate ~ {rate:.4f} msg/node/step")
            _print_curve(policy, [p.__dict__ for p in probed])
        return 0

    try:
        batch, curves = load_curves(
            shape,
            policies,
            args.rates,
            pattern=args.scenario,
            faults=args.faults,
            lam=args.lam,
            flits=args.flits,
            seeds=seeds,
            injection=args.injection,
            windows=windows,
            workers=args.workers,
            fault_rate=args.fault_rate,
            repair_after=args.repair_after,
        )
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc))
    rows = throughput_rows(batch)
    for policy in policies:
        _print_curve(policy, rows[policy])
        knee = curves[policy].knee()
        if knee is not None:
            print(
                f"  knee ~ rate {knee.rate:.4f} "
                f"(accepted {knee.accepted_throughput:.4f}, "
                f"mean latency {knee.mean_setup_latency:.1f})"
            )
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(batch.to_json() + "\n")
        print(f"wrote {len(batch)} cell results to {args.out}", file=sys.stderr)
    return 0


def _print_curve(policy: str, rows: Sequence[dict]) -> None:
    print(f"policy {policy}:")
    header = f"  {'rate':>8} {'offered':>9} {'accepted':>9} {'deliv':>6} {'lat':>8} {'p99':>7}"
    print(header)
    for row in rows:
        print(
            f"  {row['rate']:>8.4f} {row['offered_load']:>9.4f} "
            f"{row['accepted_throughput']:>9.4f} {row['delivery_rate']:>6.2f} "
            f"{row['mean_setup_latency']:>8.1f} {row['p99_setup_latency']:>7.0f}"
        )


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.obs.report import report_file

    try:
        print(report_file(args.file, width=args.width))
    except (OSError, ValueError) as exc:
        raise argparse.ArgumentTypeError(str(exc))
    return 0


_COMMANDS = {
    "route": _cmd_route,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "convergence": _cmd_convergence,
    "sweep": _cmd_sweep,
    "serve": _cmd_serve,
    "throughput": _cmd_throughput,
    "report": _cmd_report,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-mesh`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        _apply_backend(args)
        return _COMMANDS[args.command](args)
    except argparse.ArgumentTypeError as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover - parser.error raises SystemExit


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
