"""Command-line interface for the reproduction library.

Four subcommands cover the workflows the experiments use:

* ``repro-mesh route``       — route one source/destination pair against a
  static fault set, under any policy;
* ``repro-mesh simulate``    — run the step-synchronous simulator with a
  randomized dynamic-fault scenario and print the summary;
* ``repro-mesh compare``     — the policy-comparison table for a randomized
  static configuration;
* ``repro-mesh convergence`` — measure a/b/c for a parametric block.

The CLI is intentionally a thin veneer over the public API so that every
number it prints can also be obtained programmatically.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.convergence import measure_convergence
from repro.analysis.metrics import compare_policies
from repro.baselines.global_info import route_global_information
from repro.core.block_construction import build_blocks
from repro.core.distribution import distribute_information
from repro.core.routing import RoutingPolicy, route_offline
from repro.core.state import InformationState
from repro.faults.injection import uniform_random_faults
from repro.mesh.topology import Mesh
from repro.simulator.engine import SimulationConfig, Simulator
from repro.workloads.scenarios import parametric_block_scenario, random_dynamic_scenario
from repro.workloads.traffic import random_pairs

Coord = Tuple[int, ...]


def _parse_coord(text: str, n_dims: int) -> Coord:
    parts = [p for p in text.replace("(", "").replace(")", "").split(",") if p.strip()]
    if len(parts) != n_dims:
        raise argparse.ArgumentTypeError(
            f"expected {n_dims} comma-separated coordinates, got {text!r}"
        )
    return tuple(int(p) for p in parts)


def _parse_faults(texts: Sequence[str], n_dims: int) -> List[Coord]:
    return [_parse_coord(t, n_dims) for t in texts]


def _add_mesh_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--radix", type=int, default=10, help="nodes per dimension (k)")
    parser.add_argument("--dims", type=int, default=3, help="mesh dimensionality (n)")
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-mesh",
        description="Limited-global fault information model for n-D meshes (IPDPS 2004 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="route one message against a static fault set")
    _add_mesh_arguments(route)
    route.add_argument("--source", required=True, help="source address, e.g. 0,0,0")
    route.add_argument("--destination", required=True, help="destination address")
    route.add_argument("--fault", action="append", default=[], help="faulty node (repeatable)")
    route.add_argument("--random-faults", type=int, default=0, help="additional random faults")
    route.add_argument(
        "--policy",
        choices=("limited-global", "no-information", "global-information"),
        default="limited-global",
    )

    simulate = sub.add_parser("simulate", help="run a randomized dynamic-fault simulation")
    _add_mesh_arguments(simulate)
    simulate.add_argument("--faults", type=int, default=6, help="dynamic fault count")
    simulate.add_argument("--interval", type=int, default=15, help="steps between faults (d_i)")
    simulate.add_argument("--messages", type=int, default=12, help="routing messages")
    simulate.add_argument("--lam", type=int, default=2, help="information rounds per step (λ)")

    compare = sub.add_parser("compare", help="compare routing policies on random faults")
    _add_mesh_arguments(compare)
    compare.add_argument("--faults", type=int, default=8)
    compare.add_argument("--messages", type=int, default=20)

    convergence = sub.add_parser("convergence", help="measure a/b/c for a parametric block")
    _add_mesh_arguments(convergence)
    convergence.add_argument("--edge", type=int, default=3, help="block edge length")

    return parser


def _cmd_route(args: argparse.Namespace) -> int:
    mesh = Mesh.cube(args.radix, args.dims)
    rng = np.random.default_rng(args.seed)
    source = _parse_coord(args.source, args.dims)
    destination = _parse_coord(args.destination, args.dims)
    faults = _parse_faults(args.fault, args.dims)
    if args.random_faults:
        faults += uniform_random_faults(
            mesh, args.random_faults, rng, exclude=[source, destination, *faults]
        )
    result = build_blocks(mesh, faults)

    if args.policy == "global-information":
        route = route_global_information(mesh, result.state, source, destination)
    elif args.policy == "no-information":
        bare = InformationState(mesh=mesh, labeling=result.state)
        route = route_offline(
            bare, source, destination, policy=RoutingPolicy.no_information()
        )
    else:
        info = distribute_information(mesh, result.state)
        route = route_offline(info, source, destination)

    print(f"mesh {mesh}, {len(faults)} faults, {len(result.blocks)} blocks")
    print(f"policy          : {args.policy}")
    print(f"outcome         : {route.outcome.value}")
    print(f"hops / minimal  : {route.hops} / {route.min_distance}")
    print(f"detours         : {route.detours}")
    print(f"backtracks      : {route.backtrack_hops}")
    return 0 if route.delivered else 1


def _cmd_simulate(args: argparse.Namespace) -> int:
    scenario = random_dynamic_scenario(
        radix=args.radix,
        n_dims=args.dims,
        dynamic_faults=args.faults,
        interval=args.interval,
        messages=args.messages,
        seed=args.seed,
    )
    sim = Simulator(
        scenario.mesh,
        schedule=scenario.schedule,
        traffic=list(scenario.traffic),
        config=SimulationConfig(lam=args.lam),
    )
    stats = sim.run().stats
    print(f"scenario        : {scenario.name}")
    for key, value in stats.summary().items():
        print(f"{key:<24}: {value:.3f}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    rng = np.random.default_rng(args.seed)
    mesh = Mesh.cube(args.radix, args.dims)
    faults = uniform_random_faults(mesh, args.faults, rng)
    labeling = build_blocks(mesh, faults).state
    pairs = random_pairs(
        mesh,
        args.messages,
        rng,
        min_distance=max(2, mesh.diameter // 2),
        exclude=list(labeling.block_nodes),
    )
    comparison = compare_policies(mesh, labeling, pairs)
    print(f"mesh {mesh}, {args.faults} faults, {args.messages} messages")
    print(f"{'policy':<20} {'delivery':>9} {'mean hops':>10} {'mean detours':>13}")
    for name, summary in comparison.summaries.items():
        print(
            f"{name:<20} {summary.delivery_rate:>9.2f} {summary.mean_hops:>10.2f} "
            f"{summary.mean_detours:>13.2f}"
        )
    return 0


def _cmd_convergence(args: argparse.Namespace) -> int:
    scenario = parametric_block_scenario(args.radix, args.dims, edge=args.edge)
    extent = scenario.expected_extents[0]
    measurement = measure_convergence(scenario.mesh, list(extent.iter_points()))
    print(f"mesh {scenario.mesh}, block edge {args.edge} ({extent.lo}..{extent.hi})")
    print(f"labeling rounds (a)       : {measurement.labeling_rounds}")
    print(f"identification rounds (b) : {measurement.identification_rounds}")
    print(f"boundary rounds (c)       : {measurement.boundary_rounds}")
    print(f"total / steps at λ=2      : {measurement.total_rounds} / {measurement.steps(2)}")
    return 0


_COMMANDS = {
    "route": _cmd_route,
    "simulate": _cmd_simulate,
    "compare": _cmd_compare,
    "convergence": _cmd_convergence,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``repro-mesh`` console script."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except argparse.ArgumentTypeError as exc:
        parser.error(str(exc))
        return 2  # pragma: no cover - parser.error raises SystemExit


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
