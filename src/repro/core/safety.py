"""Safe-node condition and minimal-path reachability (Theorem 2).

Wu's safe-node theorem (quoted as Theorem 2 in the paper) states that if no
faulty block intersects the axis-aligned bounding box spanned by the source
and the destination, then the source is *safe*: a minimal path to the
destination is guaranteed as long as no new fault occurs during the routing
process.  The helpers here implement the predicate and a brute-force
minimal-path existence check used to validate it empirically.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence, Set, Tuple

from repro.core.faulty_block import FaultyBlock
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


def source_destination_box(source: Sequence[int], destination: Sequence[int]) -> Region:
    """The axis-aligned bounding box spanned by ``source`` and ``destination``.

    Theorem 2 phrases it per axis (the block intersects the section
    ``[0 : u_i]`` along each axis); intersecting every per-axis section is
    exactly intersecting this box.
    """
    lo = tuple(min(a, b) for a, b in zip(source, destination))
    hi = tuple(max(a, b) for a, b in zip(source, destination))
    return Region(lo, hi)


def is_safe_source(
    source: Sequence[int],
    destination: Sequence[int],
    blocks: Iterable[FaultyBlock | Region],
) -> bool:
    """Theorem 2: True iff no block intersects the source-destination box."""
    box = source_destination_box(source, destination)
    for block in blocks:
        extent = block.extent if isinstance(block, FaultyBlock) else block
        if box.intersects(extent):
            return False
    return True


def minimal_path_exists(
    mesh: Mesh,
    blocked_nodes: Set[Coord],
    source: Sequence[int],
    destination: Sequence[int],
) -> bool:
    """True iff a minimal (Manhattan-length) path avoiding ``blocked_nodes`` exists.

    The search only ever moves along preferred directions, so every explored
    path has exactly ``D(source, destination)`` hops; it is used by tests and
    the Theorem-2 experiment to validate :func:`is_safe_source`.
    """
    source = mesh.validate(source)
    destination = mesh.validate(destination)
    if source in blocked_nodes or destination in blocked_nodes:
        return False
    if source == destination:
        return True
    seen: Set[Coord] = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for direction in mesh.preferred_directions(node, destination):
            nxt = mesh.neighbor(node, direction)
            if nxt is None or nxt in seen or nxt in blocked_nodes:
                continue
            if nxt == destination:
                return True
            seen.add(nxt)
            frontier.append(nxt)
    return False


def shortest_path_length(
    mesh: Mesh,
    blocked_nodes: Set[Coord],
    source: Sequence[int],
    destination: Sequence[int],
) -> int | None:
    """Length of the shortest path avoiding ``blocked_nodes`` (BFS), or ``None``.

    Unlike :func:`minimal_path_exists` this allows non-minimal moves; it is
    the "ideal, full global information" reference that the global-information
    baseline and the detour metrics compare against.
    """
    source = mesh.validate(source)
    destination = mesh.validate(destination)
    if source in blocked_nodes or destination in blocked_nodes:
        return None
    if source == destination:
        return 0
    seen: Set[Coord] = {source}
    frontier = deque([(source, 0)])
    while frontier:
        node, dist = frontier.popleft()
        for neighbor in mesh.neighbors(node):
            if neighbor in seen or neighbor in blocked_nodes:
                continue
            if neighbor == destination:
                return dist + 1
            seen.add(neighbor)
            frontier.append((neighbor, dist + 1))
    return None
