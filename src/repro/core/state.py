"""Per-node fault-information state.

The limited-global model stores three kinds of information, each held only by
a *limited* set of nodes:

* node *status* (enabled / disabled / clean / faulty) — kept by every node
  for itself and refreshed from neighbors each round
  (:class:`repro.core.block_construction.LabelingState`);
* *block information* (the extent of an identified faulty block) — kept by
  the block's adjacent nodes, edge nodes and corners after the
  identification process;
* *boundary information* — kept by the nodes on the boundaries enclosing
  each dangerous area, so that a routing message is warned before it enters
  a detour region.

:class:`InformationState` bundles the three and is the single mutable object
the distributed protocols (identification, boundary construction) and the
routing algorithm operate on.  It also supports the memory-footprint
accounting used by the comparison experiments (information cells held per
node, versus a global fault table at every node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.block_construction import LabelingState
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class BlockRecord:
    """Block information as held by a node: the block's extent and a version.

    The version is a monotonically increasing generation number assigned by
    the identification process; it lets nodes discard out-of-date information
    when a block is reconstructed after a new fault or a recovery (the
    paper's cancellation of old boundaries).
    """

    extent: Region
    version: int = 0


@dataclass(frozen=True)
class BoundaryInfo:
    """Boundary information as held by a node on a block's boundary.

    Attributes
    ----------
    extent:
        The extent of the faulty block this boundary belongs to.
    dim:
        The axis of the dangerous prism enclosed by this boundary.
    dangerous_side:
        ``-1`` or ``+1``: the side of the block (along ``dim``) on which the
        dangerous prism lies.  A message in the prism whose destination lies
        beyond the block on the *other* side has no minimal path.
    version:
        Generation number matching the originating :class:`BlockRecord`.
    """

    extent: Region
    dim: int
    dangerous_side: int
    version: int = 0

    def __post_init__(self) -> None:
        if self.dangerous_side not in (-1, +1):
            raise ValueError("dangerous_side must be ±1")
        if not 0 <= self.dim < self.extent.n_dims:
            raise ValueError(f"dim {self.dim} out of range for extent {self.extent}")


@dataclass
class InformationState:
    """All fault information held across the mesh at one instant."""

    mesh: Mesh
    labeling: LabelingState
    node_blocks: Dict[Coord, Set[BlockRecord]] = field(default_factory=dict)
    node_boundaries: Dict[Coord, Set[BoundaryInfo]] = field(default_factory=dict)
    version: int = 0

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def fresh(cls, mesh: Mesh, faults: Iterable[Sequence[int]] = ()) -> "InformationState":
        """A state with the given faults and no distributed information yet."""
        return cls(mesh=mesh, labeling=LabelingState.from_faults(mesh, faults))

    # ------------------------------------------------------------------ #
    # status (routing's adjacent-fault detection reads through this)
    # ------------------------------------------------------------------ #
    def status(self, node: Sequence[int]):
        """Current labeling status of ``node`` (see :class:`NodeStatus`)."""
        return self.labeling.status(node)

    # ------------------------------------------------------------------ #
    # block information
    # ------------------------------------------------------------------ #
    def add_block_info(self, node: Sequence[int], record: BlockRecord) -> bool:
        """Store ``record`` at ``node``; returns True if it was new there."""
        node = self.mesh.validate(node)
        existing = self.node_blocks.setdefault(node, set())
        if record in existing:
            return False
        existing.add(record)
        return True

    def blocks_known_at(self, node: Sequence[int]) -> FrozenSet[BlockRecord]:
        """Block records currently held by ``node``."""
        return frozenset(self.node_blocks.get(tuple(node), set()))

    def has_block_info(self, node: Sequence[int], extent: Region) -> bool:
        """True iff ``node`` holds a record for a block with this extent."""
        return any(r.extent == extent for r in self.node_blocks.get(tuple(node), set()))

    # ------------------------------------------------------------------ #
    # boundary information
    # ------------------------------------------------------------------ #
    def add_boundary(self, node: Sequence[int], info: BoundaryInfo) -> bool:
        """Store boundary ``info`` at ``node``; returns True if it was new."""
        node = self.mesh.validate(node)
        existing = self.node_boundaries.setdefault(node, set())
        if info in existing:
            return False
        existing.add(info)
        return True

    def boundaries_at(self, node: Sequence[int]) -> FrozenSet[BoundaryInfo]:
        """Boundary records currently held by ``node``."""
        return frozenset(self.node_boundaries.get(tuple(node), set()))

    # ------------------------------------------------------------------ #
    # cancellation / garbage collection
    # ------------------------------------------------------------------ #
    def cancel_stale(self, current_extents: Iterable[Region]) -> int:
        """Remove block/boundary records whose extent no longer exists.

        Models the paper's deletion process that propagates along old
        boundaries after a block shrinks or disappears.  Returns the number
        of records removed.
        """
        live = set(current_extents)
        removed = 0
        for node in list(self.node_blocks):
            keep = {r for r in self.node_blocks[node] if r.extent in live}
            removed += len(self.node_blocks[node]) - len(keep)
            if keep:
                self.node_blocks[node] = keep
            else:
                del self.node_blocks[node]
        for node in list(self.node_boundaries):
            keep = {b for b in self.node_boundaries[node] if b.extent in live}
            removed += len(self.node_boundaries[node]) - len(keep)
            if keep:
                self.node_boundaries[node] = keep
            else:
                del self.node_boundaries[node]
        return removed

    def clear_information(self) -> None:
        """Drop every distributed record (labeling is kept)."""
        self.node_blocks.clear()
        self.node_boundaries.clear()

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def information_cells(self) -> int:
        """Total number of block/boundary records stored across the mesh.

        Used by the memory-footprint comparison: the limited-global model
        stores a handful of records near each block, whereas a global fault
        table would store (number of blocks) records at *every* node.
        """
        return sum(len(v) for v in self.node_blocks.values()) + sum(
            len(v) for v in self.node_boundaries.values()
        )

    def nodes_holding_information(self) -> Set[Coord]:
        """Nodes holding at least one block or boundary record."""
        return set(self.node_blocks) | set(self.node_boundaries)

    def bump_version(self) -> int:
        """Advance and return the information generation counter."""
        self.version += 1
        return self.version
