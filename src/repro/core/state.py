"""Per-node fault-information state.

The limited-global model stores three kinds of information, each held only by
a *limited* set of nodes:

* node *status* (enabled / disabled / clean / faulty) — kept by every node
  for itself and refreshed from neighbors each round
  (:class:`repro.core.block_construction.LabelingState`);
* *block information* (the extent of an identified faulty block) — kept by
  the block's adjacent nodes, edge nodes and corners after the
  identification process;
* *boundary information* — kept by the nodes on the boundaries enclosing
  each dangerous area, so that a routing message is warned before it enters
  a detour region.

:class:`InformationState` bundles the three and is the single mutable object
the distributed protocols (identification, boundary construction) and the
routing algorithm operate on.  It also supports the memory-footprint
accounting used by the comparison experiments (information cells held per
node, versus a global fault table at every node).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.core.block_construction import LabelingState
from repro.core.faulty_block import dangerous_prism_of_extent
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]

#: Resolved critical-routing constraint: (dangerous prism, opposite prism).
PrismPair = Tuple[Region, Region]

#: Known extent plus its one-hop frame (``extent.expand(1)``).
ExtentFrame = Tuple[Region, Region]


def resolve_routing_geometry(
    mesh: Mesh,
    boundaries: Iterable["BoundaryInfo"],
    blocks: Iterable["BlockRecord"],
) -> Tuple[Tuple[PrismPair, ...], Tuple[ExtentFrame, ...]]:
    """Resolve records into the geometry the routing classification checks.

    Returns the deduplicated (dangerous prism, opposite prism) pairs of
    every record — boundary records contribute their single dimension/side,
    block records every dimension and side — plus each known extent paired
    with its one-hop frame.  Single source of truth for the derivation: the
    per-node cache on :class:`InformationState` and the provider-agnostic
    fallback in :mod:`repro.core.routing` both call it.
    """
    triples: List[Tuple[Region, int, int]] = []
    extents: Set[Region] = set()
    for b in boundaries:
        triples.append((b.extent, b.dim, b.dangerous_side))
        extents.add(b.extent)
    for r in blocks:
        extents.add(r.extent)
        for dim in range(r.extent.n_dims):
            for side in (-1, +1):
                triples.append((r.extent, dim, side))
    pairs: Dict[PrismPair, None] = {}
    for extent, dim, side in triples:
        prism = dangerous_prism_of_extent(extent, mesh, dim, side)
        target = dangerous_prism_of_extent(extent, mesh, dim, -side)
        if prism is not None and target is not None:
            pairs[(prism, target)] = None
    frames = tuple((e, e.expand(1)) for e in sorted(extents))
    return tuple(pairs), frames


@dataclass(frozen=True)
class BlockRecord:
    """Block information as held by a node: the block's extent and a version.

    The version is a monotonically increasing generation number assigned by
    the identification process; it lets nodes discard out-of-date information
    when a block is reconstructed after a new fault or a recovery (the
    paper's cancellation of old boundaries).
    """

    extent: Region
    version: int = 0


@dataclass(frozen=True)
class BoundaryInfo:
    """Boundary information as held by a node on a block's boundary.

    Attributes
    ----------
    extent:
        The extent of the faulty block this boundary belongs to.
    dim:
        The axis of the dangerous prism enclosed by this boundary.
    dangerous_side:
        ``-1`` or ``+1``: the side of the block (along ``dim``) on which the
        dangerous prism lies.  A message in the prism whose destination lies
        beyond the block on the *other* side has no minimal path.
    version:
        Generation number matching the originating :class:`BlockRecord`.
    """

    extent: Region
    dim: int
    dangerous_side: int
    version: int = 0

    def __post_init__(self) -> None:
        if self.dangerous_side not in (-1, +1):
            raise ValueError("dangerous_side must be ±1")
        if not 0 <= self.dim < self.extent.n_dims:
            raise ValueError(f"dim {self.dim} out of range for extent {self.extent}")


@dataclass
class InformationState:
    """All fault information held across the mesh at one instant."""

    mesh: Mesh
    labeling: LabelingState
    node_blocks: Dict[Coord, Set[BlockRecord]] = field(default_factory=dict)
    node_boundaries: Dict[Coord, Set[BoundaryInfo]] = field(default_factory=dict)
    version: int = 0

    #: Count of effective record changes (adds, cancellations, clears).
    #: Together with ``labeling.mutations`` it forms the validity token the
    #: per-node decision caches key on: any information change bumps one of
    #: the two counters.
    record_mutations: int = field(default=0, compare=False)

    #: Per-node cache of the resolved routing geometry (detour constraints
    #: and extent frames), invalidated whenever the node's records change.
    #: The routing algorithm reads through :meth:`detour_constraints` /
    #: :meth:`known_extent_frames` so it stops rebuilding dangerous prisms
    #: at every hop.
    _route_cache: Dict[
        Coord, Dict[Tuple[bool, bool], Tuple[Tuple[PrismPair, ...], Tuple[ExtentFrame, ...]]]
    ] = field(default_factory=dict, repr=False, compare=False)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def fresh(cls, mesh: Mesh, faults: Iterable[Sequence[int]] = ()) -> "InformationState":
        """A state with the given faults and no distributed information yet."""
        return cls(mesh=mesh, labeling=LabelingState.from_faults(mesh, faults))

    # ------------------------------------------------------------------ #
    # status (routing's adjacent-fault detection reads through this)
    # ------------------------------------------------------------------ #
    def status(self, node: Sequence[int]):
        """Current labeling status of ``node`` (see :class:`NodeStatus`)."""
        return self.labeling.status(node)

    # ------------------------------------------------------------------ #
    # block information
    # ------------------------------------------------------------------ #
    def add_block_info(self, node: Sequence[int], record: BlockRecord) -> bool:
        """Store ``record`` at ``node``; returns True if it was new there."""
        node = self.mesh.validate(node)
        existing = self.node_blocks.setdefault(node, set())
        if record in existing:
            return False
        existing.add(record)
        self._route_cache.pop(node, None)
        self.record_mutations += 1
        return True

    def blocks_known_at(self, node: Sequence[int]) -> FrozenSet[BlockRecord]:
        """Block records currently held by ``node``."""
        return frozenset(self.node_blocks.get(tuple(node), set()))

    def has_block_info(self, node: Sequence[int], extent: Region) -> bool:
        """True iff ``node`` holds a record for a block with this extent."""
        return any(r.extent == extent for r in self.node_blocks.get(tuple(node), set()))

    # ------------------------------------------------------------------ #
    # boundary information
    # ------------------------------------------------------------------ #
    def add_boundary(self, node: Sequence[int], info: BoundaryInfo) -> bool:
        """Store boundary ``info`` at ``node``; returns True if it was new."""
        node = self.mesh.validate(node)
        existing = self.node_boundaries.setdefault(node, set())
        if info in existing:
            return False
        existing.add(info)
        self._route_cache.pop(node, None)
        self.record_mutations += 1
        return True

    def boundaries_at(self, node: Sequence[int]) -> FrozenSet[BoundaryInfo]:
        """Boundary records currently held by ``node``."""
        return frozenset(self.node_boundaries.get(tuple(node), set()))

    # ------------------------------------------------------------------ #
    # cached routing geometry
    # ------------------------------------------------------------------ #
    def _route_entry(
        self, node: Coord, use_block_info: bool, use_boundary_info: bool
    ) -> Tuple[Tuple[PrismPair, ...], Tuple[ExtentFrame, ...]]:
        per_node = self._route_cache.get(node)
        if per_node is None:
            per_node = self._route_cache[node] = {}
        key = (use_block_info, use_boundary_info)
        entry = per_node.get(key)
        if entry is None:
            boundaries = self.node_boundaries.get(node, ()) if use_boundary_info else ()
            blocks = self.node_blocks.get(node, ()) if use_block_info else ()
            entry = per_node[key] = resolve_routing_geometry(self.mesh, boundaries, blocks)
        return entry

    def routing_geometry(
        self,
        node: Sequence[int],
        *,
        use_block_info: bool = True,
        use_boundary_info: bool = True,
    ) -> Tuple[Tuple[PrismPair, ...], Tuple[ExtentFrame, ...]]:
        """The cached ``(detour constraints, extent frames)`` pair at ``node``.

        Both halves of :meth:`detour_constraints` / :meth:`known_extent_frames`
        in one lookup.  The returned tuples are identity-stable until the
        node's records change, so callers may cache work derived from them
        keyed on object identity.
        """
        return self._route_entry(tuple(node), use_block_info, use_boundary_info)

    def detour_constraints(
        self,
        node: Sequence[int],
        *,
        use_block_info: bool = True,
        use_boundary_info: bool = True,
    ) -> Tuple[PrismPair, ...]:
        """Resolved (dangerous prism, opposite prism) pairs known at ``node``.

        This is the critical-routing geometry of every block/boundary record
        the node holds, with the prisms already materialized; results are
        cached per node and invalidated when the node's records change (or
        wholesale on :meth:`cancel_stale` / :meth:`clear_information`), so a
        probe re-deciding at the node does not rebuild prisms.
        """
        return self._route_entry(tuple(node), use_block_info, use_boundary_info)[0]

    def known_extent_frames(
        self,
        node: Sequence[int],
        *,
        use_block_info: bool = True,
        use_boundary_info: bool = True,
    ) -> Tuple[ExtentFrame, ...]:
        """Known block extents at ``node`` paired with their one-hop frames.

        Cached alongside :meth:`detour_constraints`; the frame
        (``extent.expand(1)``) is what the routing algorithm checks to rank
        spare directions that walk along a known block.
        """
        return self._route_entry(tuple(node), use_block_info, use_boundary_info)[1]

    # ------------------------------------------------------------------ #
    # cancellation / garbage collection
    # ------------------------------------------------------------------ #
    def cancel_stale(self, current_extents: Iterable[Region]) -> int:
        """Remove block/boundary records whose extent no longer exists.

        Models the paper's deletion process that propagates along old
        boundaries after a block shrinks or disappears.  Returns the number
        of records removed.
        """
        live = set(current_extents)
        removed = 0
        self._route_cache.clear()
        self.record_mutations += 1
        for node in list(self.node_blocks):
            keep = {r for r in self.node_blocks[node] if r.extent in live}
            removed += len(self.node_blocks[node]) - len(keep)
            if keep:
                self.node_blocks[node] = keep
            else:
                del self.node_blocks[node]
        for node in list(self.node_boundaries):
            keep = {b for b in self.node_boundaries[node] if b.extent in live}
            removed += len(self.node_boundaries[node]) - len(keep)
            if keep:
                self.node_boundaries[node] = keep
            else:
                del self.node_boundaries[node]
        return removed

    def clear_information(self) -> None:
        """Drop every distributed record (labeling is kept)."""
        self.node_blocks.clear()
        self.node_boundaries.clear()
        self._route_cache.clear()
        self.record_mutations += 1

    # ------------------------------------------------------------------ #
    # accounting
    # ------------------------------------------------------------------ #
    def information_cells(self) -> int:
        """Total number of block/boundary records stored across the mesh.

        Used by the memory-footprint comparison: the limited-global model
        stores a handful of records near each block, whereas a global fault
        table would store (number of blocks) records at *every* node.
        """
        return sum(len(v) for v in self.node_blocks.values()) + sum(
            len(v) for v in self.node_boundaries.values()
        )

    def nodes_holding_information(self) -> Set[Coord]:
        """Nodes holding at least one block or boundary record."""
        return set(self.node_blocks) | set(self.node_boundaries)

    def bump_version(self) -> int:
        """Advance and return the information generation counter."""
        self.version += 1
        return self.version
