"""Boundary construction: distributing block information along boundaries.

For every identified block and every pair of opposite adjacent surfaces
``(S_i, S_{i+n})`` the paper builds a *boundary* enclosing the dangerous
area below ``S_i``: the prism from which all minimal paths to destinations
beyond ``S_{i+n}`` are cut by the block.  The boundary starts from the edge
nodes of ``S_i`` (excluding the corners) and propagates away from the block,
one hop per round, until it reaches the outmost surface of the mesh; when it
runs into another block it merges into that block's boundary for the same
surface and continues beyond it (Figure 3).

Two implementations are provided:

* :func:`compute_boundaries` — the converged ("oracle") result: which nodes
  end up holding which :class:`~repro.core.state.BoundaryInfo` records;
* :class:`BoundaryProtocol` — the round-driven distributed propagation used
  by the simulator, whose round count is the paper's ``c_i``.

Merging note (documented simplification): when a propagation column hits a
second block, the paper routes the information along the second block's
other adjacent surfaces before it resumes travelling away from the original
block.  Here the merge re-seeds the propagation at the second block's
corresponding boundary-start nodes carrying the original block's
information; the set of informed nodes is the same, the hand-off is counted
as a single round instead of the lateral walk around the second block, which
slightly under-counts ``c_i`` in multi-block configurations (never by more
than the second block's half-perimeter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.faulty_block import FaultyBlock, dangerous_prism_of_extent
from repro.core.state import BoundaryInfo, InformationState
from repro.mesh.directions import Direction
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


# ---------------------------------------------------------------------- #
# prism geometry (module-level mirrors of the FaultyBlock methods, usable
# with a bare extent — routing works from extents carried in records)
# ---------------------------------------------------------------------- #
def dangerous_prism(
    extent: Region, mesh: Mesh, dim: int, side: int
) -> Optional[Region]:
    """The dangerous area of ``extent`` on ``side`` of dimension ``dim``.

    See :meth:`repro.core.faulty_block.FaultyBlock.dangerous_prism`.
    """
    return dangerous_prism_of_extent(extent, mesh, dim, side)


def opposite_prism(
    extent: Region, mesh: Mesh, dim: int, side: int
) -> Optional[Region]:
    """The prism on the other side of ``extent`` from :func:`dangerous_prism`."""
    return dangerous_prism_of_extent(extent, mesh, dim, -side)


def boundary_start_nodes(
    block: FaultyBlock, mesh: Mesh, dim: int, dangerous_side: int
) -> List[Coord]:
    """Edge nodes of the adjacent surface from which the boundary starts.

    These are the nodes of the adjacent surface on ``dangerous_side`` of
    ``dim`` that sit one hop outside the block's span in exactly one *other*
    dimension (the surface's edges, corners excluded), exactly as in
    Figure 3(a).
    """
    if dangerous_side not in (-1, +1):
        raise ValueError("dangerous_side must be ±1")
    extent = block.extent
    level = extent.lo[dim] - 1 if dangerous_side < 0 else extent.hi[dim] + 1
    if level < 0 or level >= mesh.shape[dim]:
        return []
    out: List[Coord] = []
    n = extent.n_dims
    for other in range(n):
        if other == dim:
            continue
        for other_side, other_coord in ((-1, extent.lo[other] - 1), (+1, extent.hi[other] + 1)):
            if other_coord < 0 or other_coord >= mesh.shape[other]:
                continue
            # Remaining dimensions stay within the block span.
            spans = []
            for d in range(n):
                if d == dim:
                    spans.append((level, level))
                elif d == other:
                    spans.append((other_coord, other_coord))
                else:
                    spans.append(extent.span(d))
            region = Region(
                tuple(s[0] for s in spans), tuple(s[1] for s in spans)
            )
            clipped = mesh.clip_region(region)
            if clipped is None:
                continue
            out.extend(clipped.iter_points())
    return sorted(set(out))


# ---------------------------------------------------------------------- #
# converged (oracle) boundary computation
# ---------------------------------------------------------------------- #
def compute_boundaries(
    mesh: Mesh,
    blocks: Sequence[FaultyBlock],
    *,
    version: int = 0,
) -> Dict[Coord, Set[BoundaryInfo]]:
    """Converged boundary information for a set of stabilized blocks.

    Returns, for every node that ends up on some boundary, the set of
    :class:`BoundaryInfo` records it holds once every propagation has
    terminated.
    """
    protocol = BoundaryProtocol.for_blocks(
        InformationState(mesh=mesh, labeling=_labeling_from_blocks(mesh, blocks)),
        blocks,
        version=version,
    )
    protocol.run()
    return protocol.informed


def _labeling_from_blocks(mesh: Mesh, blocks: Sequence[FaultyBlock]):
    """A labeling state whose block membership matches ``blocks`` exactly."""
    from repro.core.block_construction import LabelingState
    from repro.faults.status import NodeStatus

    state = LabelingState(mesh=mesh)
    for block in blocks:
        for node in block.nodes:
            status = (
                NodeStatus.FAULTY if node in block.faulty_nodes else NodeStatus.DISABLED
            )
            state.set_status(node, status)
    return state


# ---------------------------------------------------------------------- #
# round-driven distributed propagation
# ---------------------------------------------------------------------- #
@dataclass
class _Token:
    """One boundary-propagation walker (a column of Figure 3)."""

    position: Coord
    direction: Direction
    info: BoundaryInfo


class BoundaryProtocol:
    """Distributed boundary construction, one hop per round.

    The protocol is seeded from the boundary-start nodes of one or more
    blocks (normally right after the identification back-propagation
    delivered the block record to the block's edge nodes).  Each round every
    active walker deposits its information and advances one hop away from
    the block; walkers stop at the outmost surface of the mesh and merge
    into other blocks' boundaries when they hit them.
    """

    def __init__(self, state: InformationState) -> None:
        self.state = state
        self.mesh = state.mesh
        self._tokens: List[_Token] = []
        self._rounds = 0
        self._deposited: Dict[Coord, Set[BoundaryInfo]] = {}
        #: (block extent, dim, side) combinations already merged into, used to
        #: avoid re-seeding the same boundary twice.
        self._merged: Set[Tuple[Region, Region, int, int]] = set()

    # ------------------------------------------------------------------ #
    # seeding
    # ------------------------------------------------------------------ #
    @classmethod
    def for_blocks(
        cls,
        state: InformationState,
        blocks: Sequence[FaultyBlock],
        *,
        version: int = 0,
    ) -> "BoundaryProtocol":
        """A protocol seeded with every boundary of every block in ``blocks``."""
        protocol = cls(state)
        for block in blocks:
            protocol.seed_block(block, version=version)
        return protocol

    def seed_block(self, block: FaultyBlock, *, version: int = 0) -> None:
        """Seed the propagation for every (dimension, side) boundary of ``block``."""
        for dim in range(block.n_dims):
            for side in (-1, +1):
                self.seed_boundary(block, dim, side, version=version)

    def seed_boundary(
        self, block: FaultyBlock, dim: int, dangerous_side: int, *, version: int = 0
    ) -> None:
        """Seed the propagation of one boundary of ``block``.

        The boundary for destinations beyond the block on side
        ``-dangerous_side`` encloses the dangerous prism on ``dangerous_side``;
        its walkers move away from the block (in direction
        ``(dim, dangerous_side)``).
        """
        info = BoundaryInfo(
            extent=block.extent, dim=dim, dangerous_side=dangerous_side, version=version
        )
        direction = Direction(dim, dangerous_side)
        for start in boundary_start_nodes(block, self.mesh, dim, dangerous_side):
            self._spawn(start, direction, info)

    def _spawn(self, position: Coord, direction: Direction, info: BoundaryInfo) -> None:
        if not self.mesh.contains(position):
            return
        self._tokens.append(_Token(position=position, direction=direction, info=info))

    # ------------------------------------------------------------------ #
    # protocol surface
    # ------------------------------------------------------------------ #
    @property
    def rounds(self) -> int:
        """Rounds executed so far (``c_i`` once :meth:`done`)."""
        return self._rounds

    @property
    def done(self) -> bool:
        """True when no walker is active any more."""
        return not self._tokens

    @property
    def informed(self) -> Dict[Coord, Set[BoundaryInfo]]:
        """Nodes informed so far and the records they hold."""
        return {node: set(infos) for node, infos in self._deposited.items()}

    def round(self) -> bool:
        """Advance every walker by one hop; returns True while active."""
        if not self._tokens:
            return False
        self._rounds += 1
        next_tokens: List[_Token] = []
        for token in self._tokens:
            node = token.position
            if not self.mesh.contains(node):
                continue
            status = self.state.labeling.status(node)
            if status.in_block:
                # Ran into another block: merge into its boundary for the
                # same surface (Figure 3(d)).
                self._merge_into_block(node, token)
                continue
            if self._deposit(node, token.info):
                pass
            nxt = self.mesh.neighbor(node, token.direction)
            if nxt is None:
                continue  # reached the outmost surface of the mesh
            if self.state.labeling.status(nxt).in_block:
                self._merge_into_block(nxt, token)
                continue
            next_tokens.append(_Token(nxt, token.direction, token.info))
        self._tokens = next_tokens
        return bool(self._tokens)

    def run(self, max_rounds: Optional[int] = None) -> int:
        """Run rounds to completion; returns the total number of rounds."""
        limit = max_rounds if max_rounds is not None else 4 * (self.mesh.diameter + 1)
        for _ in range(limit):
            if not self.round():
                break
        return self._rounds

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    def _deposit(self, node: Coord, info: BoundaryInfo) -> bool:
        new_here = info not in self._deposited.setdefault(node, set())
        if new_here:
            self._deposited[node].add(info)
            self.state.add_boundary(node, info)
        return new_here

    def _member_block_extent(self, node: Coord) -> Optional[Region]:
        """Extent of the stabilized block containing ``node`` (if any)."""
        from repro.core.block_construction import extract_blocks

        for block in extract_blocks(self.state.labeling):
            if block.contains(node):
                return block.extent
        return None

    def _merge_into_block(self, blocked_node: Coord, token: _Token) -> None:
        extent = self._member_block_extent(blocked_node)
        if extent is None:
            return
        key = (token.info.extent, extent, token.info.dim, token.info.dangerous_side)
        if key in self._merged:
            return
        self._merged.add(key)
        second = FaultyBlock(extent)
        # The original block's information joins the second block's boundary
        # for the same surface: re-seed walkers at the second block's
        # boundary-start nodes, carrying the original info, and also deposit
        # the info on the second block's adjacent surface facing the incoming
        # propagation so routing at those nodes sees both blocks.
        # A walker moving in +dim enters the second block through its low
        # face (surface index dim); one moving in -dim enters through its
        # high face (surface index dim + n).
        facing = second.adjacent_surface(
            token.direction.dim
            if token.direction.sign > 0
            else token.direction.dim + second.n_dims
        )
        facing_clipped = self.mesh.clip_region(facing)
        if facing_clipped is not None:
            for node in facing_clipped.iter_points():
                if not self.state.labeling.status(node).in_block:
                    self._deposit(node, token.info)
        for start in boundary_start_nodes(
            second, self.mesh, token.info.dim, token.info.dangerous_side
        ):
            self._spawn(start, token.direction, token.info)
