"""Struct-of-arrays probe engine (flat Algorithm-3 path setup).

The scalar simulator keeps one :class:`~repro.core.routing.RoutingProbe`
object per in-flight message and steps them in a Python loop.  This module
keeps *all* in-flight probes' state as flat numpy columns instead:

* the PCS stack as a ``(probes, depth_cap)`` int32 node-index matrix with a
  per-probe depth pointer (plus a parallel matrix of the link slot entered
  at each push, so backtracks release by precomputed slot);
* per-probe used-direction state as a ``(probes, size)`` uint32 bitmask
  (bit ``j`` = direction column ``j`` of :attr:`Mesh.directions`);
* outcome codes, hop/blocked/retry counters, waited flags and the full
  traversal log as further columns.

One :meth:`ProbeTable.run_step` call is then a handful of array passes:
candidates for every probe needing a decision are gathered in one
:func:`~repro.core.decision.classify_rows` call, contention-free probes
advance/backtrack by masked column writes, and contended probes run a lean
sequential scan against the :class:`~repro.pcs.circuit.ArrayCircuitLedger`
holder column (sequential because a reservation taken by probe *i* must be
visible to probe *i + 1* within the same step — exactly the scalar loop's
semantics).  Decisions, per-message paths and statistics are byte-identical
to the scalar engine; the parity suite holds the two to that.

The table is multi-cell: several simulators sharing one mesh shape can
attach to one table (the stacked sweep runner does), each with its own
information state, traffic and ledger.  Their classification tables are
concatenated along the node axis so the whole stack classifies in one pass.
"""

from __future__ import annotations

from itertools import repeat
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.decision import DecisionTables, VectorDecisionEngine, classify_rows
from repro.core.routing import RouteOutcome, RouteResult
from repro.mesh.topology import Mesh
from repro.pcs.circuit import Circuit

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for annotations
    from repro.simulator.engine import Simulator
    from repro.simulator.traffic import TrafficMessage

Coord = Tuple[int, ...]

#: Outcome codes of the ``outcome`` column.
OUTCOME_NONE = -1
OUTCOME_DELIVERED = 0
OUTCOME_UNREACHABLE = 1

_OUTCOMES = {
    OUTCOME_DELIVERED: RouteOutcome.DELIVERED,
    OUTCOME_UNREACHABLE: RouteOutcome.UNREACHABLE,
    OUTCOME_NONE: RouteOutcome.EXHAUSTED,
}


class _CellState:
    """One attached simulator: its decision engine and ledger bindings."""

    __slots__ = ("sim", "engine", "ledger", "lifetime", "carry_token")

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        # The simulator's own vector engine (shared with DecisionCache so
        # its refreshed tables serve both entry points).
        engine = sim._decision_cache._engine()
        assert isinstance(engine, VectorDecisionEngine)
        self.engine = engine
        self.ledger = sim.circuits
        self.lifetime = sim._probe_lifetime
        #: Information token of the last classification — WAIT carryover is
        #: only valid while it is unchanged (the scalar carry's contract).
        self.carry_token: Optional[Tuple[int, int]] = None


class ProbeTable:
    """All in-flight probes of one or more same-shape cells, as flat columns."""

    def __init__(self, mesh: Mesh) -> None:
        self.mesh = mesh
        n = mesh.n_dims
        self._n = n
        self._two_n = 2 * n
        self._size = mesh.size
        if self._two_n > 32:
            raise ValueError("used-direction bitmask supports at most 16 dimensions")
        self._neighbors = mesh.neighbor_table
        self._slots = mesh.link_slot_table
        self._coord_tuples = tuple(mesh.nodes())

        self._cells: List[_CellState] = []
        self._cell_count: List[int] = []
        self._offsets = np.zeros(0, dtype=np.int64)
        self._cell_is_free = np.zeros(0, dtype=bool)
        self._any_free = False
        self._any_contended = False
        self._concat_tokens: Optional[List[Tuple[int, int]]] = None
        self._concat_tables: Optional[DecisionTables] = None
        self._concat_patchable = False
        self._concat_hasc: List[bool] = []
        self._arange = np.zeros(0, dtype=np.int64)

        # -- columns (exact row count; compacted as probes finish) ---------
        self._depth_cap = 8
        self._path_cap = 16
        # High-water stack depth / path length (capacity growth triggers).
        self._hw_depth = 0
        self._hw_plen = 0
        self._cell = np.zeros(0, dtype=np.int32)
        self._src = np.zeros(0, dtype=np.int32)
        self._dest = np.zeros(0, dtype=np.int32)
        self._depth = np.zeros(0, dtype=np.int32)
        self._stack = np.zeros((0, self._depth_cap), dtype=np.int32)
        self._sslot = np.zeros((0, self._depth_cap), dtype=np.int32)
        # Reversed entry direction per stack position (-1 at the source):
        # the INCOMING surface index, so classification never reconstructs
        # it from coordinate diffs.
        self._sdir = np.full((0, self._depth_cap), -1, dtype=np.int8)
        self._used = np.zeros((0, mesh.size), dtype=np.uint32)
        self._plen = np.zeros(0, dtype=np.int32)
        self._path = np.zeros((0, self._path_cap), dtype=np.int32)
        self._fwd = np.zeros(0, dtype=np.int64)
        self._bwd = np.zeros(0, dtype=np.int64)
        self._blk = np.zeros(0, dtype=np.int64)
        self._rty = np.zeros(0, dtype=np.int64)
        self._waited = np.zeros(0, dtype=bool)
        # Ledger release-epoch at the row's last full WAIT scan (-1 = must
        # scan).  While the cell's epoch is unchanged no link was freed, so
        # a parked waiter's candidates are provably still all blocked.
        self._wepoch = np.zeros(0, dtype=np.int64)
        self._outc = np.zeros(0, dtype=np.int8)
        self._start = np.zeros(0, dtype=np.int64)
        self._life = np.zeros(0, dtype=np.int64)
        self._holder = np.zeros(0, dtype=np.int64)
        self._msgs: List["TrafficMessage"] = []
        # -- carryover candidate columns (valid while ``cand_valid``) ------
        self._cdirs = np.zeros((0, self._two_n), dtype=np.int8)
        self._cnext = np.zeros((0, self._two_n), dtype=np.int32)
        self._cslot = np.zeros((0, self._two_n), dtype=np.int32)
        # Candidate count, with rule-1 backtracks encoded as -1 (zero is a
        # genuine empty candidate list).
        self._cn = np.zeros(0, dtype=np.int16)
        self._cvalid = np.zeros(0, dtype=bool)

    # ------------------------------------------------------------------ #
    # cell management
    # ------------------------------------------------------------------ #
    def attach(self, sim: "Simulator") -> int:
        """Attach a simulator as one cell; returns its cell id."""
        if sim.mesh.shape != self.mesh.shape:
            raise ValueError(
                f"cell mesh {sim.mesh.shape} does not match table mesh {self.mesh.shape}"
            )
        cell = len(self._cells)
        self._cells.append(_CellState(sim))
        self._cell_count.append(0)
        self._offsets = np.arange(len(self._cells), dtype=np.int64) * self._size
        self._cell_is_free = np.array(
            [cs.ledger is None for cs in self._cells], dtype=bool
        )
        self._any_free = bool(self._cell_is_free.any())
        self._any_contended = not self._cell_is_free.all()
        self._concat_tokens = None
        self._concat_tables = None
        self._concat_patchable = False
        self._concat_hasc = []
        return cell

    def cell_rows(self, cell: int) -> int:
        """Number of in-flight probes of ``cell`` (O(1) — kept current by
        inject/compact, so per-step ``_work_remaining`` polls stay cheap)."""
        return self._cell_count[cell]

    def cell_messages(self, cell: int) -> Tuple["TrafficMessage", ...]:
        """Messages of ``cell`` whose probes are still in flight, in order."""
        rows = np.flatnonzero(self._cell == cell)
        return tuple(self._msgs[r] for r in rows.tolist())

    # ------------------------------------------------------------------ #
    # the step
    # ------------------------------------------------------------------ #
    def run_step(self, t: int, cells: Sequence[int], profiler=None) -> None:
        """Execute the message phase of step ``t`` for the given cells.

        Mirrors the scalar engine's phase 3 exactly: inject, release expired
        holds, decide, advance/backtrack/wait, mirror reservations, finish,
        record occupancy — in that per-cell order.  ``profiler`` (an optional
        :class:`~repro.obs.profile.PhaseProfiler`) times the pipeline's
        phases; the default ``None`` keeps the span-free path.
        """
        if profiler is not None:
            self._run_step_profiled(t, cells, profiler)
            return
        for c in cells:
            self._inject(c, t)
        for c in cells:
            ledger = self._cells[c].ledger
            if ledger is not None:
                ledger.release_expired(t)
        if len(self._cell):
            self._classify()
            self._ensure_capacity()
            fin: List[int] = []
            if self._any_free:
                self._advance_free(fin, t)
            if self._any_contended:
                self._advance_contended(fin, t)
            if fin:
                keep = np.ones(self._cell.size, dtype=bool)
                keep[fin] = False
                self._compact(np.flatnonzero(keep))
        for c in cells:
            cs = self._cells[c]
            if cs.ledger is not None:
                cs.sim.stats.record_occupancy(cs.ledger.reserved_links)

    def _run_step_profiled(self, t: int, cells: Sequence[int], prof) -> None:
        """The same step pipeline with each phase timed as a span."""
        with prof.span("source_poll"):
            for c in cells:
                self._inject(c, t)
        with prof.span("ledger_sweep"):
            for c in cells:
                ledger = self._cells[c].ledger
                if ledger is not None:
                    ledger.release_expired(t)
        if len(self._cell):
            with prof.span("decision_batch"):
                self._classify()
                self._ensure_capacity()
            fin: List[int] = []
            with prof.span("probe_advance"):
                if self._any_free:
                    self._advance_free(fin, t)
                if self._any_contended:
                    self._advance_contended(fin, t)
                if fin:
                    keep = np.ones(self._cell.size, dtype=bool)
                    keep[fin] = False
                    self._compact(np.flatnonzero(keep))
        with prof.span("occupancy"):
            for c in cells:
                cs = self._cells[c]
                if cs.ledger is not None:
                    cs.sim.stats.record_occupancy(cs.ledger.reserved_links)

    # ------------------------------------------------------------------ #
    # injection
    # ------------------------------------------------------------------ #
    def _inject(self, c: int, t: int) -> None:
        cs = self._cells[c]
        sim = cs.sim
        messages = sim._source.poll(t)
        if not messages:
            return
        index_of = self.mesh.index_of
        src = [index_of(m.source) for m in messages]
        dst = [index_of(m.destination) for m in messages]
        k = len(messages)
        holders = np.arange(sim._next_holder, sim._next_holder + k, dtype=np.int64)
        sim._next_holder += k

        src_a = np.array(src, dtype=np.int32)
        dst_a = np.array(dst, dtype=np.int32)
        stack = np.zeros((k, self._depth_cap), dtype=np.int32)
        stack[:, 0] = src_a
        path = np.zeros((k, self._path_cap), dtype=np.int32)
        path[:, 0] = src_a
        outc = np.where(src_a == dst_a, OUTCOME_DELIVERED, OUTCOME_NONE).astype(np.int8)

        self._cell = np.concatenate([self._cell, np.full(k, c, dtype=np.int32)])
        self._src = np.concatenate([self._src, src_a])
        self._dest = np.concatenate([self._dest, dst_a])
        self._depth = np.concatenate([self._depth, np.ones(k, dtype=np.int32)])
        self._stack = np.concatenate([self._stack, stack])
        self._sslot = np.concatenate(
            [self._sslot, np.zeros((k, self._depth_cap), dtype=np.int32)]
        )
        self._sdir = np.concatenate(
            [self._sdir, np.full((k, self._depth_cap), -1, dtype=np.int8)]
        )
        self._used = np.concatenate(
            [self._used, np.zeros((k, self._size), dtype=np.uint32)]
        )
        self._plen = np.concatenate([self._plen, np.ones(k, dtype=np.int32)])
        self._path = np.concatenate([self._path, path])
        zero64 = np.zeros(k, dtype=np.int64)
        self._fwd = np.concatenate([self._fwd, zero64])
        self._bwd = np.concatenate([self._bwd, zero64])
        self._blk = np.concatenate([self._blk, zero64])
        self._rty = np.concatenate([self._rty, zero64])
        self._waited = np.concatenate([self._waited, np.zeros(k, dtype=bool)])
        self._wepoch = np.concatenate([self._wepoch, np.full(k, -1, dtype=np.int64)])
        self._outc = np.concatenate([self._outc, outc])
        self._start = np.concatenate(
            [self._start, np.array([m.start_time for m in messages], dtype=np.int64)]
        )
        self._life = np.concatenate(
            [self._life, np.full(k, cs.lifetime, dtype=np.int64)]
        )
        self._holder = np.concatenate([self._holder, holders])
        self._msgs.extend(messages)
        self._cdirs = np.concatenate(
            [self._cdirs, np.zeros((k, self._two_n), dtype=np.int8)]
        )
        self._cnext = np.concatenate(
            [self._cnext, np.zeros((k, self._two_n), dtype=np.int32)]
        )
        self._cslot = np.concatenate(
            [self._cslot, np.zeros((k, self._two_n), dtype=np.int32)]
        )
        self._cn = np.concatenate([self._cn, np.zeros(k, dtype=np.int16)])
        self._cvalid = np.concatenate([self._cvalid, np.zeros(k, dtype=bool)])
        self._cell_count[c] += k
        if self._hw_depth < 1:
            self._hw_depth = 1
        if self._hw_plen < 1:
            self._hw_plen = 1

    # ------------------------------------------------------------------ #
    # classification
    # ------------------------------------------------------------------ #
    def _tables(self) -> Tuple[DecisionTables, List[Tuple[int, int]]]:
        """Per-step classification tables (concatenated for multi-cell).

        The concatenation is *patched*, not rebuilt: information tokens
        churn cell-by-cell (every identification round bumps one), and with
        many stacked cells some token changes almost every step.  Only the
        changed cell's node-axis slices — raw tables plus the packed
        composite keys and detour bits — are copied in.
        """
        if len(self._cells) == 1:
            tables, token = self._cells[0].engine.tables()
            return tables, [token]
        per: List[DecisionTables] = []
        tokens: List[Tuple[int, int]] = []
        for cs in self._cells:
            tables, token = cs.engine.tables()
            per.append(tables)
            tokens.append(token)
        old_tokens = self._concat_tokens
        if tokens == old_tokens and self._concat_tables is not None:
            return self._concat_tables, tokens
        concat = self._concat_tables
        if concat is not None and self._concat_patchable:
            size = self._size
            pk = concat.packed()
            for c, (tb, token) in enumerate(zip(per, tokens)):
                if old_tokens is not None and token == old_tokens[c]:
                    continue
                sl = slice(c * size, (c + 1) * size)
                cp = tb.packed()
                concat.node_codes[sl] = tb.node_codes
                concat.usable[sl] = tb.usable
                concat.disabled_nb[sl] = tb.disabled_nb
                concat.along[sl] = tb.along
                pk.base_key[sl] = cp.base_key
                pk.disabled_flag[sl] = cp.disabled_flag
                pk.usable_bits[sl] = cp.usable_bits
                if cp.detour_bits is not None:
                    pk.detour_bits[sl] = cp.detour_bits
                else:
                    pk.detour_bits[sl] = 0
                self._concat_hasc[c] = cp.has_constraints
            concat.has_constraints = any(self._concat_hasc)
            self._concat_tokens = tokens
            return concat, tokens
        # Full (re)build: first call, or the detour table exceeds its cap
        # (the CSR constraint arrays must then stay consistent because the
        # legacy reduceat path reads them).  Each cell's ``c_start`` entries
        # shift by the number of constraint rows of the cells before it.
        row_offset = 0
        c_start_parts = []
        for tables in per:
            c_start_parts.append(tables.c_start + row_offset)
            row_offset += tables.c_prism.shape[0]
        first = per[0]
        stacked = DecisionTables(
            node_codes=np.concatenate([tb.node_codes for tb in per]),
            usable=np.concatenate([tb.usable for tb in per]),
            disabled_nb=np.concatenate([tb.disabled_nb for tb in per]),
            along=np.concatenate([tb.along for tb in per]),
            c_start=np.concatenate(c_start_parts),
            c_count=np.concatenate([tb.c_count for tb in per]),
            c_prism=np.concatenate([tb.c_prism for tb in per]),
            c_target_lo=np.concatenate([tb.c_target_lo for tb in per]),
            c_target_hi=np.concatenate([tb.c_target_hi for tb in per]),
            dims=first.dims,
            signs=first.signs,
            perm=first.perm,
            span=first.span,
            n=first.n,
            two_n=first.two_n,
            size=first.size,
            coords=first.coords,
        )
        pk = stacked.packed()
        n_nodes = stacked.node_codes.shape[0]
        within_cap = n_nodes * self._size <= DecisionTables.DETOUR_TABLE_CAP
        if pk.detour_bits is None and within_cap:
            # No cell holds constraints yet; allocate so later per-cell
            # patches have a target (all-zero bits = no detours).
            pk.detour_bits = np.zeros((n_nodes, self._size), dtype=np.uint32)
        self._concat_patchable = pk.detour_bits is not None
        self._concat_hasc = [tb.packed().has_constraints for tb in per]
        self._concat_tokens = tokens
        self._concat_tables = stacked
        return stacked, tokens

    def _classify(self) -> None:
        """One classification pass over every row needing a decision.

        Rows that WAITed last step reuse their stored candidates while the
        cell's information token is unchanged — the scalar carry contract.
        """
        tables, tokens = self._tables()
        for c, cs in enumerate(self._cells):
            if tokens[c] != cs.carry_token:
                if cs.carry_token is not None:
                    self._cvalid[self._cell == c] = False
                cs.carry_token = tokens[c]

        # Finished-but-uncompacted rows (src == dst injections) classify
        # harmlessly — the advance checks the outcome first — so the only
        # skip worth testing for is the WAIT carry.
        sel = np.flatnonzero(~(self._waited & self._cvalid))
        if sel.size == 0:
            return
        dm1 = self._depth[sel] - 1
        cur = self._stack[sel, dm1]
        dest = self._dest[sel]
        used_bits = self._used[sel, cur]
        # Rule 1 compares positions, not stack depth: a probe that looped
        # forward back onto its source coordinate is "at source" here.
        at_source = cur == self._src[sel]
        rev = self._sdir[sel, dm1]

        if len(self._cells) > 1:
            node_idx = cur + self._offsets[self._cell[sel]]
        else:
            node_idx = cur
        backtrack, sorted_dirs, counts, _cls, _order = classify_rows(
            tables,
            node_idx,
            None,
            None,
            None,
            None,
            at_source,
            cur_idx=cur,
            dest_idx=dest,
            rev_col=rev,
            used_bits=used_bits,
            want_cls=False,
        )
        cur_col = cur[:, None]
        self._cdirs[sel] = sorted_dirs
        self._cn[sel] = np.where(backtrack, -1, counts)
        self._cnext[sel] = self._neighbors[cur_col, sorted_dirs]
        self._cslot[sel] = self._slots[cur_col, sorted_dirs]
        self._cvalid[sel] = True
        # Fresh candidates: any parked waiter here must do a full scan.
        self._wepoch[sel] = -1

    def _ensure_capacity(self) -> None:
        """Grow the stack/path matrices so one more hop always fits.

        Keyed off the high-water depth/path-length marks the advance passes
        maintain, so no per-step column reduction is needed.
        """
        if self._hw_depth + 1 >= self._depth_cap:
            new_cap = max(self._depth_cap * 2, self._hw_depth + 2)
            pad = ((0, 0), (0, new_cap - self._depth_cap))
            self._stack = np.pad(self._stack, pad)
            self._sslot = np.pad(self._sslot, pad)
            self._sdir = np.pad(self._sdir, pad)
            self._depth_cap = new_cap
        if self._hw_plen + 1 >= self._path_cap:
            new_cap = max(self._path_cap * 2, self._hw_plen + 2)
            self._path = np.pad(self._path, ((0, 0), (0, new_cap - self._path_cap)))
            self._path_cap = new_cap

    # ------------------------------------------------------------------ #
    # contention-free advance (bulk)
    # ------------------------------------------------------------------ #
    def _advance_free(self, fin: List[int], t: int) -> None:
        free_rows = self._cell_is_free[self._cell]
        act = np.flatnonzero(free_rows & (self._outc == OUTCOME_NONE))
        if act.size:
            counts = self._cn[act]
            # A non-positive count means BACKTRACK (rule-1 rows store -1,
            # and rule 1 never fires at the source, so the at-source case
            # is genuine exhaustion → UNREACHABLE).
            bt = counts <= 0
            at_src = self._depth[act] == 1
            unreach = bt & at_src
            if unreach.any():
                self._outc[act[unreach]] = OUTCOME_UNREACHABLE
            pop = bt & ~at_src
            if pop.any():
                r = act[pop]
                self._depth[r] -= 1
                self._bwd[r] += 1
                retreat = self._stack[r, self._depth[r] - 1]
                self._path[r, self._plen[r]] = retreat
                self._plen[r] += 1
            adv = ~bt
            if adv.any():
                r = act[adv]
                cur = self._stack[r, self._depth[r] - 1]
                d0 = self._cdirs[r, 0].astype(np.int64)
                self._used[r, cur] |= np.uint32(1) << d0.astype(np.uint32)
                nxt = self._cnext[r, 0]
                self._stack[r, self._depth[r]] = nxt
                self._sdir[r, self._depth[r]] = np.where(
                    d0 < self._n, d0 + self._n, d0 - self._n
                ).astype(np.int8)
                self._depth[r] += 1
                self._fwd[r] += 1
                self._path[r, self._plen[r]] = nxt
                self._plen[r] += 1
                self._hw_depth = max(self._hw_depth, int(self._depth[r].max()))
                delivered = nxt == self._dest[r]
                if delivered.any():
                    self._outc[r[delivered]] = OUTCOME_DELIVERED
            if (pop | adv).any():
                self._hw_plen = max(self._hw_plen, int(self._plen[act].max()))
        rows_all = np.flatnonzero(free_rows)
        if rows_all.size:
            done = (self._outc[rows_all] != OUTCOME_NONE) | (
                (t - self._start[rows_all]) >= self._life[rows_all]
            )
            if done.any():
                finished = rows_all[done]
                for r in finished.tolist():
                    self._finish_row(r, t)
                fin.extend(finished.tolist())

    # ------------------------------------------------------------------ #
    # contended advance (sequential, exact scalar semantics)
    # ------------------------------------------------------------------ #
    def _advance_contended(self, fin: List[int], t: int) -> None:
        """Advance every contended cell's rows in one extraction pass.

        Rows are walked grouped by cell (stable order within each cell —
        the scalar sequential-visibility contract is per cell), so the
        column extraction, the writeback and the batched matrix writes all
        happen once per step regardless of how many cells are stacked.
        """
        # Gridlock short-circuit: a cell where every in-flight row is parked
        # (waiting, release-epoch current, unexpired) cannot move, release
        # or reserve anything this step, so the whole cell's step collapses
        # to the exact counter bumps the scalar scan would make.  A single
        # non-parked row disqualifies its cell — its releases could unblock
        # parked rows mid-pass, which only the sequential walk can see.
        #
        # Single-cell fast path: the rows are the whole table, so columns
        # extract without the fancy-index copy.
        if len(self._cells) == 1:
            count_rows = self._cell.size
            if count_rows == 0:
                return
            parked = (
                self._waited
                & (self._wepoch == self._cells[0].ledger._epoch)
                & ((t - self._start) < self._life)
            )
            if parked.all():
                self._rty += 1
                self._blk += self._cn
                return
            rows = None
            if self._arange.size < count_rows:
                self._arange = np.arange(
                    max(count_rows, 2 * self._arange.size), dtype=np.int64
                )
            ridx = self._arange[:count_rows]
            rlist: Sequence[int] = range(count_rows)
            cell_stream: Iterable[int] = repeat(0)
            take = lambda a: a  # noqa: E731
        else:
            contended_row = ~self._cell_is_free[self._cell]
            epochs = np.fromiter(
                (
                    0 if cs.ledger is None else cs.ledger._epoch
                    for cs in self._cells
                ),
                dtype=np.int64,
                count=len(self._cells),
            )
            parked = (
                self._waited
                & (self._wepoch == epochs[self._cell])
                & ((t - self._start) < self._life)
            )
            counts_arr = np.bincount(self._cell, minlength=len(self._cells))
            allfast = (
                (
                    np.bincount(
                        self._cell, weights=parked, minlength=len(self._cells)
                    ).astype(np.int64)
                    == counts_arr
                )
                & (counts_arr > 0)
                & ~self._cell_is_free
            )
            if allfast.any():
                av = allfast[self._cell]
                self._rty[av] += 1
                self._blk[av] += self._cn[av]
                contended_row &= ~av
            rows_all = np.flatnonzero(contended_row)
            if rows_all.size == 0:
                return
            rows = rows_all[np.argsort(self._cell[rows_all], kind="stable")]
            ridx = rows
            rlist = rows.tolist()
            cell_stream = self._cell[rows].tolist()
            take = lambda a: a[rows]  # noqa: E731

        # The per-hop reserve/release bookkeeping is inlined against the
        # current cell's ledger columns (the scan already proved the slot
        # free or ours), with the reserved-link count batched into
        # ``res_delta`` and flushed at every cell switch and finish.
        ledger = None
        holder_col = refcount = release_col = held_map = None
        cell_epoch = 0
        cur_c = -1

        stack = self._stack
        sslot = self._sslot
        path = self._path

        depth_a = take(self._depth)
        depth_l = depth_a.tolist()
        plen_l = take(self._plen).tolist()
        fwd_l = take(self._fwd).tolist()
        bwd_l = take(self._bwd).tolist()
        blk_l = take(self._blk).tolist()
        rty_l = take(self._rty).tolist()
        waited_l = take(self._waited).tolist()
        wep_l = take(self._wepoch).tolist()
        # Per-row geometry at the pre-step depth, extracted in bulk: the
        # current node (used-bit updates), the retreat node one below it
        # (backtrack path entries) and the entry slot (backtrack releases).
        dm1 = depth_a - 1

        # Deferred matrix writes: each row moves at most one hop per step
        # and no row reads another row's stack/path/used, so the per-move
        # scalar stores batch into a few fancy-index writes after the loop.
        f_r: List[int] = []  # forward movers: row, pre-depth, pre-plen,
        f_d: List[int] = []  # next node, slot taken, direction, from-node
        f_p: List[int] = []
        f_nxt: List[int] = []
        f_slot: List[int] = []
        f_dir: List[int] = []
        f_cur: List[int] = []
        b_r: List[int] = []  # backtrackers: row, pre-plen, retreat node
        b_p: List[int] = []
        b_ret: List[int] = []
        rs_r: List[int] = []  # restarters: used mask clears
        res_delta = 0
        hw_d = 0
        hw_p = 0

        # One zip stream per read-only column: iterating fourteen parallel
        # lists through a single zip is markedly cheaper than fourteen
        # ``lst[i]`` index expressions per row.  depth/plen appear both in
        # the stream (pre-step values — each row only mutates its own index,
        # after zip has already read it) and as mutable lists for writeback.
        stream = zip(
            rlist,
            cell_stream,
            take(self._outc).tolist(),
            depth_l,
            plen_l,
            take(self._cn).tolist(),
            take(self._holder).tolist(),
            take(self._dest).tolist(),
            take(self._cslot).tolist(),
            take(self._cnext).tolist(),
            take(self._cdirs).tolist(),
            ((t - take(self._start)) >= take(self._life)).tolist(),
            stack[ridx, dm1].tolist(),
            stack[ridx, np.maximum(dm1 - 1, 0)].tolist(),
            sslot[ridx, dm1].tolist(),
        )
        for i, (r, c, outcome, depth, plen, count, mine, dest, row_slots,
                row_next, row_dirs, expired, cur, ret, tslot) in enumerate(
                    stream):
            if c != cur_c:
                if res_delta:
                    ledger._reserved_count += res_delta
                    res_delta = 0
                ledger = self._cells[c].ledger
                holder_col = ledger._holder
                refcount = ledger._refcount
                release_col = ledger._release
                held_map = ledger._held
                cell_epoch = ledger._epoch
                cur_c = c
            moved = 0
            if outcome == OUTCOME_NONE:
                if waited_l[i] and wep_l[i] == cell_epoch:
                    # Parked waiter: no link in this cell was freed since its
                    # last full scan (and its candidates are unchanged), so
                    # every candidate is provably still blocked.  The scalar
                    # scan would re-count the same blocks and wait again.
                    rty_l[i] += 1
                    blk_l[i] += count
                    if expired:
                        self._outc[r] = outcome
                        self._blk[r] = blk_l[i]
                        self._rty[r] = rty_l[i]
                        ledger._reserved_count += res_delta
                        res_delta = 0
                        self._finish_row(r, t)
                        cell_epoch = ledger._epoch
                        fin.append(r)
                    continue
                stay = False  # WAIT or RESTART: no move, but expiry still runs
                decision_backtrack = False
                if count <= 0:
                    if count == 0 and depth == 1 and (blk_l[i] or rty_l[i]):
                        # RESTART: exhaustion contaminated by reservations.
                        rs_r.append(r)
                        rty_l[i] += 1
                        waited_l[i] = False
                        stay = True
                    else:
                        decision_backtrack = True
                else:
                    forward = -1
                    blocked = 0
                    for j in range(count):
                        owner = holder_col[row_slots[j]]
                        if owner >= 0 and owner != mine:
                            blocked += 1
                            continue
                        forward = j
                        break
                    if blocked:
                        blk_l[i] += blocked
                    if forward < 0:
                        rty_l[i] += 1
                        if depth == 1:
                            waited_l[i] = True  # WAIT: nothing to release
                            wep_l[i] = cell_epoch  # park until a release
                            stay = True
                        else:
                            decision_backtrack = True
                if not stay:
                    waited_l[i] = False
                    if decision_backtrack:
                        if depth == 1:
                            outcome = OUTCOME_UNREACHABLE
                        else:
                            # Inline ledger.release_slot(mine, entry slot).
                            slot = tslot
                            held = held_map.get(mine)
                            if held is not None and slot in held:
                                rc = refcount[slot] - 1
                                if rc <= 0:
                                    refcount[slot] = 0
                                    if release_col[slot] != -1:
                                        release_col[slot] = -1
                                    held.discard(slot)
                                    if holder_col[slot] == mine:
                                        holder_col[slot] = -1
                                        res_delta -= 1
                                        ledger._epoch += 1
                                        cell_epoch += 1
                                    if not held:
                                        del held_map[mine]
                                else:
                                    refcount[slot] = rc
                            depth_l[i] = depth - 1
                            bwd_l[i] += 1
                            moved = 2
                            b_r.append(r)
                            b_p.append(plen)
                            b_ret.append(ret)
                            p1 = plen + 1
                            plen_l[i] = p1
                            if p1 > hw_p:
                                hw_p = p1
                    else:
                        slot = row_slots[forward]
                        nxt = row_next[forward]
                        moved = 1
                        f_r.append(r)
                        f_d.append(depth)
                        f_p.append(plen)
                        f_nxt.append(nxt)
                        f_slot.append(slot)
                        f_dir.append(row_dirs[forward])
                        f_cur.append(cur)
                        d1 = depth + 1
                        depth_l[i] = d1
                        if d1 > hw_d:
                            hw_d = d1
                        fwd_l[i] += 1
                        p1 = plen + 1
                        plen_l[i] = p1
                        if p1 > hw_p:
                            hw_p = p1
                        # Inline ledger.reserve_slot(mine, slot): the scan
                        # above proved the slot free or already ours.
                        if holder_col[slot] < 0:
                            holder_col[slot] = mine
                            res_delta += 1
                        held = held_map.get(mine)
                        if held is None:
                            held_map[mine] = {slot}
                        else:
                            held.add(slot)
                        refcount[slot] += 1
                        if nxt == dest:
                            outcome = OUTCOME_DELIVERED
            if outcome != OUTCOME_NONE or expired:
                # Finish inline: sync this row's columns and pending matrix
                # writes first (the record and circuit read them), then the
                # finish releases — a delivery's excursion links (or a
                # failure's whole circuit) free up for probes later in this
                # loop.
                self._outc[r] = outcome
                self._depth[r] = depth_l[i]
                self._plen[r] = plen_l[i]
                self._fwd[r] = fwd_l[i]
                self._bwd[r] = bwd_l[i]
                self._blk[r] = blk_l[i]
                self._rty[r] = rty_l[i]
                if moved == 1:
                    stack[r, depth] = f_nxt[-1]
                    sslot[r, depth] = f_slot[-1]
                    path[r, plen] = f_nxt[-1]
                elif moved == 2:
                    path[r, plen] = b_ret[-1]
                ledger._reserved_count += res_delta
                res_delta = 0
                self._finish_row(r, t)
                # The finish may have released the row's circuit links;
                # parked waiters later in this pass must see that.
                cell_epoch = ledger._epoch
                fin.append(r)

        # ``outc`` never changes for surviving rows (every outcome
        # assignment finishes the row inline above), so it needs no
        # writeback.
        if rows is None:
            self._depth[:] = depth_l
            self._plen[:] = plen_l
            self._fwd[:] = fwd_l
            self._bwd[:] = bwd_l
            self._blk[:] = blk_l
            self._rty[:] = rty_l
            self._waited[:] = waited_l
            self._wepoch[:] = wep_l
        else:
            self._depth[rows] = depth_l
            self._plen[rows] = plen_l
            self._fwd[rows] = fwd_l
            self._bwd[rows] = bwd_l
            self._blk[rows] = blk_l
            self._rty[rows] = rty_l
            self._waited[rows] = waited_l
            self._wepoch[rows] = wep_l

        n = self._n
        if f_r:
            fr = np.array(f_r, dtype=np.int64)
            fd = np.array(f_d, dtype=np.int64)
            fdir = np.array(f_dir, dtype=np.int64)
            nx = np.array(f_nxt, dtype=np.int32)
            self._used[fr, f_cur] |= (np.uint32(1) << fdir).astype(np.uint32)
            stack[fr, fd] = nx
            sslot[fr, fd] = np.array(f_slot, dtype=np.int32)
            self._sdir[fr, fd] = np.where(fdir < n, fdir + n, fdir - n).astype(
                np.int8
            )
            path[fr, f_p] = nx
        if b_r:
            path[np.array(b_r, dtype=np.int64), b_p] = np.array(
                b_ret, dtype=np.int32
            )
        if rs_r:
            self._used[np.array(rs_r, dtype=np.int64)] = 0
        ledger._reserved_count += res_delta
        if hw_d > self._hw_depth:
            self._hw_depth = hw_d
        if hw_p > self._hw_plen:
            self._hw_plen = hw_p

    # ------------------------------------------------------------------ #
    # finishing
    # ------------------------------------------------------------------ #
    def _row_result(self, r: int) -> RouteResult:
        coords = self._coord_tuples
        source = coords[self._src[r]]
        destination = coords[self._dest[r]]
        return RouteResult(
            outcome=_OUTCOMES[int(self._outc[r])],
            path=[coords[i] for i in self._path[r, : self._plen[r]].tolist()],
            source=source,
            destination=destination,
            min_distance=self.mesh.distance(source, destination),
            forward_hops=int(self._fwd[r]),
            backtrack_hops=int(self._bwd[r]),
            blocked_hops=int(self._blk[r]),
            setup_retries=int(self._rty[r]),
        )

    def _finish_row(self, r: int, t: int) -> None:
        """Record one finished row, mirroring the scalar finish order."""
        cs = self._cells[self._cell[r]]
        sim = cs.sim
        message = self._msgs[r]
        record = sim._finish_table_row(message, self._row_result(r), finish_step=t)
        if sim._message_finished is not None:
            sim._message_finished(record)
        ledger = cs.ledger
        if ledger is not None:
            holder = int(self._holder[r])
            if self._outc[r] == OUTCOME_DELIVERED:
                coords = self._coord_tuples
                circuit = Circuit.from_stack(
                    [coords[i] for i in self._stack[r, : self._depth[r]].tolist()]
                )
                ledger.sync(holder, circuit.path)
                hold = sim.config.transfer.hold_steps(circuit, message.flits)
                ledger.hold_until(holder, t + hold)
                sim.stats.circuits_reserved += 1
            else:
                ledger.release(holder)

    def flush_cell(self, cell: int) -> None:
        """Flush ``cell``'s in-flight probes (step budget ran out).

        Mirrors the scalar :meth:`Simulator.run` tail: each probe is
        recorded with no finish step (no source feedback), its reservations
        released, and its row removed.
        """
        rows = np.flatnonzero(self._cell == cell)
        if rows.size == 0:
            return
        cs = self._cells[cell]
        sim = cs.sim
        for r in rows.tolist():
            sim._finish_table_row(self._msgs[r], self._row_result(r), finish_step=None)
            if cs.ledger is not None:
                cs.ledger.release(int(self._holder[r]))
        keep = np.ones(len(self._cell), dtype=bool)
        keep[rows] = False
        self._compact(np.flatnonzero(keep))

    def teardown_node(self, cell: int, node: Coord, t: int) -> None:
        """Tear down ``cell``'s rows standing on or routed through ``node``.

        The fault-event counterpart of the scalar engine's probe sweep
        (``Simulator._teardown_node``): rows whose stack crosses the failed
        node finish EXHAUSTED in insertion order, with the usual source
        feedback and ledger release through the normal finish path — so the
        flat-column engine stays byte-identical to the per-object one.
        """
        rows = np.flatnonzero(self._cell == cell)
        if rows.size == 0:
            return
        node_idx = self.mesh.index_of(node)
        depth = self._depth[rows]
        onstack = (self._stack[rows] == node_idx) & (
            np.arange(self._depth_cap)[None, :] < depth[:, None]
        )
        doomed = rows[onstack.any(axis=1)]
        if doomed.size == 0:
            return
        for r in doomed.tolist():
            self._finish_row(r, t)
        keep = np.ones(len(self._cell), dtype=bool)
        keep[doomed] = False
        self._compact(np.flatnonzero(keep))

    def _compact(self, keep: np.ndarray) -> None:
        self._cell = self._cell[keep]
        self._src = self._src[keep]
        self._dest = self._dest[keep]
        self._depth = self._depth[keep]
        self._stack = self._stack[keep]
        self._sslot = self._sslot[keep]
        self._sdir = self._sdir[keep]
        self._used = self._used[keep]
        self._plen = self._plen[keep]
        self._path = self._path[keep]
        self._fwd = self._fwd[keep]
        self._bwd = self._bwd[keep]
        self._blk = self._blk[keep]
        self._rty = self._rty[keep]
        self._waited = self._waited[keep]
        self._wepoch = self._wepoch[keep]
        self._outc = self._outc[keep]
        self._start = self._start[keep]
        self._life = self._life[keep]
        self._holder = self._holder[keep]
        self._msgs = [self._msgs[i] for i in keep.tolist()]
        self._cdirs = self._cdirs[keep]
        self._cnext = self._cnext[keep]
        self._cslot = self._cslot[keep]
        self._cn = self._cn[keep]
        self._cvalid = self._cvalid[keep]
        self._cell_count = np.bincount(
            self._cell, minlength=len(self._cells)
        ).tolist()
