"""Vectorized per-probe decision engine (batched Algorithm 3 classification).

The scalar decision path (:func:`repro.core.routing.classify_directions` /
:func:`~repro.core.routing.decision_candidates`) classifies one probe's
outgoing directions with Python loops over the node's neighbors, the known
detour constraints and the known extent frames.  At high load the simulator
steps dozens of probes per simulation step, and that per-probe loop is the
dominant cost of the contended step loop.

:class:`VectorDecisionEngine` re-expresses the whole classification as
batched numpy array operations over the flat representations the previous
vectorization rounds produced:

* node statuses — :attr:`LabelingState.codes` (flat ``int8`` code array),
* adjacency — :attr:`Mesh.neighbor_table` / :attr:`Mesh.neighbor_gather_table`
  (the ``(size, 2n)`` surface-order neighbor stencil),
* routing geometry — the per-node detour constraints and extent frames,
  compiled once per information generation into flat constraint tables.

One :meth:`batch_candidates` call classifies *every* pending probe's
candidate directions in one pass: per-node masks (usable, disabled-neighbor,
spare-along-block) are gathered by node index, the destination-dependent
parts (preferred directions, detour demotion, remaining-offset ordering) are
computed for the whole batch at once, and a single stable argsort recovers
exactly the scalar priority order.  The output is **byte-identical** to
running the scalar :func:`~repro.core.routing.decision_candidates` per
header — the randomized parity suite holds the two to that.

The engine is keyed on the same validity token as
:class:`~repro.core.routing.DecisionCache` (labeling mutation counter +
record mutation counter): the per-node tables are rebuilt only when the
fault information actually changes, which at steady state means once for a
whole run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.routing import (
    DirectionClass,
    InformationProvider,
    ProbeHeader,
    RoutingPolicy,
    _routing_geometry,
)
from repro.faults.status import NodeStatus
from repro.mesh.directions import Direction

Coord = Tuple[int, ...]

#: A precomputed candidate: the outgoing direction, its next-hop node and
#: the canonical link slot of the hop (:meth:`Mesh.link_index`), so the
#: contended scan can probe the reservation ledger's holder column directly.
CandidatePair = Tuple[Direction, Coord, int]

_DISABLED = NodeStatus.DISABLED.code
_FAULTY = NodeStatus.FAULTY.code

#: Pseudo-class for directions excluded from the candidate list (off-mesh,
#: faulty neighbor, or already used); sorts after every real class.
_SKIP = len(DirectionClass)

_CLASSES: Tuple[DirectionClass, ...] = tuple(DirectionClass)

_PREFERRED = int(DirectionClass.PREFERRED)
_SPARE_ALONG_BLOCK = int(DirectionClass.SPARE_ALONG_BLOCK)
_PREFERRED_DETOUR = int(DirectionClass.PREFERRED_DETOUR)
_SPARE = int(DirectionClass.SPARE)
_DISABLED_NEIGHBOR = int(DirectionClass.DISABLED_NEIGHBOR)
_INCOMING = int(DirectionClass.INCOMING)


class VectorDecisionEngine:
    """Batched, numpy-backed Algorithm-3 direction classification.

    Built over one information provider and one policy, exactly like a
    :class:`~repro.core.routing.DecisionCache` — and normally reached
    *through* one (``DecisionCache.batch_candidates``), so callers never
    choose an implementation by hand.  Requires the provider to expose a
    code-array-backed ``labeling`` and ``nodes_holding_information()``
    (:class:`~repro.core.state.InformationState` does).
    """

    def __init__(self, info: InformationProvider, policy: RoutingPolicy) -> None:
        self.info = info
        self.policy = policy
        mesh = info.mesh
        self.mesh = mesh
        self._labeling = info.labeling  # type: ignore[attr-defined]
        self._has_record_mutations = hasattr(info, "record_mutations")

        n = mesh.n_dims
        self._n = n
        self._two_n = 2 * n
        dirs = mesh.directions
        #: Per surface-order direction: its dimension and sign, as columns.
        self._dims = np.array([d.dim for d in dirs], dtype=np.int64)
        self._signs = np.array([d.sign for d in dirs], dtype=np.int64)
        #: Direction indices re-ordered by ``(dim, sign)`` — the scalar
        #: tie-break order inside one priority class.
        self._perm = np.array(
            sorted(range(2 * n), key=lambda j: (dirs[j].dim, dirs[j].sign)),
            dtype=np.int64,
        )
        self._span = max(mesh.shape)
        #: Row-major strides, so ``coords @ strides`` is the linear index.
        strides = [1] * n
        for d in range(n - 2, -1, -1):
            strides[d] = strides[d + 1] * mesh.shape[d + 1]
        self._strides = np.array(strides, dtype=np.int64)

        #: Per node (linear index), per direction: the shared
        #: ``(direction, neighbor, link slot)`` triple handed out in
        #: candidate lists (``None`` off-mesh — never selected, the skip
        #: mask covers it).
        self._pairs: List[List[Optional[CandidatePair]]] = [
            [
                (d, nb, mesh.link_index(node, nb))
                if (nb := mesh.neighbor(node, d)) is not None
                else None
                for d in dirs
            ]
            for node in (mesh.coord_of(i) for i in range(mesh.size))
        ]

        self._token: Optional[Tuple[int, int]] = None

    # ------------------------------------------------------------------ #
    # per-information-generation tables
    # ------------------------------------------------------------------ #
    def _validity_token(self) -> Tuple[int, int]:
        return (
            self._labeling.mutations,
            self.info.record_mutations if self._has_record_mutations else -1,  # type: ignore[attr-defined]
        )

    def _refresh(self) -> None:
        """Rebuild the per-node tables for the current information state."""
        mesh = self.mesh
        info = self.info
        policy = self.policy
        size = mesh.size
        two_n = self._two_n

        codes = np.asarray(self._labeling.codes)
        self._node_codes = codes
        padded = np.empty(size + 1, dtype=codes.dtype)
        padded[:size] = codes
        padded[size] = 0  # off-mesh sentinel: an always-enabled neighbor
        neighbor_codes = padded[mesh.neighbor_gather_table]
        in_mesh = mesh.neighbor_table >= 0
        usable = in_mesh & (neighbor_codes != _FAULTY)
        self._usable = usable
        if policy.avoid_known_disabled:
            self._disabled_nb = usable & (neighbor_codes == _DISABLED)
        else:
            self._disabled_nb = np.zeros((size, two_n), dtype=bool)

        # Routing geometry, compiled flat.  Only nodes holding records have
        # any: ``along_block`` marks directions whose neighbor walks along a
        # known block's frame, and the constraint table packs every node's
        # (dangerous prism, opposite prism) pairs as contiguous rows.
        along = np.zeros((size, two_n), dtype=bool)
        c_start = np.zeros(size, dtype=np.int64)
        c_count = np.zeros(size, dtype=np.int64)
        prism_rows: List[List[bool]] = []
        target_lo: List[Sequence[int]] = []
        target_hi: List[Sequence[int]] = []
        if policy.use_block_info or policy.use_boundary_info:
            dirs = mesh.directions
            for node in sorted(info.nodes_holding_information()):  # type: ignore[attr-defined]
                constraints, frames = _routing_geometry(info, node, policy)
                if not constraints and not frames:
                    continue
                idx = mesh.index_of(node)
                if frames:
                    for j, d in enumerate(dirs):
                        nb = d.apply(node)
                        along[idx, j] = any(
                            frame.contains(nb) and not extent.contains(nb)
                            for extent, frame in frames
                        )
                if constraints:
                    c_start[idx] = len(prism_rows)
                    c_count[idx] = len(constraints)
                    for prism, target in constraints:
                        prism_rows.append([prism.contains(d.apply(node)) for d in dirs])
                        target_lo.append(target.lo)
                        target_hi.append(target.hi)
        self._along = along
        self._c_start = c_start
        self._c_count = c_count
        if prism_rows:
            self._c_prism = np.array(prism_rows, dtype=bool)
            self._c_target_lo = np.array(target_lo, dtype=np.int64)
            self._c_target_hi = np.array(target_hi, dtype=np.int64)
        else:
            self._c_prism = np.zeros((0, two_n), dtype=bool)
            self._c_target_lo = np.zeros((0, self._n), dtype=np.int64)
            self._c_target_hi = np.zeros((0, self._n), dtype=np.int64)

    # ------------------------------------------------------------------ #
    # the batched classification
    # ------------------------------------------------------------------ #
    def _batch(
        self, headers: Sequence[ProbeHeader]
    ) -> Tuple[List[int], List[bool], List[List[int]], List[int], np.ndarray]:
        """Classify and order every header's directions in one pass.

        Returns ``(node_idx, backtrack, sorted_dirs, counts, sorted_cls)``:
        per header, its node's linear index, whether rule 1 forces an
        unconditional backtrack (``decision_candidates`` → ``None``), the
        direction indices in priority order, how many of them are real
        candidates (the rest are skipped directions sorted to the back) and
        the matching class codes.
        """
        token = self._validity_token()
        if token != self._token:
            self._refresh()
            self._token = token

        n = self._n
        two_n = self._two_n
        P = len(headers)
        # One row per probe: current node, previous stack node (= current
        # when the probe holds no link yet) and destination, concatenated so
        # a single array build covers all three.
        rows = np.array(
            [
                h.stack[-1]
                + (h.stack[-2] if len(h.stack) > 1 else h.stack[-1])
                + h.destination
                for h in headers
            ],
            dtype=np.int64,
        )
        cur = rows[:, :n]
        prev = rows[:, n : 2 * n]
        dest = rows[:, 2 * n :]
        node_idx = cur @ self._strides

        # Preferred directions and the remaining-offset ordering key.
        delta = dest - cur
        dd = delta[:, self._dims]
        pref = (dd * self._signs) > 0
        remaining = np.abs(dd)

        # Incoming direction, reversed: the link the probe arrived over.
        diff = cur - prev
        moved = diff != 0
        has_in = moved.any(axis=1)
        in_dim = moved.argmax(axis=1)
        in_sign = diff[np.arange(P), in_dim]
        # Reversed direction (dim, -sign): surface index dim when the
        # reversed sign is negative (sign > 0), dim + n otherwise.
        rev_col = np.where(in_sign > 0, in_dim, in_dim + n)
        inc_mask = np.zeros((P, two_n), dtype=bool)
        entered = np.flatnonzero(has_in)
        inc_mask[entered, rev_col[entered]] = True

        # Used directions and the rule-1 source check (cheap header reads).
        used_mask = np.zeros((P, two_n), dtype=bool)
        at_source: List[bool] = []
        for g, h in enumerate(headers):
            stack = h.stack
            at_source.append(stack[0] == stack[-1])
            used = h.used.get(stack[-1])
            if used:
                for d in used:
                    used_mask[g, d.dim + (n if d.sign > 0 else 0)] = True

        # Detour demotion: preferred directions entering a dangerous prism
        # while the destination lies in the opposite prism.  Only probes at
        # constraint-holding nodes contribute rows.
        counts = self._c_count[node_idx]
        detour = np.zeros((P, two_n), dtype=bool)
        if counts.any():
            sel = np.flatnonzero(counts)
            cnts = counts[sel]
            total = int(cnts.sum())
            seg_starts = np.cumsum(cnts) - cnts
            reps = np.repeat(np.arange(sel.size), cnts)
            rows_c = np.repeat(self._c_start[node_idx[sel]], cnts) + (
                np.arange(total) - np.repeat(seg_starts, cnts)
            )
            d_sel = dest[sel][reps]
            in_target = np.all(d_sel >= self._c_target_lo[rows_c], axis=1) & np.all(
                d_sel <= self._c_target_hi[rows_c], axis=1
            )
            hit = in_target[:, None] & self._c_prism[rows_c]
            detour[sel] = np.logical_or.reduceat(hit, seg_starts, axis=0)

        # Class assignment, lowest priority first so later writes override
        # exactly in the scalar if/elif order (incoming > disabled-neighbor
        # > preferred(-detour) > spare(-along-block)).
        cls = np.where(self._along[node_idx], _SPARE_ALONG_BLOCK, _SPARE)
        cls = np.where(pref & detour, _PREFERRED_DETOUR, cls)
        cls = np.where(pref & ~detour, _PREFERRED, cls)
        cls = np.where(self._disabled_nb[node_idx], _DISABLED_NEIGHBOR, cls)
        cls = np.where(inc_mask, _INCOMING, cls)
        cls = np.where(self._usable[node_idx] & ~used_mask, cls, _SKIP)

        # Priority order: (class, -remaining within PREFERRED, dim, sign).
        # The (dim, sign) tie-break comes from pre-permuting the columns and
        # using a stable sort on the composite scalar key.
        span = self._span
        composite = cls * (span + 1) + np.where(cls == _PREFERRED, span - remaining, span)
        perm = self._perm
        order = np.argsort(composite[:, perm], axis=1, kind="stable")
        sorted_dirs = perm[order]
        valid = (cls != _SKIP).sum(axis=1)

        backtrack = (
            (self._node_codes[node_idx] == _DISABLED) & ~np.array(at_source, dtype=bool)
        ).tolist()
        return node_idx.tolist(), backtrack, sorted_dirs.tolist(), valid.tolist(), (cls, order)

    def batch_candidate_pairs(
        self, headers: Sequence[ProbeHeader]
    ) -> List[Optional[List[CandidatePair]]]:
        """Per header: the ordered ``(direction, next hop, link slot)`` candidates.

        ``None`` mirrors :func:`~repro.core.routing.decision_candidates`
        returning ``None`` (rule 1: disabled node away from the source).
        The triples are shared per-mesh tuples, so a batch allocates only
        the per-header lists.  This is the form the simulator's batched
        step loop consumes.
        """
        if not headers:
            return []
        node_idx, backtrack, sorted_dirs, counts, _ = self._batch(headers)
        pairs = self._pairs
        out: List[Optional[List[CandidatePair]]] = []
        for g in range(len(headers)):
            if backtrack[g]:
                out.append(None)
                continue
            node_pairs = pairs[node_idx[g]]
            row = sorted_dirs[g]
            out.append([node_pairs[row[j]] for j in range(counts[g])])  # type: ignore[misc]
        return out

    def batch_candidates(
        self, headers: Sequence[ProbeHeader]
    ) -> List[Optional[List[Tuple[DirectionClass, Direction]]]]:
        """Per header: the classified candidate list of one decision step.

        Byte-identical to calling
        :func:`~repro.core.routing.decision_candidates` per header against
        the same information — the parity suite asserts exactly that.
        """
        if not headers:
            return []
        _, backtrack, sorted_dirs, counts, (cls, order) = self._batch(headers)
        sorted_cls = np.take_along_axis(cls[:, self._perm], order, axis=1).tolist()
        dirs = self.mesh.directions
        out: List[Optional[List[Tuple[DirectionClass, Direction]]]] = []
        for g in range(len(headers)):
            if backtrack[g]:
                out.append(None)
                continue
            row_d = sorted_dirs[g]
            row_c = sorted_cls[g]
            out.append(
                [(_CLASSES[row_c[j]], dirs[row_d[j]]) for j in range(counts[g])]
            )
        return out
