"""Vectorized per-probe decision engine (batched Algorithm 3 classification).

The scalar decision path (:func:`repro.core.routing.classify_directions` /
:func:`~repro.core.routing.decision_candidates`) classifies one probe's
outgoing directions with Python loops over the node's neighbors, the known
detour constraints and the known extent frames.  At high load the simulator
steps dozens of probes per simulation step, and that per-probe loop is the
dominant cost of the contended step loop.

:class:`VectorDecisionEngine` re-expresses the whole classification as
batched numpy array operations over the flat representations the previous
vectorization rounds produced:

* node statuses — :attr:`LabelingState.codes` (flat ``int8`` code array),
* adjacency — :attr:`Mesh.neighbor_table` / :attr:`Mesh.neighbor_gather_table`
  (the ``(size, 2n)`` surface-order neighbor stencil),
* routing geometry — the per-node detour constraints and extent frames,
  compiled once per information generation into flat constraint tables.

One :meth:`batch_candidates` call classifies *every* pending probe's
candidate directions in one pass: per-node masks (usable, disabled-neighbor,
spare-along-block) are gathered by node index, the destination-dependent
parts (preferred directions, detour demotion, remaining-offset ordering) are
computed for the whole batch at once, and a single stable argsort recovers
exactly the scalar priority order.  The output is **byte-identical** to
running the scalar :func:`~repro.core.routing.decision_candidates` per
header — the randomized parity suite holds the two to that.

The engine is keyed on the same validity token as
:class:`~repro.core.routing.DecisionCache` (labeling mutation counter +
record mutation counter): the per-node tables are rebuilt only when the
fault information actually changes, which at steady state means once for a
whole run.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.routing import (
    DirectionClass,
    InformationProvider,
    ProbeHeader,
    RoutingPolicy,
    _routing_geometry,
)
from repro.faults.status import NodeStatus
from repro.mesh.directions import Direction

Coord = Tuple[int, ...]

#: A precomputed candidate: the outgoing direction, its next-hop node and
#: the canonical link slot of the hop (:meth:`Mesh.link_index`), so the
#: contended scan can probe the reservation ledger's holder column directly.
CandidatePair = Tuple[Direction, Coord, int]

_DISABLED = NodeStatus.DISABLED.code
_FAULTY = NodeStatus.FAULTY.code

#: Pseudo-class for directions excluded from the candidate list (off-mesh,
#: faulty neighbor, or already used); sorts after every real class.
_SKIP = len(DirectionClass)

_CLASSES: Tuple[DirectionClass, ...] = tuple(DirectionClass)

_PREFERRED = int(DirectionClass.PREFERRED)
_SPARE_ALONG_BLOCK = int(DirectionClass.SPARE_ALONG_BLOCK)
_PREFERRED_DETOUR = int(DirectionClass.PREFERRED_DETOUR)
_SPARE = int(DirectionClass.SPARE)
_DISABLED_NEIGHBOR = int(DirectionClass.DISABLED_NEIGHBOR)
_INCOMING = int(DirectionClass.INCOMING)


class DecisionTables:
    """Flat per-node classification tables of one information generation.

    Everything :func:`classify_rows` reads: the per-node state tables built
    by :meth:`VectorDecisionEngine._refresh` plus the mesh-geometry
    constants.  The stacked multi-cell runner concatenates several engines'
    tables along the node axis (shifting ``c_start`` by the per-cell
    constraint-row offsets), which works because every lookup here is keyed
    by a flat node index.
    """

    __slots__ = (
        "node_codes",
        "usable",
        "disabled_nb",
        "along",
        "c_start",
        "c_count",
        "c_prism",
        "c_target_lo",
        "c_target_hi",
        "dims",
        "signs",
        "perm",
        "span",
        "n",
        "two_n",
        "size",
        "coords",
        "base_key",
        "disabled_flag",
        "has_constraints",
        "detour_bits",
        "bit_range",
        "keys",
        "usable_bits",
        "coords_s",
    )

    #: Largest ``nodes x destinations`` product for which the per-generation
    #: detour bit table is precomputed (4 bytes per entry).
    DETOUR_TABLE_CAP = 1 << 22

    def __init__(
        self,
        *,
        node_codes,
        usable,
        disabled_nb,
        along,
        c_start,
        c_count,
        c_prism,
        c_target_lo,
        c_target_hi,
        dims,
        signs,
        perm,
        span,
        n,
        two_n,
        size=None,
        coords=None,
    ) -> None:
        self.node_codes = node_codes
        self.usable = usable
        self.disabled_nb = disabled_nb
        self.along = along
        self.c_start = c_start
        self.c_count = c_count
        self.c_prism = c_prism
        self.c_target_lo = c_target_lo
        self.c_target_hi = c_target_hi
        self.dims = dims
        self.signs = signs
        self.perm = perm
        self.span = span
        self.n = n
        self.two_n = two_n
        #: Destination-index domain and its coordinate rows — enable the
        #: per-(node, destination) detour bit table when provided.
        self.size = size
        self.coords = coords
        # Lazily packed derivatives (built on first classify_rows call).
        self.base_key = None
        self.disabled_flag = None
        self.has_constraints = None
        self.detour_bits = None
        self.bit_range = None
        self.keys = None
        self.usable_bits = None
        self.coords_s = None

    def packed(self):
        """Build (once) the packed composite-key tables classify_rows uses.

        ``base_key[node, dir]`` is the composite sort key of the direction's
        class ignoring the per-row preferred/incoming/used overrides — the
        scalar class precedence folded into one gatherable int.  With
        ``size``/``coords`` present, the detour test (a per-destination prism
        membership) is also precompiled into ``detour_bits[node, dest]``.
        """
        if self.base_key is not None:
            return self
        span = self.span
        unit = span + 1
        base_cls = np.where(
            self.disabled_nb,
            _DISABLED_NEIGHBOR,
            np.where(self.along, _SPARE_ALONG_BLOCK, _SPARE),
        )
        self.base_key = base_cls * unit + span
        self.disabled_flag = self.node_codes == _DISABLED
        self.has_constraints = bool(self.c_count.any())
        self.bit_range = np.arange(self.two_n, dtype=np.uint32)
        self.usable_bits = (
            (self.usable.astype(np.uint32) << self.bit_range).sum(axis=1)
        ).astype(np.uint32)
        if self.coords is not None:
            # Per-node coordinates pre-permuted to surface order and
            # pre-signed, so the preferred test is a single subtraction.
            self.coords_s = self.coords[:, self.dims] * self.signs
        else:
            self.coords_s = None
        self.keys = (
            _DISABLED_NEIGHBOR * unit + span,  # DN_KEY
            _PREFERRED * unit + span,  # PREF_BASE (minus remaining-offset)
            _PREFERRED_DETOUR * unit + span,  # PD_KEY
            _INCOMING * unit + span,  # INC_KEY
            _SKIP * unit + span,  # SKIP_KEY
            _SKIP * unit,  # SKIP_BASE (every real class sorts below it)
        )
        if (
            self.detour_bits is None  # may be pre-seeded by the engine
            and self.has_constraints
            and self.size is not None
            and self.coords is not None
            and self.node_codes.shape[0] * self.size <= self.DETOUR_TABLE_CAP
        ):
            self.detour_bits = self._build_detour_bits()
        return self

    def _build_detour_bits(self):
        """``detour_bits[node, dest] >> dir & 1``: direction enters a
        dangerous prism while ``dest`` lies in the constraint's target."""
        cnt = self.c_count
        nodes_c = np.flatnonzero(cnt)
        reps = cnt[nodes_c]
        total = int(reps.sum())
        starts = np.cumsum(reps) - reps
        row_ids = np.repeat(self.c_start[nodes_c], reps) + (
            np.arange(total) - np.repeat(starts, reps)
        )
        owner = np.repeat(nodes_c, reps)
        dest_coords = self.coords
        lo = self.c_target_lo[row_ids]
        hi = self.c_target_hi[row_ids]
        in_target = (dest_coords[None, :, :] >= lo[:, None, :]).all(axis=2) & (
            dest_coords[None, :, :] <= hi[:, None, :]
        ).all(axis=2)
        prism_bits = (
            (self.c_prism[row_ids].astype(np.uint32) << self.bit_range).sum(axis=1)
        ).astype(np.uint32)
        contrib = in_target.astype(np.uint32) * prism_bits[:, None]
        bits = np.zeros((self.node_codes.shape[0], self.size), dtype=np.uint32)
        np.bitwise_or.at(bits, owner, contrib)
        return bits


def classify_rows(
    tables: DecisionTables,
    node_idx: np.ndarray,
    cur: np.ndarray,
    prev: Optional[np.ndarray],
    dest: np.ndarray,
    used_mask: np.ndarray,
    at_source: np.ndarray,
    *,
    cur_idx: Optional[np.ndarray] = None,
    dest_idx: Optional[np.ndarray] = None,
    rev_col: Optional[np.ndarray] = None,
    used_bits: Optional[np.ndarray] = None,
    want_cls: bool = True,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray], np.ndarray]:
    """Classify and order a batch of decision rows in one pass.

    The array-native core shared by the header-based batch
    (:meth:`VectorDecisionEngine._batch`) and the struct-of-arrays probe
    table, so the two can never diverge.  ``node_idx`` indexes into
    ``tables`` (already cell-offset for stacked runs); ``cur``/``prev``/
    ``dest`` are ``(P, n)`` coordinate rows (``prev == cur`` for probes
    holding no link); ``used_mask`` is the ``(P, 2n)`` already-used
    direction mask and ``at_source`` the rule-1 source check (coordinate
    equality, *not* stack depth).  Returns ``(backtrack, sorted_dirs,
    counts, cls, order)``: rule-1 unconditional backtracks, direction
    indices in priority order, how many are real candidates, and the raw
    class/order arrays for callers that want the classes back.

    Callers that track probe state in columns can skip per-row rework:
    ``rev_col`` is the pre-reversed incoming direction (surface index,
    ``-1`` for probes holding no link — ``prev`` is then ignored and may be
    ``None``), ``cur_idx``/``dest_idx`` are the *cell-local* linear node
    indices (keying the pre-signed coordinate and detour bit tables —
    ``cur``/``dest`` coordinate rows are then ignored and may be ``None``),
    ``used_bits`` the packed per-row used-direction word (``used_mask`` may
    then be ``None``), and ``want_cls=False`` drops the class-code array
    from the return.
    """
    pk = tables.packed()
    P = node_idx.shape[0]
    n = tables.n
    two_n = tables.two_n
    dn_key, pref_base, pd_key, inc_key, skip_key, skip_base = pk.keys

    # Preferred directions and the remaining-offset ordering key.  The
    # composite sort key is class * (span+1) + within-class offset (the
    # offset is ``span - remaining`` for PREFERRED, ``span`` otherwise), so
    # a direction's key orders by class first, then farther-to-go first.
    if cur_idx is not None and pk.coords_s is not None:
        dd = pk.coords_s[dest_idx] - pk.coords_s[cur_idx]
        pref = dd > 0
    else:
        delta = dest - cur
        dd = delta[:, tables.dims] * tables.signs
        pref = dd > 0
    remaining = np.abs(dd)

    comp = pk.base_key[node_idx]
    # Preferred overrides the spare classes but not a disabled neighbor.
    pref_ok = pref & (comp != dn_key)
    pref_val = pref_base - remaining

    # Detour demotion: preferred directions entering a dangerous prism
    # while the destination lies in the opposite prism.  Only probes at
    # constraint-holding nodes contribute rows.
    if pk.has_constraints:
        if pk.detour_bits is not None and dest_idx is not None:
            dt = pk.detour_bits[node_idx, dest_idx]
            detour = (dt[:, None] >> pk.bit_range) & np.uint32(1)
        else:
            counts = tables.c_count[node_idx]
            detour = np.zeros((P, two_n), dtype=bool)
            if counts.any():
                sel = np.flatnonzero(counts)
                cnts = counts[sel]
                total = int(cnts.sum())
                seg_starts = np.cumsum(cnts) - cnts
                reps = np.repeat(np.arange(sel.size), cnts)
                rows_c = np.repeat(tables.c_start[node_idx[sel]], cnts) + (
                    np.arange(total) - np.repeat(seg_starts, cnts)
                )
                d_all = dest if dest is not None else tables.coords[dest_idx]
                d_sel = d_all[sel][reps]
                in_target = np.all(
                    d_sel >= tables.c_target_lo[rows_c], axis=1
                ) & np.all(d_sel <= tables.c_target_hi[rows_c], axis=1)
                hit = in_target[:, None] & tables.c_prism[rows_c]
                detour[sel] = np.logical_or.reduceat(hit, seg_starts, axis=0)
        pref_val = np.where(detour, pd_key, pref_val)
    comp = np.where(pref_ok, pref_val, comp)

    # Incoming direction, reversed: the link the probe arrived over.  It
    # outranks every class except the used/unusable skip applied last.
    if rev_col is None:
        diff = cur - prev
        moved = diff != 0
        has_in = moved.any(axis=1)
        in_dim = moved.argmax(axis=1)
        in_sign = diff[np.arange(P), in_dim]
        # Reversed direction (dim, -sign): surface index dim when the
        # reversed sign is negative (sign > 0), dim + n otherwise.
        rev_col = np.where(in_sign > 0, in_dim, in_dim + n)
        entered = np.flatnonzero(has_in)
    else:
        entered = np.flatnonzero(rev_col >= 0)
    comp[entered, rev_col[entered]] = inc_key

    if used_bits is not None:
        avail = ~used_bits & pk.usable_bits[node_idx]
        comp = np.where(
            (avail[:, None] >> pk.bit_range) & np.uint32(1), comp, skip_key
        )
    else:
        comp = np.where(tables.usable[node_idx] & ~used_mask, comp, skip_key)

    # Priority order: (class, -remaining within PREFERRED, dim, sign).
    # The (dim, sign) tie-break comes from pre-permuting the columns and
    # using a stable sort on the composite scalar key.
    perm = tables.perm
    order = np.argsort(comp[:, perm], axis=1, kind="stable")
    sorted_dirs = perm[order]
    valid = (comp < skip_base).sum(axis=1)

    backtrack = pk.disabled_flag[node_idx] & ~at_source
    cls = comp // (tables.span + 1) if want_cls else None
    return backtrack, sorted_dirs, valid, cls, order


class VectorDecisionEngine:
    """Batched, numpy-backed Algorithm-3 direction classification.

    Built over one information provider and one policy, exactly like a
    :class:`~repro.core.routing.DecisionCache` — and normally reached
    *through* one (``DecisionCache.batch_candidates``), so callers never
    choose an implementation by hand.  Requires the provider to expose a
    code-array-backed ``labeling`` and ``nodes_holding_information()``
    (:class:`~repro.core.state.InformationState` does).
    """

    def __init__(self, info: InformationProvider, policy: RoutingPolicy) -> None:
        self.info = info
        self.policy = policy
        mesh = info.mesh
        self.mesh = mesh
        self._labeling = info.labeling  # type: ignore[attr-defined]
        self._has_record_mutations = hasattr(info, "record_mutations")

        n = mesh.n_dims
        self._n = n
        self._two_n = 2 * n
        dirs = mesh.directions
        #: Per surface-order direction: its dimension and sign, as columns.
        self._dims = np.array([d.dim for d in dirs], dtype=np.int64)
        self._signs = np.array([d.sign for d in dirs], dtype=np.int64)
        #: Direction indices re-ordered by ``(dim, sign)`` — the scalar
        #: tie-break order inside one priority class.
        self._perm = np.array(
            sorted(range(2 * n), key=lambda j: (dirs[j].dim, dirs[j].sign)),
            dtype=np.int64,
        )
        self._span = max(mesh.shape)
        #: Row-major strides, so ``coords @ strides`` is the linear index.
        strides = [1] * n
        for d in range(n - 2, -1, -1):
            strides[d] = strides[d + 1] * mesh.shape[d + 1]
        self._strides = np.array(strides, dtype=np.int64)
        #: Coordinate row per linear node index (feeds the detour bit table).
        self._coords = np.stack(
            np.unravel_index(np.arange(mesh.size, dtype=np.int64), mesh.shape),
            axis=1,
        )
        #: Per surface-order direction: its coordinate offset row, so a
        #: node's ``2n`` neighbor coordinates are one broadcast add.
        self._dir_offsets = np.zeros((self._two_n, n), dtype=np.int64)
        for j, d in enumerate(dirs):
            self._dir_offsets[j, d.dim] = d.sign
        self._bit_range32 = np.arange(self._two_n, dtype=np.uint32)

        #: Per node (linear index), per direction: the shared
        #: ``(direction, neighbor, link slot)`` triple handed out in
        #: candidate lists (``None`` off-mesh — never selected, the skip
        #: mask covers it).  Built lazily: the struct-of-arrays probe table
        #: consumes raw direction indices and never materializes these.
        self._pairs_table: Optional[List[List[Optional[CandidatePair]]]] = None

        #: Per-node compiled geometry rows (along-block mask, prism rows,
        #: target bounds), keyed by linear node index and validated against
        #: the provider's identity-stable geometry tuples — a refresh only
        #: recompiles the nodes whose records actually changed.
        self._geom_cache: Dict[int, Tuple] = {}

        self._token: Optional[Tuple[int, int]] = None

    @property
    def _pairs(self) -> List[List[Optional[CandidatePair]]]:
        pairs = self._pairs_table
        if pairs is None:
            mesh = self.mesh
            dirs = mesh.directions
            pairs = self._pairs_table = [
                [
                    (d, nb, mesh.link_index(node, nb))
                    if (nb := mesh.neighbor(node, d)) is not None
                    else None
                    for d in dirs
                ]
                for node in (mesh.coord_of(i) for i in range(mesh.size))
            ]
        return pairs

    # ------------------------------------------------------------------ #
    # per-information-generation tables
    # ------------------------------------------------------------------ #
    def _validity_token(self) -> Tuple[int, int]:
        return (
            self._labeling.mutations,
            self.info.record_mutations if self._has_record_mutations else -1,  # type: ignore[attr-defined]
        )

    def _refresh(self) -> None:
        """Rebuild the per-node tables for the current information state."""
        mesh = self.mesh
        info = self.info
        policy = self.policy
        size = mesh.size
        two_n = self._two_n

        codes = np.asarray(self._labeling.codes)
        self._node_codes = codes
        padded = np.empty(size + 1, dtype=codes.dtype)
        padded[:size] = codes
        padded[size] = 0  # off-mesh sentinel: an always-enabled neighbor
        neighbor_codes = padded[mesh.neighbor_gather_table]
        in_mesh = mesh.neighbor_table >= 0
        usable = in_mesh & (neighbor_codes != _FAULTY)
        self._usable = usable
        if policy.avoid_known_disabled:
            self._disabled_nb = usable & (neighbor_codes == _DISABLED)
        else:
            self._disabled_nb = np.zeros((size, two_n), dtype=bool)

        # Routing geometry, compiled flat.  Only nodes holding records have
        # any: ``along_block`` marks directions whose neighbor walks along a
        # known block's frame, and the constraint table packs every node's
        # (dangerous prism, opposite prism) pairs as contiguous rows.
        along = np.zeros((size, two_n), dtype=bool)
        c_start = np.zeros(size, dtype=np.int64)
        c_count = np.zeros(size, dtype=np.int64)
        prism_chunks: List[np.ndarray] = []
        lo_chunks: List[np.ndarray] = []
        hi_chunks: List[np.ndarray] = []
        detour_rows: List[Tuple[int, np.ndarray]] = []
        n_rows = 0
        if policy.use_block_info or policy.use_boundary_info:
            cache = self._geom_cache
            geom_fn = getattr(info, "routing_geometry", None)
            use_blk = policy.use_block_info
            use_bnd = policy.use_boundary_info
            offsets = self._dir_offsets
            coords = self._coords
            want_detour = size * size <= DecisionTables.DETOUR_TABLE_CAP
            for node in sorted(info.nodes_holding_information()):  # type: ignore[attr-defined]
                if geom_fn is not None:
                    constraints, frames = geom_fn(
                        node, use_block_info=use_blk, use_boundary_info=use_bnd
                    )
                else:
                    constraints, frames = _routing_geometry(info, node, policy)
                if not constraints and not frames:
                    continue
                idx = mesh.index_of(node)
                ent = cache.get(idx)
                if ent is None or ent[0] is not constraints or ent[1] is not frames:
                    # The provider's geometry tuples are identity-stable
                    # until the node's records change, so ``is`` mismatches
                    # exactly when this node needs recompiling.  Region
                    # membership is two inclusive bounds checks (off-mesh
                    # neighbor coordinates fail them naturally).
                    nb = np.asarray(node, dtype=np.int64) + offsets
                    along_row = None
                    if frames:
                        flo = np.array([f.lo for _e, f in frames], dtype=np.int64)
                        fhi = np.array([f.hi for _e, f in frames], dtype=np.int64)
                        elo = np.array([e.lo for e, _f in frames], dtype=np.int64)
                        ehi = np.array([e.hi for e, _f in frames], dtype=np.int64)
                        in_frame = (nb >= flo[:, None, :]).all(2) & (
                            nb <= fhi[:, None, :]
                        ).all(2)
                        in_extent = (nb >= elo[:, None, :]).all(2) & (
                            nb <= ehi[:, None, :]
                        ).all(2)
                        along_row = (in_frame & ~in_extent).any(0)
                    prism_arr = lo_arr = hi_arr = detour_row = None
                    if constraints:
                        plo = np.array([p.lo for p, _t in constraints], dtype=np.int64)
                        phi = np.array([p.hi for p, _t in constraints], dtype=np.int64)
                        prism_arr = (nb[None, :, :] >= plo[:, None, :]).all(2) & (
                            nb[None, :, :] <= phi[:, None, :]
                        ).all(2)
                        lo_arr = np.array(
                            [target.lo for _prism, target in constraints],
                            dtype=np.int64,
                        )
                        hi_arr = np.array(
                            [target.hi for _prism, target in constraints],
                            dtype=np.int64,
                        )
                        if want_detour:
                            # This node's detour bit row over every
                            # destination, compiled once per record change.
                            in_target = (coords[None, :, :] >= lo_arr[:, None, :]).all(
                                2
                            ) & (coords[None, :, :] <= hi_arr[:, None, :]).all(2)
                            pbits = (
                                (prism_arr.astype(np.uint32) << self._bit_range32).sum(
                                    axis=1
                                )
                            ).astype(np.uint32)
                            detour_row = np.bitwise_or.reduce(
                                in_target.astype(np.uint32) * pbits[:, None], axis=0
                            )
                    ent = (
                        constraints,
                        frames,
                        along_row,
                        prism_arr,
                        lo_arr,
                        hi_arr,
                        detour_row,
                    )
                    cache[idx] = ent
                if ent[2] is not None:
                    along[idx] = ent[2]
                if ent[3] is not None:
                    c_start[idx] = n_rows
                    c_count[idx] = ent[3].shape[0]
                    prism_chunks.append(ent[3])
                    lo_chunks.append(ent[4])
                    hi_chunks.append(ent[5])
                    n_rows += ent[3].shape[0]
                    if ent[6] is not None:
                        detour_rows.append((idx, ent[6]))
        self._along = along
        self._c_start = c_start
        self._c_count = c_count
        if prism_chunks:
            self._c_prism = np.concatenate(prism_chunks)
            self._c_target_lo = np.concatenate(lo_chunks)
            self._c_target_hi = np.concatenate(hi_chunks)
        else:
            self._c_prism = np.zeros((0, two_n), dtype=bool)
            self._c_target_lo = np.zeros((0, self._n), dtype=np.int64)
            self._c_target_hi = np.zeros((0, self._n), dtype=np.int64)
        self._tables_obj = DecisionTables(
            node_codes=self._node_codes,
            usable=self._usable,
            disabled_nb=self._disabled_nb,
            along=self._along,
            c_start=self._c_start,
            c_count=self._c_count,
            c_prism=self._c_prism,
            c_target_lo=self._c_target_lo,
            c_target_hi=self._c_target_hi,
            dims=self._dims,
            signs=self._signs,
            perm=self._perm,
            span=self._span,
            n=self._n,
            two_n=self._two_n,
            size=self.mesh.size,
            coords=self._coords,
        )
        if detour_rows:
            # Assemble the per-(node, destination) detour table from the
            # cached rows so ``packed`` never rebuilds it from scratch.
            bits = np.zeros((size, size), dtype=np.uint32)
            for idx, row in detour_rows:
                bits[idx] = row
            self._tables_obj.detour_bits = bits

    def tables(self) -> Tuple[DecisionTables, Tuple[int, int]]:
        """The (refreshed-on-demand) classification tables plus their token.

        The struct-of-arrays probe table classifies against these directly
        (via :func:`classify_rows`), and the stacked runner concatenates the
        tables of several cells; the token is the same validity key the
        header-based batch uses, so callers can cache derived state.
        """
        token = self._validity_token()
        if token != self._token:
            self._refresh()
            self._token = token
        return self._tables_obj, token

    # ------------------------------------------------------------------ #
    # the batched classification
    # ------------------------------------------------------------------ #
    def _batch(
        self, headers: Sequence[ProbeHeader]
    ) -> Tuple[List[int], List[bool], List[List[int]], List[int], np.ndarray]:
        """Classify and order every header's directions in one pass.

        Returns ``(node_idx, backtrack, sorted_dirs, counts, sorted_cls)``:
        per header, its node's linear index, whether rule 1 forces an
        unconditional backtrack (``decision_candidates`` → ``None``), the
        direction indices in priority order, how many of them are real
        candidates (the rest are skipped directions sorted to the back) and
        the matching class codes.
        """
        tables, _token = self.tables()

        n = self._n
        two_n = self._two_n
        # One row per probe: current node, previous stack node (= current
        # when the probe holds no link yet) and destination, concatenated so
        # a single array build covers all three.
        rows = np.array(
            [
                h.stack[-1]
                + (h.stack[-2] if len(h.stack) > 1 else h.stack[-1])
                + h.destination
                for h in headers
            ],
            dtype=np.int64,
        )
        cur = rows[:, :n]
        prev = rows[:, n : 2 * n]
        dest = rows[:, 2 * n :]
        node_idx = cur @ self._strides

        # Used directions and the rule-1 source check (cheap header reads).
        used_mask = np.zeros((len(headers), two_n), dtype=bool)
        at_source: List[bool] = []
        for g, h in enumerate(headers):
            stack = h.stack
            at_source.append(stack[0] == stack[-1])
            used = h.used.get(stack[-1])
            if used:
                for d in used:
                    used_mask[g, d.dim + (n if d.sign > 0 else 0)] = True

        backtrack, sorted_dirs, valid, cls, order = classify_rows(
            tables,
            node_idx,
            cur,
            prev,
            dest,
            used_mask,
            np.array(at_source, dtype=bool),
        )
        return (
            node_idx.tolist(),
            backtrack.tolist(),
            sorted_dirs.tolist(),
            valid.tolist(),
            (cls, order),
        )

    def batch_candidate_pairs(
        self, headers: Sequence[ProbeHeader]
    ) -> List[Optional[List[CandidatePair]]]:
        """Per header: the ordered ``(direction, next hop, link slot)`` candidates.

        ``None`` mirrors :func:`~repro.core.routing.decision_candidates`
        returning ``None`` (rule 1: disabled node away from the source).
        The triples are shared per-mesh tuples, so a batch allocates only
        the per-header lists.  This is the form the simulator's batched
        step loop consumes.
        """
        if not headers:
            return []
        node_idx, backtrack, sorted_dirs, counts, _ = self._batch(headers)
        pairs = self._pairs
        out: List[Optional[List[CandidatePair]]] = []
        for g in range(len(headers)):
            if backtrack[g]:
                out.append(None)
                continue
            node_pairs = pairs[node_idx[g]]
            row = sorted_dirs[g]
            out.append([node_pairs[row[j]] for j in range(counts[g])])  # type: ignore[misc]
        return out

    def batch_candidates(
        self, headers: Sequence[ProbeHeader]
    ) -> List[Optional[List[Tuple[DirectionClass, Direction]]]]:
        """Per header: the classified candidate list of one decision step.

        Byte-identical to calling
        :func:`~repro.core.routing.decision_candidates` per header against
        the same information — the parity suite asserts exactly that.
        """
        if not headers:
            return []
        _, backtrack, sorted_dirs, counts, (cls, order) = self._batch(headers)
        sorted_cls = np.take_along_axis(cls[:, self._perm], order, axis=1).tolist()
        dirs = self.mesh.directions
        out: List[Optional[List[Tuple[DirectionClass, Direction]]]] = []
        for g in range(len(headers)):
            if backtrack[g]:
                out.append(None)
                continue
            row_d = sorted_dirs[g]
            row_c = sorted_cls[g]
            out.append(
                [(_CLASSES[row_c[j]], dirs[row_d[j]]) for j in range(counts[g])]
            )
        return out
