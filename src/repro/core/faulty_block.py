"""Faulty-block geometry (Definitions 1–3 of the paper).

A *faulty block* is a connected set of faulty and disabled nodes produced by
the labeling scheme of :mod:`repro.core.block_construction`.  Once the
labeling stabilizes, every block is an axis-aligned hyper-rectangle (the
paper's ``[xmin+1 : xmax-1, ...]`` notation); this module captures the
geometry that the identification, boundary and routing components need:

* *adjacent nodes* — enabled nodes one hop from the block (Definition 2);
* *k-level edge nodes / corners* — the recursive corner structure used by
  the identification process (Definition 2, Figure 2);
* *adjacent surfaces* ``S_0 .. S_{2n-1}`` — the 2n slabs one unit away from
  the block faces (Definition 3, Figure 1(b));
* *dangerous prisms* — for each axis, the region from which all minimal
  paths to destinations on the far side of the block are cut off (the area
  "right below S1" when the destination is "right over S4").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.mesh.directions import Direction, direction_from_surface, opposite_surface
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


@lru_cache(maxsize=65536)
def _dangerous_prism_cached(
    extent: Region, shape: Tuple[int, ...], dim: int, side: int
) -> Optional[Region]:
    lo = list(extent.lo)
    hi = list(extent.hi)
    if side < 0:
        hi[dim] = extent.lo[dim] - 1
        lo[dim] = 0
    else:
        lo[dim] = extent.hi[dim] + 1
        hi[dim] = shape[dim] - 1
    if lo[dim] > hi[dim]:
        return None
    mesh_extent = Region(tuple([0] * len(shape)), tuple(s - 1 for s in shape))
    return Region(tuple(lo), tuple(hi)).intersection(mesh_extent)


def dangerous_prism_of_extent(
    extent: Region, mesh: Mesh, dim: int, side: int
) -> Optional[Region]:
    """The dangerous area of a block with the given ``extent``.

    Standalone version of :meth:`FaultyBlock.dangerous_prism` usable with a
    bare extent (as carried by block/boundary information records) without
    materializing the block's node set.  The geometry only depends on
    ``(extent, mesh shape, dim, side)``, so results are memoized — the
    routing hot path resolves the same prisms at every hop.
    """
    if side not in (-1, +1):
        raise ValueError("side must be ±1")
    return _dangerous_prism_cached(extent, mesh.shape, dim, side)


@dataclass(frozen=True)
class FaultyBlock:
    """A stabilized faulty block inside a mesh.

    Parameters
    ----------
    extent:
        The hyper-rectangle spanned by the block's member (faulty or
        disabled) nodes.
    nodes:
        The member nodes themselves.  For a stabilized block these fill the
        extent completely; the class does not require it so that transient
        (still-converging) blocks can also be represented.
    faulty_nodes:
        The subset of ``nodes`` that is actually faulty (the rest are
        disabled non-faulty nodes).
    """

    extent: Region
    nodes: FrozenSet[Coord] = field(default_factory=frozenset)
    faulty_nodes: FrozenSet[Coord] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        nodes = frozenset(tuple(n) for n in self.nodes) or frozenset(
            self.extent.iter_points()
        )
        faulty = frozenset(tuple(n) for n in self.faulty_nodes)
        if not faulty <= nodes:
            raise ValueError("faulty_nodes must be a subset of nodes")
        for node in nodes:
            if not self.extent.contains(node):
                raise ValueError(f"node {node} lies outside extent {self.extent}")
        object.__setattr__(self, "nodes", nodes)
        object.__setattr__(self, "faulty_nodes", faulty)

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_nodes(
        cls,
        nodes: Sequence[Sequence[int]],
        faulty_nodes: Optional[Sequence[Sequence[int]]] = None,
    ) -> "FaultyBlock":
        """Block spanned by ``nodes`` (extent = bounding box)."""
        pts = [tuple(n) for n in nodes]
        return cls(
            extent=Region.from_points(pts),
            nodes=frozenset(pts),
            faulty_nodes=frozenset(tuple(n) for n in (faulty_nodes or [])),
        )

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_dims(self) -> int:
        """Dimensionality of the enclosing mesh."""
        return self.extent.n_dims

    @property
    def disabled_nodes(self) -> FrozenSet[Coord]:
        """Member nodes that are disabled (non-faulty)."""
        return self.nodes - self.faulty_nodes

    @property
    def is_rectangular(self) -> bool:
        """True iff the member nodes fill the extent (stabilized block)."""
        return len(self.nodes) == self.extent.volume

    @property
    def max_edge(self) -> int:
        """Longest edge of the block in hops — the paper's ``e_max``."""
        return self.extent.max_edge

    def contains(self, node: Sequence[int]) -> bool:
        """True iff ``node`` is a member of the block."""
        return tuple(node) in self.nodes

    # ------------------------------------------------------------------ #
    # Definition 2: adjacent nodes and k-level corners
    # ------------------------------------------------------------------ #
    def level_of(self, node: Sequence[int]) -> int:
        """Corner level of ``node`` with respect to this block.

        The level is the number of dimensions in which the node sits one hop
        *outside* the block extent (the remaining dimensions lying within the
        extent's span).  Level 1 corresponds to a plain adjacent node,
        level 2 to a 2-level corner, ... and level n to an n-level corner of
        Definition 2 (for a stabilized rectangular block these coincide with
        the recursive definition).  Nodes that are members of the block, more
        than one hop away, or outside the adjacency frame have level 0.
        """
        node = tuple(node)
        if len(node) != self.n_dims:
            raise ValueError("coordinate rank differs from block rank")
        if node in self.nodes:
            return 0
        out_dims = 0
        for c, lo, hi in zip(node, self.extent.lo, self.extent.hi):
            if lo <= c <= hi:
                continue
            if c == lo - 1 or c == hi + 1:
                out_dims += 1
            else:
                return 0
        return out_dims

    def adjacent_nodes(self, mesh: Mesh) -> List[Coord]:
        """Enabled-frame nodes with a neighbor in the block (level-1 nodes)."""
        return self.frame_nodes(mesh, level=1)

    def frame_nodes(self, mesh: Mesh, level: Optional[int] = None) -> List[Coord]:
        """Nodes of the adjacency frame, optionally restricted to one level.

        The *adjacency frame* is the shell of non-member nodes whose every
        coordinate is within one hop of the block extent; it contains the
        adjacent nodes, all k-level edge nodes and all k-level corners.
        """
        frame_region = self.extent.expand(1)
        clipped = mesh.clip_region(frame_region)
        if clipped is None:
            return []
        out: List[Coord] = []
        for point in clipped.iter_points():
            lvl = self.level_of(point)
            if lvl == 0:
                continue
            if level is None or lvl == level:
                out.append(point)
        return out

    def corners(self, mesh: Optional[Mesh] = None) -> List[Coord]:
        """The block's n-level corners (Definition 2, Figure 2).

        For a block not touching the mesh surface these are the ``2^n``
        diagonal neighbors of the extent; corners falling outside the mesh
        are dropped when ``mesh`` is given.
        """
        pts = list(self.extent.block_corner_points())
        if mesh is not None:
            pts = [p for p in pts if mesh.contains(p)]
        return pts

    def edge_nodes(self, mesh: Mesh) -> List[Coord]:
        """All n-level edge nodes ((n-1)-level corners) of the block."""
        return self.frame_nodes(mesh, level=self.n_dims - 1)

    def edge_neighbors_of_corner(self, corner: Sequence[int], mesh: Mesh) -> List[Coord]:
        """The n-level edge nodes adjacent to a given n-level corner."""
        corner = tuple(corner)
        if self.level_of(corner) != self.n_dims:
            raise ValueError(f"{corner} is not an n-level corner of {self.extent}")
        out = []
        for direction in mesh.directions:
            neighbor = mesh.neighbor(corner, direction)
            if neighbor is not None and self.level_of(neighbor) == self.n_dims - 1:
                out.append(neighbor)
        return out

    # ------------------------------------------------------------------ #
    # Definition 3: adjacent surfaces
    # ------------------------------------------------------------------ #
    def adjacent_surface(self, surface_index: int) -> Region:
        """The adjacent surface ``S_i`` of Definition 3 (may extend off-mesh)."""
        direction = direction_from_surface(surface_index, self.n_dims)
        return self.extent.adjacent_surface(direction.dim, direction.sign)

    def adjacent_surfaces(self, mesh: Optional[Mesh] = None) -> Dict[int, Region]:
        """All 2n adjacent surfaces, keyed by surface index.

        Surfaces that fall entirely outside the mesh (block touching the
        outmost surface, which the paper's fault assumption forbids anyway)
        are omitted when ``mesh`` is given.
        """
        out: Dict[int, Region] = {}
        for index in range(2 * self.n_dims):
            surface = self.adjacent_surface(index)
            if mesh is not None:
                clipped = mesh.clip_region(surface)
                if clipped is None:
                    continue
                surface = clipped
            out[index] = surface
        return out

    def surface_direction(self, surface_index: int) -> Direction:
        """Direction pointing from the block towards surface ``S_i``."""
        return direction_from_surface(surface_index, self.n_dims)

    def opposite_surface_index(self, surface_index: int) -> int:
        """Index of the surface opposite ``S_i``  (``(i+n) mod 2n``)."""
        return opposite_surface(surface_index, self.n_dims)

    # ------------------------------------------------------------------ #
    # dangerous prisms
    # ------------------------------------------------------------------ #
    def dangerous_prism(self, mesh: Mesh, dim: int, side: int) -> Optional[Region]:
        """The dangerous area on ``side`` of the block along ``dim``.

        A routing message located inside this prism whose destination lies in
        the *opposite* prism (see :meth:`opposite_prism`) has every minimal
        path cut by the block.  The prism spans the block's extent in every
        dimension except ``dim`` and stretches from the block face to the
        outmost surface of the mesh on ``side``.

        Returns ``None`` when the block touches the mesh surface on that side
        (no room for a dangerous area).
        """
        return dangerous_prism_of_extent(self.extent, mesh, dim, side)

    def opposite_prism(self, mesh: Mesh, dim: int, side: int) -> Optional[Region]:
        """The prism on the opposite side of the block from ``dangerous_prism``."""
        return self.dangerous_prism(mesh, dim, -side)

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def blocks_minimal_paths(
        self, mesh: Mesh, current: Sequence[int], destination: Sequence[int]
    ) -> bool:
        """True iff this block cuts every minimal path from ``current`` to ``destination``.

        This is exactly the dangerous-area condition: the two endpoints lie in
        opposite prisms of the block along some dimension.
        """
        current = tuple(current)
        destination = tuple(destination)
        for dim in range(self.n_dims):
            for side in (-1, +1):
                prism = self.dangerous_prism(mesh, dim, side)
                opposite = self.opposite_prism(mesh, dim, side)
                if prism is None or opposite is None:
                    continue
                if prism.contains(current) and opposite.contains(destination):
                    return True
        return False

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        spans = ", ".join(f"{a}:{b}" for a, b in zip(self.extent.lo, self.extent.hi))
        return f"FaultyBlock[{spans}]"
