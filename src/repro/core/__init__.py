"""The paper's contribution: the limited-global fault information model.

Sub-modules map one-to-one onto the paper's sections:

* :mod:`repro.core.block_construction` — the enabled/disabled/clean labeling
  scheme (Definitions 1 and 4, Algorithm 1) that coalesces faults into
  disjoint faulty blocks;
* :mod:`repro.core.faulty_block` — the geometry of a faulty block
  (Definition 2: adjacent nodes, k-level edge nodes and corners;
  Definition 3: adjacent surfaces; dangerous prisms);
* :mod:`repro.core.identification` — the n-level identification process
  (Algorithm 2, phases 1–3) that discovers a new block's extent;
* :mod:`repro.core.boundary` — boundary construction: distributing block
  information to the nodes enclosing each dangerous area;
* :mod:`repro.core.state` — the per-node information state shared by the
  distributed protocols and the routing algorithm;
* :mod:`repro.core.routing` — fault-information-based PCS routing
  (Algorithm 3);
* :mod:`repro.core.safety` — the safe-node condition (Theorem 2) and
  reachability helpers.
"""

from repro.core.block_construction import (
    BlockConstructionResult,
    LabelingState,
    build_blocks,
    extract_blocks,
    labeling_round,
    run_block_construction,
)
from repro.core.boundary import (
    BoundaryInfo,
    BoundaryProtocol,
    compute_boundaries,
    dangerous_prism,
    opposite_prism,
)
from repro.core.distribution import (
    DistributionReport,
    converged_information,
    distribute_information,
    distribute_information_with_report,
)
from repro.core.faulty_block import FaultyBlock, dangerous_prism_of_extent
from repro.core.identification import (
    IdentificationProtocol,
    IdentificationResult,
    identify_block,
    oracle_identify,
)
from repro.core.routing import (
    DirectionClass,
    ProbeHeader,
    RouteOutcome,
    RouteResult,
    RoutingPolicy,
    RoutingProbe,
    classify_directions,
    probe_step_limit,
    route_offline,
    routing_decision,
)
from repro.core.safety import (
    is_safe_source,
    minimal_path_exists,
    shortest_path_length,
    source_destination_box,
)
from repro.core.state import BlockRecord, InformationState

__all__ = [
    "BlockConstructionResult",
    "BlockRecord",
    "BoundaryInfo",
    "BoundaryProtocol",
    "DirectionClass",
    "DistributionReport",
    "FaultyBlock",
    "IdentificationProtocol",
    "IdentificationResult",
    "InformationState",
    "LabelingState",
    "ProbeHeader",
    "RouteOutcome",
    "RouteResult",
    "RoutingPolicy",
    "RoutingProbe",
    "build_blocks",
    "classify_directions",
    "compute_boundaries",
    "converged_information",
    "dangerous_prism",
    "dangerous_prism_of_extent",
    "distribute_information",
    "distribute_information_with_report",
    "extract_blocks",
    "identify_block",
    "is_safe_source",
    "labeling_round",
    "minimal_path_exists",
    "opposite_prism",
    "oracle_identify",
    "probe_step_limit",
    "route_offline",
    "routing_decision",
    "run_block_construction",
    "shortest_path_length",
    "source_destination_box",
]
