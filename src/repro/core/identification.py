"""The n-level identification process (Algorithm 2, Figures 5 and 6).

When block construction creates or enlarges a block, the nodes around it
must learn the block's extent before they can build boundaries.  The paper
identifies the extent with a three-phase, corner-to-corner message exchange:

* **phase 1** — ``n-1`` identification messages start at an *initialization
  corner* (an n-level corner of the new block) and travel along the block's
  edge nodes;
* **phase 2** — every edge node activates a down-level identification that
  travels around its cross-section of the block;
* **phase 3** — the identified partial information is collected at the
  n-level corner *opposite* the initialization corner, where the two corner
  positions determine the block extent.

Afterwards the identified block information is propagated back from the
opposite corner to *all* adjacent nodes, edge nodes and corners of the block
(Figure 6), which in turn triggers boundary construction.

Implementation note (documented substitution).  The protocol here performs
the same corner-to-corner information flow over the block's adjacency frame
— messages advance one hop per round, carry the partial extent observed so
far, terminate at the opposite corner and are then redistributed over the
frame — but the recursive per-section bookkeeping of phases 2/3 is folded
into a single wavefront that accumulates partial extents.  The identified
result is identical (the block's bounding extent), the initiating and
terminating nodes are identical, and the number of rounds grows with the
block perimeter exactly as in the paper's phased description, so the
quantities the evaluation uses (``b_i`` and the set of informed nodes) are
preserved.  Instability handling is also preserved: if a relay node turns
faulty or disabled while the process runs, the affected message is
discarded and the process reports the block as unstable; a TTL bounds the
lifetime of every message.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Sequence, Set, Tuple

from repro.core.block_construction import LabelingState
from repro.core.faulty_block import FaultyBlock
from repro.core.state import BlockRecord, InformationState
from repro.faults.status import NodeStatus
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


def oracle_identify(nodes: Iterable[Sequence[int]]) -> Region:
    """Directly compute the extent a completed identification would produce.

    This is the centralized "oracle" counterpart of the distributed process:
    the bounding hyper-rectangle of the block's member nodes.  Tests use it
    to check that the distributed protocol converges to the same answer.
    """
    return Region.from_points(nodes)


@dataclass(frozen=True)
class IdentificationResult:
    """Outcome of one identification process for one block."""

    #: The identified block extent (``None`` when the process aborted).
    extent: Optional[Region]

    #: The n-level corner at which the process was initiated.
    initialization_corner: Coord

    #: The opposite n-level corner at which the block information formed.
    opposite_corner: Coord

    #: Rounds until the block information formed at the opposite corner
    #: (phases 1–3).  Together with :attr:`distribution_rounds` this is the
    #: paper's ``b_i``.
    identification_rounds: int

    #: Rounds of the back-propagation that delivered the identified record
    #: to every adjacent node, edge node and corner (Figure 6).
    distribution_rounds: int

    #: False when a message was discarded because the block changed while
    #: the process was running (the paper's "not stable" case) or a TTL
    #: expired.
    stable: bool

    #: Generation number stamped on the distributed :class:`BlockRecord`.
    version: int = 0

    @property
    def total_rounds(self) -> int:
        """``b_i`` — rounds of the whole stabilizing identifying construction."""
        return self.identification_rounds + self.distribution_rounds


class IdentificationProtocol:
    """Round-driven distributed identification for a single block.

    The protocol operates on an :class:`InformationState`: it reads node
    statuses from ``state.labeling`` (so concurrent status changes make the
    process unstable, as in the paper) and, when it completes, writes a
    :class:`BlockRecord` to every frame node of the block.

    Use :meth:`round` to advance one exchange round (the simulator calls it
    ``λ`` times per step) or :meth:`run` to iterate to completion.
    """

    def __init__(
        self,
        state: InformationState,
        block: FaultyBlock,
        *,
        initialization_corner: Optional[Sequence[int]] = None,
        version: int = 0,
        ttl: Optional[int] = None,
    ) -> None:
        self.state = state
        self.mesh = state.mesh
        self.block = block
        self.version = version
        self.ttl = ttl if ttl is not None else 4 * (self.mesh.diameter + 1)

        frame = block.frame_nodes(self.mesh)
        if not frame:
            raise ValueError("block has no adjacency frame inside the mesh")
        self._frame: Set[Coord] = set(frame)

        corners = block.corners(self.mesh)
        if not corners:
            # Block touches the mesh surface everywhere diagonally; fall back
            # to an arbitrary frame node as the initiator.
            corners = [max(frame)]
        if initialization_corner is not None:
            init = tuple(initialization_corner)
            if init not in self._frame:
                raise ValueError(
                    f"{init} is not on the adjacency frame of {block.extent}"
                )
        else:
            init = max(corners)
        self.initialization_corner: Coord = init
        self.opposite_corner: Coord = self._opposite_of(init)

        # Identification-wave state: which frame nodes have been activated by
        # the wave and the best partial extent each one currently knows.
        self._partial: Dict[Coord, Region] = {}
        self._active: Set[Coord] = set()
        self._distribution_front: Set[Coord] = set()
        self._informed: Set[Coord] = set()
        #: node -> (labeling mutation stamp, observed extent); observations
        #: only change when the labeling does, so re-observing each round is
        #: wasted work while the labeling is stable.
        self._observed_cache: Dict[Coord, Tuple[int, Optional[Region]]] = {}

        self._phase = "identify"
        self._identification_rounds = 0
        self._distribution_rounds = 0
        self._elapsed = 0
        self._stable = True
        self._result: Optional[IdentificationResult] = None

        self._activate(self.initialization_corner, None)
        self._active = {self.initialization_corner}

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _opposite_of(self, corner: Coord) -> Coord:
        """The n-level corner diagonally opposite ``corner`` (clipped to mesh)."""
        lo, hi = self.block.extent.lo, self.block.extent.hi
        opposite = []
        for c, a, b in zip(corner, lo, hi):
            if c <= a - 1:
                opposite.append(b + 1)
            elif c >= b + 1:
                opposite.append(a - 1)
            else:
                # Initiator not a full corner in this dimension; mirror within
                # the span (keeps the node on the frame).
                opposite.append(a + b - c)
        candidate = tuple(opposite)
        if candidate in self._frame:
            return candidate
        # Clipped by the mesh surface: fall back to the frame node farthest
        # from the initiator.
        return max(self._frame, key=lambda p: self.mesh.distance(corner, p))

    def _observed_extent(self, node: Coord) -> Optional[Region]:
        """Bounding box of the block section ``node`` is next to.

        A frame node learns the positions of the block members in its
        immediate (Chebyshev-1) neighbourhood: adjacent nodes see them
        directly through the status exchanges, and edge nodes/corners learn
        the same positions from their adjacent neighbours one exchange later
        (the paper's phase-2 messages are "sent to two neighbors ... which
        are adjacent to the section of this block"); folding that single
        extra hop into the observation keeps the protocol's round count
        proportional to the block perimeter without tracking the per-section
        sub-messages explicitly.
        """
        labeling = self.state.labeling
        stamp = labeling.mutations
        cached = self._observed_cache.get(node)
        if cached is not None and cached[0] == stamp:
            return cached[1]
        members = []
        lo = tuple(c - 1 for c in node)
        hi = tuple(c + 1 for c in node)
        neighborhood = self.mesh.clip_region(Region(lo, hi))
        if neighborhood is not None:
            for candidate in neighborhood.iter_points():
                if candidate != node and labeling.status(candidate).in_block:
                    members.append(candidate)
        extent = Region.from_points(members) if members else None
        self._observed_cache[node] = (stamp, extent)
        return extent

    def _merge(self, node: Coord, extent: Optional[Region]) -> None:
        if extent is None:
            return
        existing = self._partial.get(node)
        self._partial[node] = extent if existing is None else existing.union_bound(extent)

    def _activate(self, node: Coord, carried: Optional[Region]) -> None:
        self._merge(node, carried)
        self._merge(node, self._observed_extent(node))

    def _relay_ok(self, node: Coord) -> bool:
        """A frame node can relay only while it stays enabled/clean."""
        status = self.state.labeling.status(node)
        return status in (NodeStatus.ENABLED, NodeStatus.CLEAN)

    # ------------------------------------------------------------------ #
    # public protocol surface
    # ------------------------------------------------------------------ #
    @property
    def done(self) -> bool:
        """True once the process finished (successfully or not)."""
        return self._result is not None

    @property
    def result(self) -> Optional[IdentificationResult]:
        """The final result, or ``None`` while still running."""
        return self._result

    def round(self) -> bool:
        """Advance the protocol by one exchange round.

        Returns ``True`` while the protocol still has work to do.
        """
        if self.done:
            return False
        self._elapsed += 1
        if self._elapsed > self.ttl:
            self._finish(stable=False)
            return False
        if self._phase == "identify":
            self._identification_round()
        else:
            self._distribution_round()
        return not self.done

    def run(self, max_rounds: Optional[int] = None) -> IdentificationResult:
        """Run rounds until completion and return the result."""
        limit = max_rounds if max_rounds is not None else self.ttl + 1
        for _ in range(limit):
            if not self.round():
                break
        if self._result is None:
            self._finish(stable=False)
        assert self._result is not None
        return self._result

    # ------------------------------------------------------------------ #
    # phases
    # ------------------------------------------------------------------ #
    def _identification_round(self) -> None:
        self._identification_rounds += 1
        # Activation wave: an inactive frame node becomes active when an
        # active neighbour relays the identification message to it.
        newly_active: Set[Coord] = set()
        for node in self._active:
            if not self._relay_ok(node):
                self._stable = False
                continue
            for neighbor in self.mesh.neighbors(node):
                if neighbor in self._frame and neighbor not in self._active:
                    if not self._relay_ok(neighbor):
                        self._stable = False
                        continue
                    newly_active.add(neighbor)
        # Partial-extent exchange among active nodes: every active node merges
        # its own observation with what its active neighbours knew at the
        # start of the round (synchronous one-hop information flow).
        snapshot = dict(self._partial)
        progressed = bool(newly_active)
        for node in self._active | newly_active:
            if not self._relay_ok(node):
                continue
            before = self._partial.get(node)
            self._activate(node, None)
            for neighbor in self.mesh.neighbors(node):
                if neighbor in self._active and neighbor in snapshot:
                    self._merge(node, snapshot[neighbor])
            if self._partial.get(node) != before:
                progressed = True
        self._active |= newly_active

        formed = self._partial.get(self.opposite_corner)
        if formed is not None and formed == self.block.extent:
            # Block information is formed at the opposite corner; start the
            # back-propagation of the identified record (Figure 6).
            self._phase = "distribute"
            self._distribution_front = {self.opposite_corner}
            self._deliver(self.opposite_corner)
            return
        if not progressed:
            # The wave has covered everything it can and no partial extent is
            # still improving, yet the opposite corner never formed the full
            # block — the block changed shape mid-flight (unstable).
            self._finish(stable=False)

    def _deliver(self, node: Coord) -> None:
        if node in self._informed:
            return
        self._informed.add(node)
        self.state.add_block_info(node, BlockRecord(self.block.extent, self.version))

    def _distribution_round(self) -> None:
        self._distribution_rounds += 1
        new_front: Set[Coord] = set()
        for node in self._distribution_front:
            for neighbor in self.mesh.neighbors(node):
                if neighbor in self._frame and neighbor not in self._informed:
                    if not self._relay_ok(neighbor):
                        self._stable = False
                        continue
                    self._deliver(neighbor)
                    new_front.add(neighbor)
        self._distribution_front = new_front
        if not new_front:
            self._finish(stable=self._stable and self._informed >= {
                n for n in self._frame if self._relay_ok(n)
            })

    def _finish(self, stable: bool) -> None:
        extent = self.block.extent if stable or self._informed else None
        self._result = IdentificationResult(
            extent=extent if stable else self._partial.get(self.opposite_corner),
            initialization_corner=self.initialization_corner,
            opposite_corner=self.opposite_corner,
            identification_rounds=self._identification_rounds,
            distribution_rounds=self._distribution_rounds,
            stable=stable,
            version=self.version,
        )

    # ------------------------------------------------------------------ #
    # introspection used by tests and the simulator
    # ------------------------------------------------------------------ #
    @property
    def informed_nodes(self) -> Set[Coord]:
        """Frame nodes that already hold the identified block record."""
        return set(self._informed)

    @property
    def frame(self) -> Set[Coord]:
        """The block's adjacency frame inside the mesh."""
        return set(self._frame)


def identify_block(
    state: InformationState,
    block: FaultyBlock,
    *,
    version: int = 0,
) -> IdentificationResult:
    """Run a full identification process for ``block`` on ``state``."""
    protocol = IdentificationProtocol(state, block, version=version)
    return protocol.run()
