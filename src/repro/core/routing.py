"""Fault-information-based PCS routing (Algorithm 3).

The routing process is the *path-setup* phase of pipelined circuit
switching: a probe carries a header containing the destination address and,
for every forwarding node along the path, the list of outgoing directions
already tried there.  At each step the current node either forwards the
probe along the unused outgoing direction with the highest priority or
backtracks; a probe backtracked all the way to the source with no unused
direction reports the destination unreachable.

Direction priority (Algorithm 3): *preferred* directions first, then *spare*
directions along a block (used to walk around a block), then *preferred but
detour* directions (preferred directions that the node's boundary/block
information says would lead into a dangerous area), and the *incoming*
direction last.  A preferred direction is demoted to preferred-but-detour at
a node exactly when the node holds information about a block such that the
next hop would enter the block's dangerous prism while the destination lies
in the opposite prism — the *critical routing* situation of Section 2.2.

Two extra, deliberately conservative refinements keep the implementation
faithful while fully specified (the paper leaves them implicit):

* spare directions *not* adjacent to any known block are ranked below
  preferred-but-detour directions (they move away from the destination with
  no block to skirt);
* a neighbor known to be *faulty* (adjacent-fault detection) is never
  selected, and a neighbor known to be *disabled* is only selected when no
  better class remains (stepping onto a disabled node forces an immediate
  backtrack by rule 1 of Algorithm 3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, IntEnum
from typing import (
    AbstractSet,
    Callable,
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Protocol,
    Sequence,
    Set,
    Tuple,
)

from repro.backend import VECTOR, resolve_backend
from repro.core.state import (
    BlockRecord,
    BoundaryInfo,
    ExtentFrame,
    PrismPair,
    resolve_routing_geometry,
)
from repro.faults.status import NodeStatus
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]

#: Predicate deciding whether the link from the first node to the second is
#: currently unavailable (reserved by another in-flight circuit).  ``None``
#: everywhere means contention-free routing — the historical behavior.
LinkBlocked = Callable[[Coord, Coord], bool]


class DirectionClass(IntEnum):
    """Priority classes of outgoing directions (lower value = higher priority)."""

    PREFERRED = 0
    SPARE_ALONG_BLOCK = 1
    PREFERRED_DETOUR = 2
    SPARE = 3
    DISABLED_NEIGHBOR = 4
    INCOMING = 5


class RouteOutcome(Enum):
    """Terminal states of a routing probe."""

    DELIVERED = "delivered"
    UNREACHABLE = "unreachable"
    EXHAUSTED = "exhausted"


@dataclass(frozen=True)
class RoutingPolicy:
    """How much fault information the routing decision is allowed to use."""

    name: str
    use_block_info: bool = True
    use_boundary_info: bool = True
    avoid_known_disabled: bool = True

    @classmethod
    def limited_global(cls) -> "RoutingPolicy":
        """The paper's model: block + boundary information where distributed."""
        return cls(name="limited-global")

    @classmethod
    def no_information(cls) -> "RoutingPolicy":
        """Backtracking PCS with adjacent-fault detection only."""
        return cls(
            name="no-information",
            use_block_info=False,
            use_boundary_info=False,
            avoid_known_disabled=False,
        )


class InformationProvider(Protocol):
    """What the routing decision needs to know at a node.

    :class:`repro.core.state.InformationState` satisfies this protocol; the
    simulator provides a time-varying implementation.  Providers may
    additionally expose ``detour_constraints`` / ``known_extent_frames``
    (see :class:`~repro.core.state.InformationState`) to serve the routing
    geometry from a per-node cache; the classification falls back to
    rebuilding it from the two record accessors otherwise.
    """

    mesh: Mesh

    def status(self, node: Sequence[int]) -> NodeStatus: ...

    def blocks_known_at(self, node: Sequence[int]) -> FrozenSet[BlockRecord]: ...

    def boundaries_at(self, node: Sequence[int]) -> FrozenSet[BoundaryInfo]: ...


# ---------------------------------------------------------------------- #
# probe header
# ---------------------------------------------------------------------- #
@dataclass
class ProbeHeader:
    """The PCS probe header: destination plus per-node used directions.

    The stack records the path currently held by the probe (for
    backtracking); ``used`` persists across revisits of a node so a
    forwarding direction at a participant node is never used twice.
    ``trace`` is the probe's full traversal log — every node visited, in
    order, backtracks included — maintained by :meth:`push` / :meth:`pop`
    themselves so there is exactly one source of truth for the reported
    path (scalar probes and the struct-of-arrays table share it).
    """

    destination: Coord
    stack: List[Coord] = field(default_factory=list)
    used: Dict[Coord, Set[Direction]] = field(default_factory=dict)
    trace: List[Coord] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.trace and self.stack:
            self.trace = list(self.stack)

    @property
    def current(self) -> Coord:
        """The node currently holding the probe."""
        return self.stack[-1]

    @property
    def source(self) -> Coord:
        """The node that issued the probe."""
        return self.stack[0]

    @property
    def incoming_direction(self) -> Optional[Direction]:
        """Direction from the previous stack node to the current one."""
        if len(self.stack) < 2:
            return None
        from repro.mesh.directions import direction_between

        return direction_between(self.stack[-2], self.stack[-1])

    _EMPTY_USED: ClassVar[FrozenSet[Direction]] = frozenset()

    def used_at(self, node: Sequence[int]) -> AbstractSet[Direction]:
        """Directions already used when forwarding from ``node``.

        Reading never mutates the header: a node a probe merely inspects
        gets no entry.  :meth:`record_use` is the only writer.
        """
        return self.used.get(tuple(node), self._EMPTY_USED)

    def record_use(self, node: Sequence[int], direction: Direction) -> None:
        """Record that ``direction`` was used at ``node``."""
        self.used.setdefault(tuple(node), set()).add(direction)

    def push(self, node: Sequence[int]) -> None:
        """Advance the probe onto ``node``."""
        node = tuple(node)
        self.stack.append(node)
        self.trace.append(node)

    def pop(self) -> Coord:
        """Backtrack one hop; returns the node the probe retreats to."""
        if len(self.stack) < 2:
            raise RuntimeError("cannot backtrack past the source")
        self.stack.pop()
        retreat = self.stack[-1]
        self.trace.append(retreat)
        return retreat

    @property
    def at_source(self) -> bool:
        """True when the probe currently sits at its source."""
        return len(self.stack) == 1


#: Sentinel decision value meaning "backtrack one hop".
BACKTRACK = "backtrack"

#: Sentinel decision value meaning "stay in place this step" — only produced
#: under contention, when a probe sitting at its source finds every usable
#: direction reserved by another circuit (there is no link to release by
#: backtracking, and the reservations are transient, so the probe waits).
WAIT = "wait"

#: Sentinel decision value meaning "restart the setup from scratch" — only
#: produced under contention.  A probe driven back to its source with every
#: direction marked used has *not* proven the destination unreachable when
#: reservations interfered with its walk (the bookkeeping is contaminated by
#: detours that faults alone would never have forced); it clears its header
#: and retries, like a failed PCS setup being re-issued.
RESTART = "restart"

#: Sentinel for "no precomputed candidates supplied" — distinct from
#: ``None``, which is a meaningful candidate value (rule 1: backtrack
#: unconditionally).  The simulator's vectorized decision batch passes each
#: probe's precomputed candidates through :meth:`RoutingProbe.step`.
UNSET = object()


# ---------------------------------------------------------------------- #
# per-node decision context (batched stepping)
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class NodeContext:
    """Decision inputs at one node, shared by every probe deciding there.

    Everything here is a pure function of the information state and the
    policy, never of the individual probe: the node's own status, the usable
    outgoing directions with their neighbor statuses (faulty neighbors
    already filtered out, in :attr:`Mesh.directions` order), and the node's
    resolved routing geometry.  The per-probe parts of a decision (used
    directions, incoming direction, destination-dependent ordering) are
    applied on top by :func:`classify_directions`.
    """

    status: NodeStatus
    #: ``(direction, neighbor, neighbor_status)`` for every in-mesh,
    #: non-faulty neighbor, in :attr:`Mesh.directions` order.
    usable: Tuple[Tuple[Direction, Coord, NodeStatus], ...]
    constraints: Tuple[PrismPair, ...]
    extent_frames: Tuple[ExtentFrame, ...]


class DecisionCache:
    """Per-node :class:`NodeContext` cache keyed on information mutations.

    The simulator steps every in-flight probe once per simulation step; with
    many probes in flight the per-node inputs of Algorithm 3 (neighbor
    statuses, routing geometry) are recomputed over and over.  This cache
    resolves them once per node and keeps them valid *across* steps until
    the information actually mutates (a labeling status change or a
    block/boundary record change), which at steady state means once per node
    for the whole run.  Contexts replicate exactly what the uncached
    classification reads, so cached and uncached decisions are identical.

    The cache is also the entry point of the **vectorized decision engine**
    (:class:`repro.core.decision.VectorDecisionEngine`): with the ``vector``
    backend, :meth:`batch_candidates` / :meth:`batch_candidate_pairs`
    classify a whole batch of probe headers in one numpy pass instead of a
    per-probe Python loop.  The ``scalar`` backend keeps the reference loop
    (the parity oracle); both produce byte-identical candidate orders.
    """

    def __init__(
        self,
        info: InformationProvider,
        policy: RoutingPolicy,
        backend: Optional[str] = None,
    ) -> None:
        self.info = info
        self.policy = policy
        #: Resolved batch-classification backend (``vector`` or ``scalar``).
        self.backend = resolve_backend(backend)
        self._contexts: Dict[Coord, NodeContext] = {}
        self._token: Optional[Tuple[int, int]] = None
        # Attribute lookups hoisted out of the per-decision token check.
        self._labeling = getattr(info, "labeling", None)
        self._has_record_mutations = hasattr(info, "record_mutations")
        self._vector_engine: Optional[object] = None
        #: Memo of preferred-direction sets keyed by (node, destination) —
        #: a pure function of the mesh, so never invalidated.
        self._preferred: Dict[Tuple[Coord, Coord], FrozenSet[Direction]] = {}

    def _validity_token(self) -> Tuple[int, int]:
        labeling = self._labeling
        return (
            labeling.mutations if labeling is not None else -1,
            self.info.record_mutations if self._has_record_mutations else -1,  # type: ignore[attr-defined]
        )

    def context(self, node: Coord) -> NodeContext:
        """The (possibly cached) decision context at ``node``."""
        token = self._validity_token()
        if token != self._token:
            self._contexts.clear()
            self._token = token
        ctx = self._contexts.get(node)
        if ctx is None:
            ctx = self._build(node)
            self._contexts[node] = ctx
        return ctx

    def preferred(self, node: Coord, destination: Coord) -> FrozenSet[Direction]:
        """Memoized preferred-direction set for a (node, destination) pair."""
        key = (node, destination)
        result = self._preferred.get(key)
        if result is None:
            result = frozenset(self.info.mesh.preferred_directions(node, destination))
            self._preferred[key] = result
        return result

    def _engine(self):
        """The vectorized engine, or ``None`` when it cannot serve this info.

        Vectorization needs the flat status-code array and a way to
        enumerate record-holding nodes; any provider lacking either (only
        custom test doubles in practice) falls back to the scalar loop.
        """
        if self.backend != VECTOR:
            return None
        engine = self._vector_engine
        if engine is None:
            if (
                self._labeling is None
                or not hasattr(self._labeling, "codes")
                or not hasattr(self.info, "nodes_holding_information")
            ):
                return None
            from repro.core.decision import VectorDecisionEngine

            engine = self._vector_engine = VectorDecisionEngine(self.info, self.policy)
        return engine

    def batch_candidates(
        self, headers: Sequence["ProbeHeader"]
    ) -> List[Optional[List[Tuple["DirectionClass", Direction]]]]:
        """One classified candidate list per header, in one pass.

        Byte-identical to calling :func:`decision_candidates` per header;
        the ``vector`` backend computes the whole batch with numpy array
        operations, the ``scalar`` backend loops the reference path.
        """
        engine = self._engine()
        if engine is not None:
            return engine.batch_candidates(headers)
        return [
            decision_candidates(self.info, h, policy=self.policy, cache=self)
            for h in headers
        ]

    def batch_candidate_pairs(
        self, headers: Sequence["ProbeHeader"]
    ) -> List[Optional[List[Tuple[Direction, Coord, int]]]]:
        """Ordered ``(direction, next hop, link slot)`` candidates per header.

        The compact form the simulator's batched step loop consumes: same
        order as :meth:`batch_candidates`, with the priority class dropped
        (no decision consumer reads it) and each candidate's next-hop node
        and canonical link slot precomputed.
        """
        engine = self._engine()
        if engine is not None:
            return engine.batch_candidate_pairs(headers)
        mesh = self.info.mesh
        out: List[Optional[List[Tuple[Direction, Coord, int]]]] = []
        for header in headers:
            candidates = decision_candidates(
                self.info, header, policy=self.policy, cache=self
            )
            if candidates is None:
                out.append(None)
            else:
                node = header.current
                out.append(
                    [
                        (d, nxt, mesh.link_index(node, nxt))
                        for _, d in candidates
                        for nxt in (d.apply(node),)
                    ]
                )
        return out

    def _build(self, node: Coord) -> NodeContext:
        info = self.info
        mesh = info.mesh
        usable: List[Tuple[Direction, Coord, NodeStatus]] = []
        for direction in mesh.directions:
            neighbor = mesh.neighbor(node, direction)
            if neighbor is None:
                continue
            status = info.status(neighbor)
            if status is NodeStatus.FAULTY:
                continue  # adjacent-fault detection: never forward into a fault
            usable.append((direction, neighbor, status))
        constraints, frames = _routing_geometry(info, node, self.policy)
        return NodeContext(
            status=info.status(node),
            usable=tuple(usable),
            constraints=tuple(constraints),
            extent_frames=tuple(frames),
        )


# ---------------------------------------------------------------------- #
# direction classification
# ---------------------------------------------------------------------- #
def _routing_geometry(
    info: InformationProvider, node: Coord, policy: RoutingPolicy
) -> Tuple[Sequence[PrismPair], Sequence[ExtentFrame]]:
    """Resolved detour constraints and extent frames known at ``node``.

    Served from the provider's per-node cache when it has one
    (:class:`~repro.core.state.InformationState` does); otherwise rebuilt
    from the protocol's record accessors.
    """
    constraints_getter = getattr(info, "detour_constraints", None)
    if constraints_getter is not None:
        flags = dict(
            use_block_info=policy.use_block_info,
            use_boundary_info=policy.use_boundary_info,
        )
        return constraints_getter(node, **flags), info.known_extent_frames(node, **flags)

    boundaries = info.boundaries_at(node) if policy.use_boundary_info else ()
    blocks = info.blocks_known_at(node) if policy.use_block_info else ()
    return resolve_routing_geometry(info.mesh, boundaries, blocks)


def _is_detour_direction(
    node: Coord,
    destination: Coord,
    direction: Direction,
    constraints: Iterable[PrismPair],
) -> bool:
    """True iff moving in ``direction`` enters a dangerous area.

    The check is the critical-routing condition: the next hop lies inside
    the dangerous prism of a known block while the destination lies in the
    opposite prism, so every minimal path from inside the prism is cut.
    """
    nxt = direction.apply(node)
    for prism, target in constraints:
        if prism.contains(nxt) and target.contains(destination):
            return True
    return False


def classify_directions(
    info: InformationProvider,
    node: Sequence[int],
    destination: Sequence[int],
    *,
    policy: RoutingPolicy,
    incoming: Optional[Direction] = None,
    used: Optional[AbstractSet[Direction]] = None,
    context: Optional[NodeContext] = None,
    preferred: Optional[AbstractSet[Direction]] = None,
) -> List[Tuple[DirectionClass, Direction]]:
    """Classify and order every usable outgoing direction at ``node``.

    The returned list is sorted by increasing :class:`DirectionClass` (i.e.
    decreasing priority); within a class, preferred directions are ordered by
    decreasing remaining offset along their dimension, everything else by
    ``(dim, sign)`` for determinism.  ``context`` (from a
    :class:`DecisionCache`) supplies the precomputed per-node inputs; the
    classification is identical with or without it.
    """
    mesh = info.mesh
    node = tuple(node)
    destination = tuple(destination)
    used = used or frozenset()
    if context is not None:
        constraints, extent_frames = context.constraints, context.extent_frames
        candidates_iter: Iterable[Tuple[Direction, Coord, NodeStatus]] = context.usable
    else:
        constraints, extent_frames = _routing_geometry(info, node, policy)
        fresh: List[Tuple[Direction, Coord, NodeStatus]] = []
        for direction in mesh.directions:
            neighbor = mesh.neighbor(node, direction)
            if neighbor is None:
                continue
            neighbor_status = info.status(neighbor)
            if neighbor_status is NodeStatus.FAULTY:
                continue  # adjacent-fault detection: never forward into a fault
            fresh.append((direction, neighbor, neighbor_status))
        candidates_iter = fresh
    if preferred is None:
        preferred = set(mesh.preferred_directions(node, destination))

    entries: List[Tuple[DirectionClass, Tuple[int, int, int], Direction]] = []
    for direction, neighbor, neighbor_status in candidates_iter:
        if direction in used:
            continue
        if incoming is not None and direction == incoming.reversed():
            cls = DirectionClass.INCOMING
        elif policy.avoid_known_disabled and neighbor_status is NodeStatus.DISABLED:
            cls = DirectionClass.DISABLED_NEIGHBOR
        elif direction in preferred:
            if _is_detour_direction(node, destination, direction, constraints):
                cls = DirectionClass.PREFERRED_DETOUR
            else:
                cls = DirectionClass.PREFERRED
        else:
            along_block = any(
                frame.contains(neighbor) and not extent.contains(neighbor)
                for extent, frame in extent_frames
            )
            cls = DirectionClass.SPARE_ALONG_BLOCK if along_block else DirectionClass.SPARE
        remaining = abs(destination[direction.dim] - node[direction.dim])
        order_key = (-remaining if cls is DirectionClass.PREFERRED else 0, direction.dim, direction.sign)
        entries.append((cls, order_key, direction))

    entries.sort(key=lambda e: (e[0], e[1]))
    return [(cls, direction) for cls, _, direction in entries]


def decision_candidates(
    info: InformationProvider,
    header: ProbeHeader,
    *,
    policy: RoutingPolicy,
    cache: Optional[DecisionCache] = None,
) -> Optional[List[Tuple[DirectionClass, Direction]]]:
    """The ordered candidate directions of one Algorithm-3 decision step.

    Returns ``None`` when the probe must backtrack unconditionally (rule 1:
    it sits on a disabled node away from its source).  This is the single
    source of truth shared by the contention-free decision and the
    contended variant, so the two can never diverge on the algorithm core.
    ``cache`` batches the per-node inputs across probes and steps without
    changing any decision.
    """
    node = header.current
    if cache is not None:
        context = cache.context(node)
        status = context.status
        preferred: Optional[AbstractSet[Direction]] = cache.preferred(
            node, header.destination
        )
    else:
        context = None
        status = info.status(node)
        preferred = None
    if status is NodeStatus.DISABLED and node != header.source:
        return None
    return classify_directions(
        info,
        node,
        header.destination,
        policy=policy,
        incoming=header.incoming_direction,
        used=header.used_at(node),
        context=context,
        preferred=preferred,
    )


def routing_decision(
    info: InformationProvider,
    header: ProbeHeader,
    *,
    policy: RoutingPolicy,
    cache: Optional[DecisionCache] = None,
) -> Direction | str:
    """One application of Algorithm 3 at the probe's current node.

    Returns the chosen outgoing :class:`Direction`, or :data:`BACKTRACK`.
    """
    candidates = decision_candidates(info, header, policy=policy, cache=cache)
    if not candidates:
        return BACKTRACK
    return candidates[0][1]


# ---------------------------------------------------------------------- #
# probe driver
# ---------------------------------------------------------------------- #
def probe_step_limit(mesh: Mesh) -> int:
    """Worst-case probe walk length for ``mesh``.

    Every (node, direction) pair can be used at most once, each with a
    matching backtrack, plus slack for the initial/terminal hops.  Both
    :func:`route_offline` and the simulator's default probe lifetime derive
    from this single helper so offline and simulated probes exhaust
    consistently.
    """
    return 4 * mesh.size * mesh.n_dims + 4


@dataclass
class RouteResult:
    """Outcome and statistics of one routing process."""

    outcome: RouteOutcome
    path: List[Coord]
    source: Coord
    destination: Coord
    min_distance: int
    forward_hops: int
    backtrack_hops: int

    #: Candidate hops skipped because their link was reserved by another
    #: circuit (always 0 for contention-free routing).
    blocked_hops: int = 0

    #: Times the probe was forced to retreat (or wait) because *every*
    #: otherwise-usable direction was reserved by another circuit.
    setup_retries: int = 0

    @property
    def hops(self) -> int:
        """Total steps taken (forward plus backtrack)."""
        return self.forward_hops + self.backtrack_hops

    @property
    def detours(self) -> Optional[int]:
        """Extra steps over the fault-free minimal distance (delivered only)."""
        if self.outcome is not RouteOutcome.DELIVERED:
            return None
        return self.hops - self.min_distance

    @property
    def delivered(self) -> bool:
        """True iff the probe reached its destination."""
        return self.outcome is RouteOutcome.DELIVERED


class RoutingProbe:
    """A PCS path-setup probe that advances one hop per :meth:`step` call.

    The same object is used by the offline driver (static information) and
    by the simulator (information that changes between steps).
    """

    def __init__(
        self,
        mesh: Mesh,
        source: Sequence[int],
        destination: Sequence[int],
        *,
        policy: Optional[RoutingPolicy] = None,
    ) -> None:
        self.mesh = mesh
        self.source = mesh.validate(source)
        self.destination = mesh.validate(destination)
        self.policy = policy or RoutingPolicy.limited_global()
        self.header = ProbeHeader(destination=self.destination, stack=[self.source])
        self.forward_hops = 0
        self.backtrack_hops = 0
        self.blocked_hops = 0
        self.setup_retries = 0
        #: True iff the last step WAITed (fenced in at the source under
        #: contention).  A wait leaves header and information untouched, so
        #: the simulator may reuse the probe's precomputed candidates next
        #: step instead of reclassifying.
        self.waited = False
        self.outcome: Optional[RouteOutcome] = None
        if self.source == self.destination:
            self.outcome = RouteOutcome.DELIVERED

    @property
    def current(self) -> Coord:
        """Node currently holding the probe."""
        return self.header.current

    @property
    def path(self) -> List[Coord]:
        """Every node visited so far, in order (the header's traversal log)."""
        return self.header.trace

    @property
    def circuit_stack(self) -> List[Coord]:
        """Nodes of the partial circuit the probe currently holds.

        In PCS the links along this stack are reserved while the probe is in
        flight; a backtrack releases the last link.  The simulator's live
        reservation table mirrors exactly this sequence.
        """
        return self.header.stack

    @property
    def done(self) -> bool:
        """True when the probe reached a terminal outcome."""
        return self.outcome is not None

    def step(
        self,
        info: InformationProvider,
        *,
        link_blocked: Optional[LinkBlocked] = None,
        decision_cache: Optional[DecisionCache] = None,
        candidates: object = UNSET,
    ) -> Optional[RouteOutcome]:
        """Advance the probe by one step (one hop forward or one backtrack).

        ``link_blocked`` enables circuit contention: directions whose link is
        currently reserved by another circuit are skipped for this step only
        (they are *not* recorded as used, so a link freed later may still be
        taken).  The contention-free path is untouched when it is ``None``.
        ``decision_cache`` shares per-node decision inputs across probes
        (the simulator's batched stepping) without changing any decision.
        ``candidates`` supplies this step's ordered candidates precomputed
        by the vectorized decision batch — ``None`` or a list of
        ``(direction, next hop)`` pairs, exactly the candidate order the
        probe would have computed itself — and skips the per-probe
        classification entirely.
        """
        if self.done:
            return self.outcome
        nxt: Optional[Coord] = None
        if candidates is not UNSET:
            decision, nxt = self._precomputed_decision(candidates, link_blocked)
        elif link_blocked is None:
            decision = routing_decision(
                info, self.header, policy=self.policy, cache=decision_cache
            )
        else:
            decision = self._contended_decision(info, link_blocked, decision_cache)
        if decision == WAIT:
            self.waited = True
            return None
        self.waited = False
        if decision == RESTART:
            self.header.used.clear()
            self.setup_retries += 1
            return None
        if decision == BACKTRACK:
            if self.header.at_source:
                self.outcome = RouteOutcome.UNREACHABLE
                return self.outcome
            self.header.pop()
            self.backtrack_hops += 1
            return None
        assert isinstance(decision, Direction)
        node = self.header.current
        self.header.record_use(node, decision)
        if nxt is None:
            nxt = self.mesh.neighbor(node, decision)
            assert nxt is not None
        self.header.push(nxt)
        self.forward_hops += 1
        if nxt == self.destination:
            self.outcome = RouteOutcome.DELIVERED
        return self.outcome

    def _precomputed_decision(
        self, candidates: object, link_blocked: Optional[LinkBlocked]
    ) -> Tuple[Direction | str, Optional[Coord]]:
        """Resolve one decision from batch-precomputed candidate pairs.

        Mirrors :func:`routing_decision` (contention-free) and
        :meth:`_contended_decision` (reserved links skipped and counted),
        with the classification already done: ``candidates`` is ``None``
        (rule 1: unconditional backtrack) or an ordered list of
        ``(direction, next hop, link slot)`` triples.  Returns the decision
        plus the chosen next hop, so the forward move needs no neighbor
        lookup; the contended scan probes the reservation ledger by link
        slot when the predicate supports it (the array-backed ledger does).
        """
        if not candidates:
            if (
                candidates is not None  # None = disabled node, must retreat
                and link_blocked is not None
                and self.header.at_source
                and (self.blocked_hops or self.setup_retries)
            ):
                return RESTART, None
            return BACKTRACK, None
        assert isinstance(candidates, list)
        if link_blocked is None:
            direction, nxt, _slot = candidates[0]
            return direction, nxt
        blocked = 0
        slot_blocked = getattr(link_blocked, "slot_blocked", None)
        if slot_blocked is not None:
            for direction, nxt, slot in candidates:
                if slot_blocked(slot):
                    blocked += 1
                    continue
                self.blocked_hops += blocked
                return direction, nxt
        else:
            node = self.header.current
            for direction, nxt, _slot in candidates:
                if link_blocked(node, nxt):
                    blocked += 1
                    continue
                self.blocked_hops += blocked
                return direction, nxt
        self.blocked_hops += blocked
        self.setup_retries += 1
        return (WAIT if self.header.at_source else BACKTRACK), None

    def _contended_decision(
        self,
        info: InformationProvider,
        link_blocked: LinkBlocked,
        decision_cache: Optional[DecisionCache] = None,
    ) -> Direction | str:
        """Algorithm 3 decision with reserved links filtered out.

        Same candidate core as :func:`routing_decision`
        (:func:`decision_candidates`), but candidate directions whose
        outgoing link is held by another circuit are skipped — and counted —
        for this step only.  When every usable direction is reserved, the
        probe retreats one hop (releasing its last link) so it can walk
        around the contention; at the source there is no link to release and
        the reservations are transient, so it waits instead of reporting the
        destination unreachable.
        """
        candidates = decision_candidates(
            info, self.header, policy=self.policy, cache=decision_cache
        )
        if not candidates:
            if (
                candidates is not None  # None = disabled node, must retreat
                and self.header.at_source
                and (self.blocked_hops or self.setup_retries)
            ):
                # Every direction at the source is used up, but reservations
                # interfered along the way: the exhaustion proves nothing
                # about faults.  Re-issue the setup instead of misreporting
                # UNREACHABLE; the probe lifetime still bounds total effort.
                return RESTART
            return BACKTRACK
        node = self.header.current
        blocked = 0
        for _, direction in candidates:
            if link_blocked(node, direction.apply(node)):
                blocked += 1
                continue
            self.blocked_hops += blocked
            return direction
        self.blocked_hops += blocked
        self.setup_retries += 1
        return WAIT if self.header.at_source else BACKTRACK

    def result(self) -> RouteResult:
        """Snapshot of the probe's statistics (terminal or not)."""
        outcome = self.outcome or RouteOutcome.EXHAUSTED
        return RouteResult(
            outcome=outcome,
            path=list(self.path),
            source=self.source,
            destination=self.destination,
            min_distance=self.mesh.distance(self.source, self.destination),
            forward_hops=self.forward_hops,
            backtrack_hops=self.backtrack_hops,
            blocked_hops=self.blocked_hops,
            setup_retries=self.setup_retries,
        )


def route_offline(
    info: InformationProvider,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    policy: Optional[RoutingPolicy] = None,
    max_steps: Optional[int] = None,
    decision_cache: Optional[DecisionCache] = None,
) -> RouteResult:
    """Run Algorithm 3 to completion against a static information snapshot.

    ``max_steps`` defaults to the worst-case walk length — every
    (node, direction) pair used at most once plus the matching backtracks —
    so a terminating probe is never cut short; hitting the limit yields an
    ``EXHAUSTED`` outcome.  ``decision_cache`` shares per-node decision
    inputs across a batch of routes against the same snapshot.
    """
    mesh = info.mesh
    probe = RoutingProbe(mesh, source, destination, policy=policy)
    limit = max_steps if max_steps is not None else probe_step_limit(mesh)
    for _ in range(limit):
        if probe.step(info, decision_cache=decision_cache) is not None:
            break
    return probe.result()
