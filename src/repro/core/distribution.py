"""End-to-end information distribution for a stabilized fault configuration.

This is the offline (fully converged) composition of the three construction
procedures of Algorithm 2: block construction has already produced a
stabilized :class:`~repro.core.block_construction.LabelingState`; for every
block an identification process distributes the block record over the
block's adjacency frame, and a boundary construction distributes boundary
records along every boundary.  The result is the steady-state
:class:`~repro.core.state.InformationState` a routing process sees when the
network has been quiet for long enough (the paper's assumption
``d_i > (a_i + b_i + c_i) / λ`` between fault occurrences).

The per-block round counts are returned as well, since they are the
quantities (``b_i``, ``c_i``) the convergence experiments sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.block_construction import LabelingState, extract_blocks
from repro.core.boundary import BoundaryProtocol
from repro.core.faulty_block import FaultyBlock
from repro.core.identification import IdentificationProtocol, IdentificationResult
from repro.core.state import InformationState
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class DistributionReport:
    """Round counts of a full identification + boundary distribution."""

    #: Identification result per block extent.
    identifications: Dict[Region, IdentificationResult]

    #: Boundary-construction rounds (``c_i``) — a single propagation is run
    #: for all blocks together, as their boundaries interact through merging.
    boundary_rounds: int

    @property
    def identification_rounds(self) -> int:
        """Largest per-block ``b_i`` (the constructions run concurrently)."""
        if not self.identifications:
            return 0
        return max(r.total_rounds for r in self.identifications.values())

    @property
    def total_rounds(self) -> int:
        """``b + c`` — rounds after labeling until all information is in place."""
        return self.identification_rounds + self.boundary_rounds


def distribute_information(
    mesh: Mesh,
    labeling: LabelingState,
    *,
    version: int = 0,
) -> InformationState:
    """Converged information state for a stabilized labeling (records only)."""
    info, _ = distribute_information_with_report(mesh, labeling, version=version)
    return info


def distribute_information_with_report(
    mesh: Mesh,
    labeling: LabelingState,
    *,
    version: int = 0,
) -> Tuple[InformationState, DistributionReport]:
    """Converged information state plus the round counts that produced it."""
    info = InformationState(mesh=mesh, labeling=labeling, version=version)
    blocks = extract_blocks(labeling)
    identifications: Dict[Region, IdentificationResult] = {}
    for block in blocks:
        protocol = IdentificationProtocol(info, block, version=version)
        identifications[block.extent] = protocol.run()
    boundary = BoundaryProtocol.for_blocks(info, blocks, version=version)
    boundary_rounds = boundary.run()
    report = DistributionReport(
        identifications=identifications, boundary_rounds=boundary_rounds
    )
    return info, report


def converged_information(
    mesh: Mesh, faults: Sequence[Sequence[int]], *, version: int = 0
) -> InformationState:
    """Label, identify and distribute for a static fault set in one call."""
    from repro.core.block_construction import build_blocks

    result = build_blocks(mesh, faults)
    return distribute_information(mesh, result.state, version=version)
