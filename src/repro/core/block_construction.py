"""Block construction: the enabled/disabled/clean labeling scheme.

This implements Definition 1 (Wu's enabled/disabled labeling), Definition 4
(the extended scheme with the *clean* state for fault recovery) and
Algorithm 1 of the paper.  The scheme is a purely local, reactive protocol:
each node repeatedly exchanges its status with its neighbors and applies the
five rules until no status changes.  Connected faulty/disabled nodes form
*faulty blocks*; for node faults away from the mesh surface the stabilized
blocks are disjoint hyper-rectangles.

The implementation keeps only non-enabled nodes in memory (everything else
is implicitly enabled) and, per round, re-evaluates only nodes adjacent to a
non-enabled node — matching the paper's claim that *only the affected nodes
update their status*.  The number of synchronous rounds needed to stabilize
after the ``i``-th fault change is the paper's ``a_i``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.backend import VECTOR, resolve_backend
from repro.faults.status import STATUS_BY_CODE, NodeStatus
from repro.core.faulty_block import FaultyBlock
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]

#: Safety valve for the fixpoint iteration; the labeling provably converges
#: in at most O(diameter) rounds, so hitting this limit indicates a bug.
DEFAULT_MAX_ROUNDS = 10_000

_ENABLED = NodeStatus.ENABLED.code
_CLEAN = NodeStatus.CLEAN.code
_DISABLED = NodeStatus.DISABLED.code
_FAULTY = NodeStatus.FAULTY.code


@dataclass(eq=False)
class LabelingState:
    """Per-node status map for the labeling scheme.

    Statuses live in a flat ``int8`` numpy array of status *codes* indexed by
    :meth:`Mesh.index_of` (row-major linear index), so the routing hot
    path's status lookups avoid tuple hashing and the vectorized labeling
    engine can gather neighbor statuses in one stencil pass; the indices of
    non-enabled nodes are tracked on the side, since only those (and their
    neighbors) participate in the labeling rounds.  The scalar accessors
    (:meth:`status`, :meth:`set_status`, …) are thin views over the codes
    array, so both the scalar and vectorized round implementations share one
    representation.
    """

    mesh: Mesh
    _statuses: object = field(default=None)
    _non_enabled: Set[int] = field(default_factory=set)

    #: Count of effective status changes; lets observers (e.g. the
    #: identification protocol) cache derived views and re-derive them only
    #: when the labeling actually moved.
    mutations: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        import numpy as np

        if self._statuses is None or (
            not isinstance(self._statuses, np.ndarray) and not self._statuses
        ):
            self._statuses = np.zeros(self.mesh.size, dtype=np.int8)
        elif not isinstance(self._statuses, np.ndarray):
            # Historic constructor shape: a list of NodeStatus per node.
            self._statuses = np.array(
                [s.code for s in self._statuses], dtype=np.int8
            )

    @property
    def codes(self):
        """The backing ``int8`` status-code array (shared, not a copy)."""
        return self._statuses

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_faults(cls, mesh: Mesh, faults: Iterable[Sequence[int]]) -> "LabelingState":
        """Initial state: the given nodes faulty, every other node enabled."""
        state = cls(mesh=mesh)
        for node in faults:
            state.make_faulty(node)
        return state

    def copy(self) -> "LabelingState":
        """Deep copy of the state (status codes are plain integers)."""
        return LabelingState(
            mesh=self.mesh,
            _statuses=self._statuses.copy(),
            _non_enabled=set(self._non_enabled),
            mutations=self.mutations,
        )

    # ------------------------------------------------------------------ #
    # status access
    # ------------------------------------------------------------------ #
    def status(self, node: Sequence[int]) -> NodeStatus:
        """Current status of ``node`` (enabled when never recorded).

        Coordinates outside the mesh (wrong rank included) read as enabled,
        matching the historic "never recorded" semantics.
        """
        shape = self.mesh.shape
        if len(node) != len(shape):
            return NodeStatus.ENABLED
        idx = 0
        for c, s in zip(node, shape):
            if 0 <= c < s:
                idx = idx * s + c
            else:
                return NodeStatus.ENABLED
        return STATUS_BY_CODE[self._statuses[idx]]

    def set_status(self, node: Sequence[int], status: NodeStatus) -> None:
        """Set ``node``'s status, dropping the entry when it becomes enabled."""
        idx = self.mesh.index_of(node)
        code = status.code
        if self._statuses[idx] == code:
            return
        self._statuses[idx] = code
        if code == _ENABLED:
            self._non_enabled.discard(idx)
        else:
            self._non_enabled.add(idx)
        self.mutations += 1

    def make_faulty(self, node: Sequence[int]) -> None:
        """Mark ``node`` faulty (a new fault occurrence)."""
        self.set_status(node, NodeStatus.FAULTY)

    def recover(self, node: Sequence[int]) -> None:
        """Apply rule 5: a recovered faulty node is labeled clean."""
        node = self.mesh.validate(node)
        if self.status(node) is not NodeStatus.FAULTY:
            raise ValueError(f"cannot recover {node}: it is not faulty")
        self.set_status(node, NodeStatus.CLEAN)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def nodes_with_status(self, status: NodeStatus) -> Set[Coord]:
        """All nodes currently holding ``status`` (not usable for ENABLED)."""
        if status is NodeStatus.ENABLED:
            raise ValueError("enabled nodes are implicit; enumerate the mesh instead")
        coord_of = self.mesh.coord_of
        code = status.code
        return {coord_of(i) for i in self._non_enabled if self._statuses[i] == code}

    @property
    def faulty_nodes(self) -> Set[Coord]:
        """Currently faulty nodes."""
        return self.nodes_with_status(NodeStatus.FAULTY)

    @property
    def disabled_nodes(self) -> Set[Coord]:
        """Currently disabled (non-faulty, block-member) nodes."""
        return self.nodes_with_status(NodeStatus.DISABLED)

    @property
    def clean_nodes(self) -> Set[Coord]:
        """Nodes currently in the transient clean state."""
        return self.nodes_with_status(NodeStatus.CLEAN)

    @property
    def block_nodes(self) -> Set[Coord]:
        """Faulty and disabled nodes (the members of faulty blocks)."""
        coord_of = self.mesh.coord_of
        return {coord_of(i) for i in self._non_enabled if self._statuses[i] >= _DISABLED}

    def non_enabled_nodes(self) -> Dict[Coord, NodeStatus]:
        """Mapping of every explicitly-tracked (non-enabled) node."""
        coord_of = self.mesh.coord_of
        return {
            coord_of(i): STATUS_BY_CODE[self._statuses[i]]
            for i in sorted(self._non_enabled)
        }

    def is_operational(self, node: Sequence[int]) -> bool:
        """True iff ``node`` is not faulty."""
        return self.status(node) is not NodeStatus.FAULTY


# ---------------------------------------------------------------------- #
# Algorithm 1 rules
# ---------------------------------------------------------------------- #
def _has_neighbors_in_different_dims(
    mesh: Mesh, node: Coord, state: LabelingState, statuses: Tuple[NodeStatus, ...]
) -> bool:
    """True iff ``node`` has neighbors with a status in ``statuses`` along
    two or more *different* dimensions."""
    dims: Set[int] = set()
    for direction in mesh.directions:
        neighbor = mesh.neighbor(node, direction)
        if neighbor is None:
            continue
        if state.status(neighbor) in statuses:
            dims.add(direction.dim)
            if len(dims) >= 2:
                return True
    return False


def _has_clean_neighbor(mesh: Mesh, node: Coord, state: LabelingState) -> bool:
    return any(
        state.status(nb) is NodeStatus.CLEAN for nb in mesh.neighbors(node)
    )


def _next_status(mesh: Mesh, node: Coord, state: LabelingState) -> NodeStatus:
    """New status of ``node`` after one application of rules 1–4.

    Rule 5 (faulty→clean on recovery) is event-driven and applied through
    :meth:`LabelingState.recover`, matching the paper where recovery is an
    external occurrence rather than a labeling rule evaluated every round.
    """
    current = state.status(node)
    if current is NodeStatus.FAULTY:
        return current
    if current is NodeStatus.ENABLED:
        # rule 1
        if _has_neighbors_in_different_dims(
            mesh, node, state, (NodeStatus.DISABLED, NodeStatus.FAULTY)
        ):
            return NodeStatus.DISABLED
        return current
    if current is NodeStatus.DISABLED:
        # rule 2
        if _has_clean_neighbor(mesh, node, state) and not _has_neighbors_in_different_dims(
            mesh, node, state, (NodeStatus.FAULTY,)
        ):
            return NodeStatus.CLEAN
        return current
    if current is NodeStatus.CLEAN:
        # rule 3 takes precedence over rule 4
        if _has_neighbors_in_different_dims(mesh, node, state, (NodeStatus.FAULTY,)):
            return NodeStatus.DISABLED
        # rule 4: by synchronous-round semantics every neighbor has observed
        # the clean status during the exchange of this round.
        return NodeStatus.ENABLED
    raise AssertionError(f"unhandled status {current}")  # pragma: no cover


def _candidate_nodes(state: LabelingState) -> Set[Coord]:
    """Nodes whose status could change this round.

    Only non-enabled nodes and their neighbors can change (every rule's
    precondition involves a non-enabled neighbor or a non-enabled self).
    """
    mesh = state.mesh
    candidates: Set[Coord] = set()
    for node, status in state.non_enabled_nodes().items():
        if status is not NodeStatus.FAULTY:
            candidates.add(node)
        for neighbor in mesh.neighbors(node):
            candidates.add(neighbor)
    return candidates


def _labeling_round_scalar(state: LabelingState) -> int:
    """Pure-Python reference round (the parity oracle for the vector engine)."""
    mesh = state.mesh
    updates: List[Tuple[Coord, NodeStatus]] = []
    for node in _candidate_nodes(state):
        old = state.status(node)
        if old is NodeStatus.FAULTY:
            continue
        new = _next_status(mesh, node, state)
        if new is not old:
            updates.append((node, new))
    for node, status in updates:
        state.set_status(node, status)
    return len(updates)


def _labeling_round_vector(state: LabelingState) -> int:
    """One synchronous round as stencil gathers over the flat status array.

    Rules 1–4 only depend on each node's own status and, per dimension,
    on whether *some* neighbor along that dimension is clean / faulty /
    disabled-or-faulty — so one gather through the mesh's neighbor-index
    table plus a per-dimension OR-reduction evaluates every rule for every
    node at once.  Evaluating the whole mesh (instead of the scalar path's
    candidate set) changes nothing: a node with no non-enabled neighbor
    satisfies no rule precondition, which is exactly why the scalar path may
    skip it.
    """
    if not state._non_enabled:
        return 0
    import numpy as np

    mesh = state.mesh
    codes = state._statuses
    n = mesh.n_dims
    # Gather neighbor statuses; the sentinel row (index == size) reads the
    # trailing ENABLED pad, matching the scalar "off-mesh is enabled" view.
    padded = np.empty(mesh.size + 1, dtype=np.int8)
    padded[:-1] = codes
    padded[-1] = _ENABLED
    nb = padded[mesh.neighbor_gather_table]  # (size, 2n), surface order

    # Per-dimension presence masks: columns d and d+n are the two sides of
    # dimension d, so one OR folds them into "dimension d has such a neighbor".
    block_nb = nb >= _DISABLED
    df_dims = (block_nb[:, :n] | block_nb[:, n:]).sum(axis=1, dtype=np.int16)
    faulty_nb = nb == _FAULTY
    f_dims = (faulty_nb[:, :n] | faulty_nb[:, n:]).sum(axis=1, dtype=np.int16)
    has_clean = (nb == _CLEAN).any(axis=1)

    new = codes.copy()
    # rule 1: enabled + disabled/faulty neighbors along >= 2 dimensions.
    new[(codes == _ENABLED) & (df_dims >= 2)] = _DISABLED
    # rule 2: disabled + a clean neighbor + faulty neighbors along < 2 dims.
    new[(codes == _DISABLED) & has_clean & (f_dims < 2)] = _CLEAN
    # rules 3/4: clean goes disabled on >= 2 faulty dimensions, else enabled.
    clean = codes == _CLEAN
    new[clean] = np.where(f_dims[clean] >= 2, _DISABLED, _ENABLED)

    changed = np.flatnonzero(new != codes)
    if changed.size == 0:
        return 0
    codes[changed] = new[changed]
    non_enabled = state._non_enabled
    for i in changed.tolist():
        if codes[i] == _ENABLED:
            non_enabled.discard(i)
        else:
            non_enabled.add(i)
    state.mutations += int(changed.size)
    return int(changed.size)


def labeling_round(state: LabelingState, *, backend: Optional[str] = None) -> int:
    """Run one synchronous round of Algorithm 1 in place.

    Every candidate node reads its neighbors' *old* statuses and computes its
    new status; all updates are then applied simultaneously.  Returns the
    number of nodes whose status changed.

    ``backend`` selects the scalar reference loop or the numpy-vectorized
    engine (``None`` resolves via :func:`repro.backend.resolve_backend`);
    both produce byte-identical statuses, change counts and mutation stamps.
    """
    if resolve_backend(backend) == VECTOR:
        return _labeling_round_vector(state)
    return _labeling_round_scalar(state)


@dataclass(frozen=True)
class BlockConstructionResult:
    """Outcome of running block construction to the fixpoint."""

    #: Number of synchronous rounds until no status changed (the paper's
    #: ``a_i`` for the fault change that triggered the construction).
    rounds: int

    #: Total number of individual status changes applied.
    status_changes: int

    #: The stabilized labeling state.
    state: LabelingState

    @property
    def blocks(self) -> List[FaultyBlock]:
        """The faulty blocks of the stabilized state."""
        return extract_blocks(self.state)


def run_block_construction(
    state: LabelingState,
    max_rounds: int = DEFAULT_MAX_ROUNDS,
    *,
    backend: Optional[str] = None,
) -> BlockConstructionResult:
    """Iterate :func:`labeling_round` until no status changes (Algorithm 1)."""
    resolved = resolve_backend(backend)
    round_fn = (
        _labeling_round_vector if resolved == VECTOR else _labeling_round_scalar
    )
    rounds = 0
    total_changes = 0
    while True:
        changed = round_fn(state)
        if changed == 0:
            break
        rounds += 1
        total_changes += changed
        if rounds > max_rounds:
            raise RuntimeError(
                f"block construction did not converge within {max_rounds} rounds"
            )
    return BlockConstructionResult(rounds=rounds, status_changes=total_changes, state=state)


def build_blocks(
    mesh: Mesh, faults: Iterable[Sequence[int]], *, backend: Optional[str] = None
) -> BlockConstructionResult:
    """Convenience wrapper: label from scratch for a static fault set."""
    state = LabelingState.from_faults(mesh, faults)
    return run_block_construction(state, backend=backend)


def extract_blocks(state: LabelingState) -> List[FaultyBlock]:
    """Connected components of faulty∪disabled nodes as :class:`FaultyBlock`\\ s.

    Connectivity is mesh adjacency.  For a stabilized labeling each component
    is a filled hyper-rectangle; the function does not assume it so callers
    can also inspect transient states.
    """
    mesh = state.mesh
    members = state.block_nodes
    faulty = state.faulty_nodes
    seen: Set[Coord] = set()
    blocks: List[FaultyBlock] = []
    for start in sorted(members):
        if start in seen:
            continue
        component: Set[Coord] = set()
        frontier = [start]
        seen.add(start)
        while frontier:
            node = frontier.pop()
            component.add(node)
            for neighbor in mesh.neighbors(node):
                if neighbor in members and neighbor not in seen:
                    seen.add(neighbor)
                    frontier.append(neighbor)
        blocks.append(
            FaultyBlock.from_nodes(
                sorted(component), faulty_nodes=sorted(component & faulty)
            )
        )
    return blocks
