"""Fault injection generators.

All generators honour the paper's standing assumption that *no fault occurs
on the outmost surface of the mesh* (which, combined with the block fault
model, guarantees the enabled portion of the mesh stays connected).  They
take a :class:`numpy.random.Generator` so experiments are reproducible from
a seed.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind

Coord = Tuple[int, ...]


class FaultInjectionError(RuntimeError):
    """Raised when a generator cannot satisfy its constraints."""


def _interior_candidates(
    mesh: Mesh, margin: int, exclude: Set[Coord]
) -> List[Coord]:
    region = mesh.interior_region(margin)
    return [p for p in region.iter_points() if p not in exclude]


def uniform_random_faults(
    mesh: Mesh,
    count: int,
    rng: np.random.Generator,
    *,
    margin: int = 1,
    exclude: Optional[Sequence[Sequence[int]]] = None,
) -> List[Coord]:
    """``count`` distinct faulty nodes drawn uniformly from the mesh interior.

    Parameters
    ----------
    margin:
        Minimum distance from the outmost surface (the paper assumes faults
        never occur on the surface itself, i.e. ``margin >= 1``).
    exclude:
        Nodes that must stay non-faulty (e.g. sources/destinations of the
        traffic workload).
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    excluded = {tuple(e) for e in (exclude or [])}
    candidates = _interior_candidates(mesh, margin, excluded)
    if count > len(candidates):
        raise FaultInjectionError(
            f"cannot place {count} faults in mesh {mesh.shape} "
            f"(only {len(candidates)} interior candidates)"
        )
    picks = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in picks]


def clustered_faults(
    mesh: Mesh,
    count: int,
    rng: np.random.Generator,
    *,
    spread: int = 2,
    margin: int = 1,
    seed_node: Optional[Sequence[int]] = None,
    exclude: Optional[Sequence[Sequence[int]]] = None,
) -> List[Coord]:
    """``count`` faults clustered within ``spread`` hops of a seed node.

    Clustered faults are the interesting case for the faulty-block model:
    they coalesce into a single block whose extent grows with ``spread``.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    excluded = {tuple(e) for e in (exclude or [])}
    interior = mesh.interior_region(margin)
    if seed_node is None:
        candidates = _interior_candidates(mesh, margin, excluded)
        if not candidates:
            raise FaultInjectionError("mesh interior is empty")
        seed_node = candidates[int(rng.integers(len(candidates)))]
    seed = mesh.validate(seed_node)
    cluster_region = Region.single(seed).expand(spread).intersection(interior)
    if cluster_region is None:
        raise FaultInjectionError("cluster region falls outside the mesh interior")
    candidates = [p for p in cluster_region.iter_points() if p not in excluded]
    if count > len(candidates):
        raise FaultInjectionError(
            f"cannot place {count} clustered faults with spread {spread} "
            f"around {seed} (only {len(candidates)} candidates)"
        )
    picks = rng.choice(len(candidates), size=count, replace=False)
    return [candidates[int(i)] for i in picks]


def block_seed_faults(
    mesh: Mesh,
    extent: Region,
    rng: np.random.Generator,
    *,
    density: float = 0.5,
    minimum: int = 1,
) -> List[Coord]:
    """Faults sampled inside ``extent`` so labeling produces (roughly) that block.

    A fraction ``density`` of the nodes of ``extent`` is made faulty; the
    corners of the extent are always included so the stabilized faulty block
    spans the whole extent (labeling fills in concave gaps as *disabled*).
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    clipped = mesh.clip_region(extent)
    if clipped is None or clipped != extent:
        raise FaultInjectionError(f"extent {extent} is not fully inside mesh {mesh.shape}")
    interior = mesh.interior_region(1)
    if not interior.contains_region(extent):
        raise FaultInjectionError(
            "extent touches the outmost surface; the paper assumes interior faults"
        )
    points = list(extent.iter_points())
    corners = set(extent.corner_points())
    target = max(minimum, int(round(density * len(points))), len(corners))
    chosen: Set[Coord] = set(corners)
    remaining = [p for p in points if p not in chosen]
    rng.shuffle(remaining)
    for p in remaining:
        if len(chosen) >= target:
            break
        chosen.add(p)
    return sorted(chosen)


def dynamic_schedule(
    faults: Sequence[Sequence[int]],
    *,
    start_time: int = 0,
    interval: int | Sequence[int] = 8,
    initial: Optional[Sequence[Sequence[int]]] = None,
) -> DynamicFaultSchedule:
    """Build a schedule where ``faults`` occur one per interval.

    Parameters
    ----------
    faults:
        Nodes that become faulty dynamically, in occurrence order
        (``f_1 .. f_F``).
    interval:
        Either a constant interval ``d`` (every ``d_i = d``) or a sequence of
        ``F - 1`` (or ``F``) per-occurrence intervals.
    initial:
        Nodes already faulty before step 0 (the ``p`` pre-existing faults of
        a routing started at ``t = 0``).
    """
    fault_nodes = [tuple(f) for f in faults]
    if isinstance(interval, int):
        intervals = [interval] * len(fault_nodes)
    else:
        intervals = list(interval)
        if len(intervals) < len(fault_nodes) - 1:
            raise ValueError(
                "need at least F-1 intervals for F dynamic faults, "
                f"got {len(intervals)} for {len(fault_nodes)}"
            )
        while len(intervals) < len(fault_nodes):
            intervals.append(intervals[-1] if intervals else 0)
    if any(d < 0 for d in intervals):
        raise ValueError("intervals must be non-negative")

    events: List[FaultEvent] = []
    time = start_time
    for i, node in enumerate(fault_nodes):
        events.append(FaultEvent(time, node, FaultEventKind.FAULT))
        if i < len(fault_nodes) - 1:
            time += intervals[i]
    return DynamicFaultSchedule(
        events=events,
        initial_faults={tuple(f) for f in (initial or [])},
    )


def recovery_schedule(
    recoveries: Sequence[Sequence[int]],
    *,
    initial: Sequence[Sequence[int]],
    start_time: int = 0,
    interval: int = 8,
) -> DynamicFaultSchedule:
    """Build a schedule where initially-faulty nodes recover one per interval."""
    initial_set = {tuple(f) for f in initial}
    events: List[FaultEvent] = []
    time = start_time
    for node in recoveries:
        node = tuple(node)
        if node not in initial_set:
            raise FaultInjectionError(
                f"cannot schedule recovery of {node}: it is not initially faulty"
            )
        events.append(FaultEvent(time, node, FaultEventKind.RECOVERY))
        time += interval
    return DynamicFaultSchedule(events=events, initial_faults=initial_set)
