"""Link faults.

The paper's fault model is node-based and notes that "link faults can be
treated as node faults".  This module provides that treatment: a faulty link
is mapped onto node faults so that the block model, identification, boundary
construction and routing all apply unchanged.

Two mappings are offered:

* :func:`endpoints_as_node_faults` — the conservative mapping used in the
  faulty-block literature: for each faulty link, mark one endpoint faulty
  (preferring an endpoint that already borders other faults, then the one
  further from the mesh surface, so the resulting blocks stay interior and
  small);
* :class:`LinkFaultSet` — an exact per-link view used by tests and by users
  who want to know whether a specific link is usable regardless of the node
  mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.mesh.coords import canonical_link, is_adjacent
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]
Link = Tuple[Coord, Coord]


@dataclass(frozen=True)
class LinkFault:
    """A single faulty link between two adjacent nodes.

    Endpoints are normalized through the shared
    :func:`repro.mesh.coords.canonical_link` at construction, so two
    :class:`LinkFault` objects naming the same physical link compare (and
    hash) equal regardless of the endpoint order they were built with — the
    same canonicalization the circuit ledger and the contention machinery
    use.
    """

    u: Coord
    v: Coord

    def __post_init__(self) -> None:
        u, v = tuple(self.u), tuple(self.v)
        if not is_adjacent(u, v):
            raise ValueError(f"{u} and {v} are not adjacent; not a mesh link")
        u, v = canonical_link(u, v)
        object.__setattr__(self, "u", u)
        object.__setattr__(self, "v", v)

    @property
    def canonical(self) -> Link:
        """Order-independent link identifier."""
        return canonical_link(self.u, self.v)

    def index_in(self, mesh: Mesh) -> int:
        """The link's flat canonical index (:meth:`Mesh.link_index`)."""
        return mesh.link_index(self.u, self.v)


@dataclass(frozen=True)
class LinkFaultSet:
    """A collection of faulty links with membership queries."""

    links: FrozenSet[Link]

    @classmethod
    def of(cls, faults: Iterable[LinkFault | Tuple[Sequence[int], Sequence[int]]]) -> "LinkFaultSet":
        """Build a set from :class:`LinkFault` objects or raw endpoint pairs."""
        canon: Set[Link] = set()
        for fault in faults:
            if isinstance(fault, LinkFault):
                canon.add(fault.canonical)
            else:
                u, v = fault
                canon.add(LinkFault(tuple(u), tuple(v)).canonical)
        return cls(frozenset(canon))

    def is_faulty(self, u: Sequence[int], v: Sequence[int]) -> bool:
        """True iff the link between ``u`` and ``v`` is faulty."""
        return canonical_link(u, v) in self.links

    def indices(self, mesh: Mesh) -> FrozenSet[int]:
        """The faulty links as flat canonical indices (:meth:`Mesh.link_index`).

        This is the representation the numpy reservation ledger keys by; the
        round-trip ``mesh.link_of_index(i) in self.links`` holds for every
        returned index.
        """
        return frozenset(mesh.link_index(u, v) for u, v in self.links)

    def __len__(self) -> int:
        return len(self.links)


def endpoints_as_node_faults(
    mesh: Mesh,
    link_faults: Iterable[LinkFault | Tuple[Sequence[int], Sequence[int]]],
    *,
    existing_node_faults: Iterable[Sequence[int]] = (),
) -> List[Coord]:
    """Map link faults to node faults ("link faults can be treated as node faults").

    For every faulty link exactly one endpoint is marked faulty.  The choice
    prefers (1) an endpoint that is already faulty (no new fault needed),
    then (2) an endpoint adjacent to an already-chosen fault (so link faults
    around the same spot coalesce into one block), then (3) the endpoint
    farther from the outmost surface (keeping the paper's interior-fault
    assumption intact whenever possible).
    """
    fault_set = LinkFaultSet.of(link_faults)
    chosen: Set[Coord] = {tuple(f) for f in existing_node_faults}
    new_faults: List[Coord] = []

    def surface_distance(node: Coord) -> int:
        return min(
            min(c, s - 1 - c) for c, s in zip(node, mesh.shape)
        )

    for u, v in sorted(fault_set.links):
        if u in chosen or v in chosen:
            continue
        u_near_chosen = any(is_adjacent(u, c) for c in chosen)
        v_near_chosen = any(is_adjacent(v, c) for c in chosen)
        if u_near_chosen != v_near_chosen:
            pick = u if u_near_chosen else v
        elif surface_distance(u) != surface_distance(v):
            pick = u if surface_distance(u) > surface_distance(v) else v
        else:
            pick = u
        chosen.add(pick)
        new_faults.append(pick)
    return new_faults
