"""Fault substrate: node status, dynamic fault schedules and injection.

The paper's dynamic fault model assumes at most ``F`` faulty nodes; faults
``f_1 .. f_F`` occur at times ``t_1 .. t_F`` with inter-occurrence intervals
``d_i = t_{i+1} - t_i``, and nodes may also recover from faulty status.  The
modules here provide:

* :mod:`repro.faults.status` — the four node states used by the extended
  labeling scheme (enabled, disabled, clean, faulty);
* :mod:`repro.faults.schedule` — timed fault/recovery event schedules;
* :mod:`repro.faults.injection` — random and structured fault generators
  honouring the paper's assumptions (no fault on the outmost surface).
"""

from repro.faults.injection import (
    FaultInjectionError,
    block_seed_faults,
    clustered_faults,
    dynamic_schedule,
    recovery_schedule,
    uniform_random_faults,
)
from repro.faults.links import LinkFault, LinkFaultSet, endpoints_as_node_faults
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.faults.status import NodeStatus
from repro.faults.workload import (
    FaultWorkload,
    burst_schedule,
    mtbf_schedule,
    workload_schedule,
)

__all__ = [
    "DynamicFaultSchedule",
    "FaultEvent",
    "FaultEventKind",
    "FaultInjectionError",
    "FaultWorkload",
    "LinkFault",
    "LinkFaultSet",
    "NodeStatus",
    "block_seed_faults",
    "burst_schedule",
    "clustered_faults",
    "dynamic_schedule",
    "endpoints_as_node_faults",
    "mtbf_schedule",
    "recovery_schedule",
    "uniform_random_faults",
    "workload_schedule",
]
