"""Seeded fault/repair workloads for measurements under load.

The schedules in :mod:`repro.faults.injection` script faults at fixed
intervals; a throughput measurement instead wants the *operator's* view of
failure: components fail randomly at some rate (MTBF), repairs bring them
back after some delay (MTTR), and occasionally a correlated burst takes
several nodes down at once.  Both generators here produce plain
:class:`~repro.faults.schedule.DynamicFaultSchedule` objects, deterministic
in their seed, honouring the paper's interior-only fault assumption:

* :func:`mtbf_schedule` — geometric inter-fault gaps with mean ``1/rate``
  steps inside ``[start, stop)``, each fault on a fresh interior node,
  repaired ``repair_after`` steps later (0 = permanent);
* :func:`burst_schedule` — ``count`` simultaneous faults at one step (the
  correlated-failure case), repaired together.

Each node is faulted at most once per schedule, so fault and recovery
events can never conflict no matter how they interleave — the schedule's
own validation stays trivially satisfied.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Set, Tuple, Union

import numpy as np

from repro.faults.injection import FaultInjectionError, _interior_candidates
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]

__all__ = ["FaultWorkload", "mtbf_schedule", "burst_schedule", "workload_schedule"]


@dataclass(frozen=True)
class FaultWorkload:
    """Declarative MTBF/MTTR fault process for one measurement window.

    ``rate`` is the per-step probability that a new fault occurs somewhere
    in the mesh (mean time between failures ``1/rate`` steps); a fault is
    repaired ``repair_after`` steps after it occurred (``0`` leaves it
    permanent).  Faults are only generated inside ``[start, stop)`` — the
    measurement window — so warmup and drain stay fault-transition free.
    """

    rate: float
    repair_after: int = 0
    start: int = 0
    stop: int = 0
    max_faults: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate < 1.0:
            raise ValueError("fault rate must be within [0, 1)")
        if self.repair_after < 0:
            raise ValueError("repair_after must be non-negative")
        if self.stop < self.start:
            raise ValueError("need start <= stop")
        if self.max_faults is not None and self.max_faults < 0:
            raise ValueError("max_faults must be non-negative")


def _rng(seed: Union[int, np.random.Generator]) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def _candidates(
    mesh: Mesh,
    margin: int,
    initial: Sequence[Sequence[int]],
    exclude: Sequence[Sequence[int]],
) -> List[Coord]:
    blocked: Set[Coord] = {tuple(p) for p in initial}
    blocked.update(tuple(p) for p in exclude)
    return _interior_candidates(mesh, margin, blocked)


def mtbf_schedule(
    mesh: Mesh,
    workload: FaultWorkload,
    seed: Union[int, np.random.Generator] = 0,
    *,
    initial: Sequence[Sequence[int]] = (),
    exclude: Sequence[Sequence[int]] = (),
    margin: int = 1,
) -> DynamicFaultSchedule:
    """Seeded MTBF/MTTR fault process as a dynamic schedule.

    Inter-fault gaps are geometric with success probability
    ``workload.rate`` (so at most one fault fires per step and the mean gap
    is ``1/rate``); each fault lands on a uniformly drawn interior node not
    yet used, not in ``initial`` (the static pre-stabilized faults, kept as
    the schedule's initial set) and not in ``exclude``.  With
    ``repair_after > 0`` every fault is followed by its recovery; the
    recovery may fall past ``stop`` (a fault near the window's end is still
    unrepaired when measurement stops — the SLO metrics treat that as
    not-yet-recovered).
    """
    rng = _rng(seed)
    events: List[FaultEvent] = []
    if workload.rate > 0.0 and workload.stop > workload.start:
        pool = _candidates(mesh, margin, initial, exclude)
        budget = workload.max_faults
        t = workload.start - 1
        while pool:
            t += int(rng.geometric(workload.rate))
            if t >= workload.stop:
                break
            if budget is not None and len(events) // (2 if workload.repair_after else 1) >= budget:
                break
            node = pool.pop(int(rng.integers(len(pool))))
            events.append(FaultEvent(t, node, FaultEventKind.FAULT))
            if workload.repair_after > 0:
                events.append(
                    FaultEvent(t + workload.repair_after, node, FaultEventKind.RECOVERY)
                )
    return DynamicFaultSchedule(
        events=events, initial_faults={tuple(p) for p in initial}
    )


def burst_schedule(
    mesh: Mesh,
    count: int,
    at: int,
    seed: Union[int, np.random.Generator] = 0,
    *,
    repair_after: int = 0,
    initial: Sequence[Sequence[int]] = (),
    exclude: Sequence[Sequence[int]] = (),
    margin: int = 1,
) -> DynamicFaultSchedule:
    """``count`` simultaneous faults at step ``at`` (a correlated burst).

    All burst nodes fail in the same step and, with ``repair_after > 0``,
    recover together — the worst-case transient a recovery SLO should see.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if at < 0:
        raise ValueError("burst step must be non-negative")
    rng = _rng(seed)
    pool = _candidates(mesh, margin, initial, exclude)
    if count > len(pool):
        raise FaultInjectionError(
            f"cannot burst {count} faults in mesh {mesh.shape} "
            f"(only {len(pool)} interior candidates)"
        )
    picks = rng.choice(len(pool), size=count, replace=False)
    events: List[FaultEvent] = []
    for i in picks:
        node = pool[int(i)]
        events.append(FaultEvent(at, node, FaultEventKind.FAULT))
        if repair_after > 0:
            events.append(
                FaultEvent(at + repair_after, node, FaultEventKind.RECOVERY)
            )
    return DynamicFaultSchedule(
        events=events, initial_faults={tuple(p) for p in initial}
    )


def workload_schedule(
    mesh: Mesh,
    *,
    rate: float,
    start: int,
    stop: int,
    repair_after: int = 0,
    seed: Union[int, np.random.Generator] = 0,
    initial: Sequence[Sequence[int]] = (),
    exclude: Sequence[Sequence[int]] = (),
    margin: int = 1,
) -> DynamicFaultSchedule:
    """Convenience: :func:`mtbf_schedule` from flat parameters.

    The shape the throughput entry points use — ``rate``/``repair_after``
    straight off an experiment cell, window bounds from its
    :class:`~repro.throughput.measure.MeasurementWindows`.
    """
    workload = FaultWorkload(
        rate=rate, repair_after=repair_after, start=start, stop=stop
    )
    return mtbf_schedule(
        mesh, workload, seed, initial=initial, exclude=exclude, margin=margin
    )
