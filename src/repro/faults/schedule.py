"""Timed fault and recovery schedules (the paper's dynamic fault model).

A :class:`DynamicFaultSchedule` is an ordered list of :class:`FaultEvent`
items.  Each event makes one node faulty or recovers one faulty node at an
integer simulation *step*.  The schedule exposes the quantities used
throughout the paper's analysis:

* ``F``            — total number of fault occurrences,
* ``t_i``          — the occurrence step of the ``i``-th fault,
* ``d_i``          — the interval ``t_{i+1} - t_i`` between occurrences,
* ``p(t)``         — the number of faults that occurred at or before ``t``
  (the paper's ``p = max{l | t_l <= t}`` for a routing started at ``t``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, List, Sequence, Set, Tuple

Coord = Tuple[int, ...]


class FaultEventKind(str, Enum):
    """Kind of a timed fault event."""

    #: The node becomes faulty at the event step.
    FAULT = "fault"

    #: The node recovers from faulty status at the event step.
    RECOVERY = "recovery"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True, order=True)
class FaultEvent:
    """A single timed status change of one node."""

    time: int
    node: Coord
    kind: FaultEventKind = FaultEventKind.FAULT

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")
        object.__setattr__(self, "node", tuple(self.node))


@dataclass
class DynamicFaultSchedule:
    """An ordered collection of fault/recovery events.

    The schedule validates basic sanity: a node cannot fail while already
    faulty, and cannot recover unless it is currently faulty (given the
    initially-faulty set and previous events).
    """

    events: List[FaultEvent] = field(default_factory=list)
    initial_faults: Set[Coord] = field(default_factory=set)

    def __post_init__(self) -> None:
        self.events = sorted(FaultEvent(e.time, tuple(e.node), e.kind) for e in self.events)
        self.initial_faults = {tuple(n) for n in self.initial_faults}
        self._validate()

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def static(cls, faults: Iterable[Sequence[int]]) -> "DynamicFaultSchedule":
        """A schedule with a fixed fault set present from step 0 onwards."""
        return cls(events=[], initial_faults={tuple(f) for f in faults})

    def with_event(self, event: FaultEvent) -> "DynamicFaultSchedule":
        """A new schedule with ``event`` appended (schedules are immutable-ish)."""
        return DynamicFaultSchedule(
            events=[*self.events, event], initial_faults=set(self.initial_faults)
        )

    def _validate(self) -> None:
        faulty: Set[Coord] = set(self.initial_faults)
        for event in self.events:
            if event.kind is FaultEventKind.FAULT:
                if event.node in faulty:
                    raise ValueError(
                        f"node {event.node} is already faulty at step {event.time}"
                    )
                faulty.add(event.node)
            else:
                if event.node not in faulty:
                    raise ValueError(
                        f"node {event.node} cannot recover at step {event.time}: "
                        "it is not faulty"
                    )
                faulty.discard(event.node)

    # ------------------------------------------------------------------ #
    # paper quantities
    # ------------------------------------------------------------------ #
    @property
    def fault_events(self) -> List[FaultEvent]:
        """Only the FAULT events, in time order (the paper's ``f_1..f_F``)."""
        return [e for e in self.events if e.kind is FaultEventKind.FAULT]

    @property
    def recovery_events(self) -> List[FaultEvent]:
        """Only the RECOVERY events, in time order."""
        return [e for e in self.events if e.kind is FaultEventKind.RECOVERY]

    @property
    def total_faults(self) -> int:
        """``F`` — number of dynamic fault occurrences (initial faults excluded)."""
        return len(self.fault_events)

    @property
    def occurrence_times(self) -> Tuple[int, ...]:
        """The occurrence steps ``t_1 .. t_F``."""
        return tuple(e.time for e in self.fault_events)

    @property
    def intervals(self) -> Tuple[int, ...]:
        """The intervals ``d_i = t_{i+1} - t_i`` (length ``F - 1``)."""
        times = self.occurrence_times
        return tuple(b - a for a, b in zip(times, times[1:]))

    def faults_before(self, time: int) -> int:
        """``p`` — how many dynamic faults occurred at or before ``time``."""
        return sum(1 for e in self.fault_events if e.time <= time)

    @property
    def horizon(self) -> int:
        """Last event step (0 for a purely static schedule)."""
        return self.events[-1].time if self.events else 0

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def events_at(self, time: int) -> List[FaultEvent]:
        """Events scheduled exactly at ``time``."""
        return [e for e in self.events if e.time == time]

    def faulty_set_at(self, time: int) -> Set[Coord]:
        """The set of faulty nodes after applying all events up to ``time``."""
        faulty: Set[Coord] = set(self.initial_faults)
        for event in self.events:
            if event.time > time:
                break
            if event.kind is FaultEventKind.FAULT:
                faulty.add(event.node)
            else:
                faulty.discard(event.node)
        return faulty

    def timeline(self) -> Iterator[Tuple[int, Set[Coord]]]:
        """Yield ``(time, faulty_set)`` for every step with at least one event."""
        times = sorted({e.time for e in self.events})
        for t in times:
            yield t, self.faulty_set_at(t)

    def all_nodes_ever_faulty(self) -> Set[Coord]:
        """Every node that is faulty at any point (initial or dynamic)."""
        return set(self.initial_faults) | {e.node for e in self.fault_events}

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)
