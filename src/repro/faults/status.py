"""Node status values of the extended enabled/disabled labeling scheme.

Definition 1 (Wu) uses three states — *faulty*, *enabled*, *disabled* — to
form faulty blocks.  Definition 4 of the paper adds a transient *clean*
state used while a recovered node re-joins the network: a recovered node is
first labeled clean, its clean status propagates to disabled neighbors that
no longer need to be disabled, and clean nodes become enabled once all their
neighbors have observed the clean status.
"""

from __future__ import annotations

from enum import Enum
from typing import Tuple


class NodeStatus(str, Enum):
    """Status of a mesh node under the extended labeling scheme."""

    #: The node is non-faulty and participates fully in routing.
    ENABLED = "enabled"

    #: The node is non-faulty but belongs to a faulty block: it has two or
    #: more disabled/faulty neighbors along different dimensions and routing
    #: through it risks entering a concave fault region.
    DISABLED = "disabled"

    #: Transient state of Definition 4: the node (or one of its neighbors)
    #: recently recovered and the labeling is re-converging.
    CLEAN = "clean"

    #: The node is faulty and can neither route nor hold information.
    FAULTY = "faulty"

    @property
    def is_operational(self) -> bool:
        """True for statuses that can forward routing probes (non-faulty)."""
        return self is not NodeStatus.FAULTY

    @property
    def in_block(self) -> bool:
        """True for statuses counted as block members (faulty or disabled)."""
        return self in (NodeStatus.FAULTY, NodeStatus.DISABLED)

    @property
    def code(self) -> int:
        """Dense integer code of the status (see :data:`STATUS_BY_CODE`).

        Codes are ordered so that block membership is the single comparison
        ``code >= DISABLED.code`` — the invariant the vectorized labeling
        engine's boolean masks rely on.
        """
        return _STATUS_CODES[self]

    @classmethod
    def from_code(cls, code: int) -> "NodeStatus":
        """Inverse of :attr:`code`."""
        return STATUS_BY_CODE[code]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Status per integer code; the tuple index is the code.  ENABLED must stay
#: code 0 (fresh status arrays are zero-filled) and FAULTY/DISABLED must be
#: the two largest codes (``code >= 2`` ⇔ block member).
STATUS_BY_CODE: Tuple[NodeStatus, ...] = (
    NodeStatus.ENABLED,
    NodeStatus.CLEAN,
    NodeStatus.DISABLED,
    NodeStatus.FAULTY,
)

_STATUS_CODES = {status: code for code, status in enumerate(STATUS_BY_CODE)}
