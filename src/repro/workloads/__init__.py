"""Workloads: traffic patterns and the paper's worked scenarios.

* :mod:`repro.workloads.traffic` — source/destination pair generators
  (uniform random, corner-to-corner, transpose) and their conversion into
  simulator traffic;
* :mod:`repro.workloads.scenarios` — the concrete configurations used in
  the paper's figures (Figure 1 fault set, Figure 4 recovery, parametric
  blocks for Figures 5/6, two-block configurations for Figure 3(d)) plus
  composite dynamic-fault experiment builders;
* :mod:`repro.workloads.congestion` — hotspot/transpose/bursty workloads
  that deliberately contend for links, exercising the simulator's PCS
  circuit phase.
"""

from repro.workloads.congestion import (
    bursty_scenario,
    hotspot_pairs,
    hotspot_scenario,
    transpose_scenario,
)
from repro.workloads.scenarios import (
    DynamicRoutingScenario,
    figure1_scenario,
    figure4_recovery_scenario,
    parametric_block_scenario,
    random_dynamic_scenario,
    two_block_scenario,
)
from repro.workloads.traffic import (
    corner_to_corner_pairs,
    random_pairs,
    to_traffic,
    transpose_pairs,
)

__all__ = [
    "DynamicRoutingScenario",
    "bursty_scenario",
    "corner_to_corner_pairs",
    "figure1_scenario",
    "figure4_recovery_scenario",
    "hotspot_pairs",
    "hotspot_scenario",
    "parametric_block_scenario",
    "random_dynamic_scenario",
    "random_pairs",
    "to_traffic",
    "transpose_pairs",
    "transpose_scenario",
    "two_block_scenario",
]
