"""The paper's worked scenarios and composite experiment builders.

Each ``figureN_scenario`` returns the exact configuration drawn in the
corresponding figure of the paper so that tests and benches can check the
reproduced behaviour against the published description (e.g. Figure 1's four
faults producing the block ``[3:5, 5:6, 3:4]``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.faults.injection import dynamic_schedule, uniform_random_faults
from repro.faults.schedule import DynamicFaultSchedule, FaultEvent, FaultEventKind
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.simulator.traffic import TrafficMessage
from repro.workloads.traffic import random_pairs, to_traffic

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class DynamicRoutingScenario:
    """A complete experiment: mesh, fault schedule and traffic."""

    name: str
    mesh: Mesh
    schedule: DynamicFaultSchedule
    traffic: Tuple[TrafficMessage, ...] = ()
    #: The block extent(s) the paper says should emerge, when applicable.
    expected_extents: Tuple[Region, ...] = ()

    def with_traffic(self, traffic: Sequence[TrafficMessage]) -> "DynamicRoutingScenario":
        """The same scenario with a different traffic batch."""
        return DynamicRoutingScenario(
            name=self.name,
            mesh=self.mesh,
            schedule=self.schedule,
            traffic=tuple(traffic),
            expected_extents=self.expected_extents,
        )


# ---------------------------------------------------------------------- #
# Figure 1 / Figure 2: the four-fault block [3:5, 5:6, 3:4]
# ---------------------------------------------------------------------- #
#: The four faults of Figure 1 in a 3-D mesh.
FIGURE1_FAULTS: Tuple[Coord, ...] = ((3, 5, 4), (4, 5, 4), (5, 5, 3), (3, 6, 3))

#: The block the paper says those faults produce.
FIGURE1_EXTENT = Region((3, 5, 3), (5, 6, 4))

#: The 3-level corner highlighted in Figure 2 and its three edge neighbors.
FIGURE2_CORNER: Coord = (6, 4, 5)
FIGURE2_EDGE_NEIGHBORS: Tuple[Coord, ...] = ((5, 4, 5), (6, 5, 5), (6, 4, 4))


def figure1_scenario(radix: int = 10) -> DynamicRoutingScenario:
    """The static four-fault configuration of Figure 1 (3-D mesh)."""
    if radix < 9:
        raise ValueError("Figure 1 needs a mesh of radix >= 9")
    mesh = Mesh.cube(radix, 3)
    schedule = DynamicFaultSchedule.static(FIGURE1_FAULTS)
    return DynamicRoutingScenario(
        name="figure-1",
        mesh=mesh,
        schedule=schedule,
        expected_extents=(FIGURE1_EXTENT,),
    )


# ---------------------------------------------------------------------- #
# Figure 4: recovery of node (5,5,3)
# ---------------------------------------------------------------------- #
def figure4_recovery_scenario(
    radix: int = 10, *, recovery_time: int = 4
) -> DynamicRoutingScenario:
    """Figure 4: the Figure-1 block with fault (5,5,3) recovering.

    After the recovery stabilizes, the remaining three faults no longer span
    the original extent; the stabilized configuration is the smaller
    block(s) shown in Figure 4(b).
    """
    mesh = Mesh.cube(radix, 3)
    schedule = DynamicFaultSchedule(
        events=[FaultEvent(recovery_time, (5, 5, 3), FaultEventKind.RECOVERY)],
        initial_faults=set(FIGURE1_FAULTS),
    )
    return DynamicRoutingScenario(
        name="figure-4-recovery",
        mesh=mesh,
        schedule=schedule,
        expected_extents=(FIGURE1_EXTENT,),
    )


# ---------------------------------------------------------------------- #
# Figures 3/5/6: parametric blocks and two-block configurations
# ---------------------------------------------------------------------- #
def parametric_block_scenario(
    radix: Optional[int] = None,
    n_dims: Optional[int] = None,
    edge: int = 1,
    *,
    origin: Optional[Sequence[int]] = None,
    shape: Optional[Sequence[int]] = None,
) -> DynamicRoutingScenario:
    """A single cubic block of the given edge length, fully faulty.

    Used by the identification/boundary experiments (Figures 5 and 6) which
    sweep the block size; making every node of the extent faulty guarantees
    the labeling stabilizes to exactly that extent.  The mesh is either the
    ``radix``/``n_dims`` cube or an explicit rectangular ``shape`` — give
    exactly one of the two.
    """
    if edge < 1:
        raise ValueError("edge must be at least 1")
    if shape is not None:
        if radix is not None or n_dims is not None:
            raise ValueError("give either radix and n_dims, or shape — not both")
        mesh = Mesh(tuple(shape))
    elif radix is None or n_dims is None:
        raise ValueError("give either radix and n_dims, or shape")
    else:
        mesh = Mesh.cube(radix, n_dims)
    if origin is None:
        origin = tuple(max(1, (s - edge) // 2) for s in mesh.shape)
    origin = tuple(origin)
    extent = Region(origin, tuple(o + edge - 1 for o in origin))
    if not mesh.interior_region(1).contains_region(extent):
        raise ValueError(
            f"block extent {extent} does not fit in the interior of mesh {mesh.shape}"
        )
    schedule = DynamicFaultSchedule.static(list(extent.iter_points()))
    return DynamicRoutingScenario(
        name=f"block-{mesh.n_dims}d-edge{edge}",
        mesh=mesh,
        schedule=schedule,
        expected_extents=(extent,),
    )


def two_block_scenario(radix: int = 12) -> DynamicRoutingScenario:
    """Two blocks aligned so one block's boundary runs into the other (Figure 3(d)).

    Block A sits "above" block B along the Y axis with overlapping X/Z
    spans, so the boundary propagation of A (moving in -Y) intersects B and
    must merge into B's boundary.
    """
    mesh = Mesh.cube(radix, 3)
    block_a = Region((4, 7, 4), (6, 8, 6))
    block_b = Region((4, 2, 4), (6, 3, 6))
    faults = list(block_a.iter_points()) + list(block_b.iter_points())
    schedule = DynamicFaultSchedule.static(faults)
    return DynamicRoutingScenario(
        name="figure-3d-two-blocks",
        mesh=mesh,
        schedule=schedule,
        expected_extents=(block_a, block_b),
    )


# ---------------------------------------------------------------------- #
# Composite dynamic experiments (companion-paper style)
# ---------------------------------------------------------------------- #
def random_dynamic_scenario(
    *,
    radix: int = 12,
    n_dims: int = 3,
    shape: Optional[Sequence[int]] = None,
    dynamic_faults: int = 8,
    initial_faults: int = 0,
    interval: int = 10,
    messages: int = 20,
    min_distance: Optional[int] = None,
    seed: int = 0,
) -> DynamicRoutingScenario:
    """A randomized dynamic-fault routing experiment.

    ``dynamic_faults`` interior nodes fail one per ``interval`` steps while
    ``messages`` probes between random far-apart pairs are in flight — the
    setting of the graceful-degradation experiments.  ``shape`` overrides
    the ``radix``/``n_dims`` cube with a rectangular mesh.
    """
    rng = np.random.default_rng(seed)
    mesh = Mesh(tuple(shape)) if shape is not None else Mesh.cube(radix, n_dims)
    fault_nodes = uniform_random_faults(
        mesh, dynamic_faults + initial_faults, rng, margin=1
    )
    initial = fault_nodes[:initial_faults]
    dynamic = fault_nodes[initial_faults:]
    schedule = dynamic_schedule(
        dynamic, start_time=2, interval=interval, initial=initial
    )
    if min_distance is None:
        min_distance = mesh.diameter // 2
    pairs = random_pairs(
        mesh, messages, rng, min_distance=min_distance, exclude=fault_nodes
    )
    traffic = to_traffic(pairs, start_time=0, spacing=1, tag="dynamic")
    return DynamicRoutingScenario(
        name=f"dynamic-{mesh.n_dims}d-f{dynamic_faults}",
        mesh=mesh,
        schedule=schedule,
        traffic=tuple(traffic),
    )
