"""Congestion workloads for the PCS circuit phase.

The paper's evaluation routes sparse random traffic, where concurrent path
setups rarely meet; these generators deliberately create *contended*
configurations so the simulator's circuit phase (live link reservations,
walk-around, setup retries) has something to measure:

* **hotspot** — a fraction of all messages target one node, so circuits
  funnel into the same few links around it;
* **transpose** — the classic adversarial permutation ``(u_1, ..., u_n) →
  (u_n, ..., u_1)``: every message crosses the mesh diagonal;
* **bursty** — messages arrive in synchronized bursts instead of a smooth
  trickle, so each burst's setups race for the same links at once.

Every builder returns a :class:`~repro.workloads.scenarios.DynamicRoutingScenario`
(optionally with dynamic faults layered on top) and is deterministic in its
``seed``.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.faults.injection import dynamic_schedule, uniform_random_faults
from repro.mesh.topology import Mesh
from repro.simulator.traffic import TrafficMessage
from repro.workloads.scenarios import DynamicRoutingScenario
from repro.workloads.traffic import random_pairs, to_traffic, transpose_pairs

Coord = Tuple[int, ...]
Pair = Tuple[Coord, Coord]


def hotspot_pairs(
    mesh: Mesh,
    count: int,
    rng: np.random.Generator,
    *,
    hotspot: Optional[Sequence[int]] = None,
    fraction: float = 0.5,
    min_distance: int = 1,
    exclude: Optional[Iterable[Sequence[int]]] = None,
) -> List[Pair]:
    """``count`` pairs of which roughly ``fraction`` target the hotspot node.

    The hotspot defaults to the mesh centre.  Hotspot messages use random
    far-enough sources; the remainder is uniform random traffic, so the
    contention concentrates on the links around the hotspot.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    hot = mesh.validate(hotspot) if hotspot is not None else tuple(
        s // 2 for s in mesh.shape
    )
    excluded = {tuple(e) for e in (exclude or [])}
    excluded.discard(hot)
    hot_count = round(count * fraction)
    candidates = [
        node
        for node in mesh.nodes()
        if node not in excluded
        and node != hot
        and mesh.distance(node, hot) >= min_distance
    ]
    if hot_count and not candidates:
        raise ValueError(
            f"no usable hotspot sources at distance >= {min_distance} from {hot}"
        )
    pairs: List[Pair] = [
        (candidates[int(i)], hot)
        for i in rng.integers(0, len(candidates), size=hot_count)
    ]
    pairs += random_pairs(
        mesh, count - len(pairs), rng, min_distance=min_distance, exclude=excluded
    )
    return pairs


def hotspot_scenario(
    *,
    shape: Sequence[int] = (10, 10),
    messages: int = 24,
    hotspot: Optional[Sequence[int]] = None,
    fraction: float = 0.5,
    dynamic_faults: int = 0,
    interval: int = 10,
    spacing: int = 1,
    flits: int = 64,
    seed: int = 0,
) -> DynamicRoutingScenario:
    """Hotspot traffic (plus optional dynamic faults) on a rectangular mesh."""
    rng = np.random.default_rng(seed)
    mesh = Mesh(tuple(shape))
    fault_nodes = uniform_random_faults(mesh, dynamic_faults, rng, margin=1)
    schedule = dynamic_schedule(fault_nodes, start_time=2, interval=interval)
    pairs = hotspot_pairs(
        mesh,
        messages,
        rng,
        hotspot=hotspot,
        fraction=fraction,
        min_distance=max(1, mesh.diameter // 3),
        exclude=fault_nodes,
    )
    traffic = to_traffic(pairs, start_time=0, spacing=spacing, tag="hotspot", flits=flits)
    return DynamicRoutingScenario(
        name=f"hotspot-{mesh.n_dims}d-m{messages}",
        mesh=mesh,
        schedule=schedule,
        traffic=tuple(traffic),
    )


def transpose_scenario(
    *,
    radix: int = 8,
    n_dims: int = 2,
    limit: Optional[int] = None,
    dynamic_faults: int = 0,
    interval: int = 10,
    spacing: int = 0,
    flits: int = 64,
    seed: int = 0,
) -> DynamicRoutingScenario:
    """Transpose-permutation traffic: every node sends across the diagonal.

    With ``spacing=0`` all messages are injected at step 0 — the maximally
    contended variant; ``limit`` caps the number of pairs for small runs.
    """
    rng = np.random.default_rng(seed)
    mesh = Mesh.cube(radix, n_dims)
    fault_nodes = uniform_random_faults(mesh, dynamic_faults, rng, margin=1)
    schedule = dynamic_schedule(fault_nodes, start_time=2, interval=interval)
    pairs = [
        (s, d)
        for s, d in transpose_pairs(mesh, limit=limit)
        if s not in set(fault_nodes) and d not in set(fault_nodes)
    ]
    traffic = to_traffic(pairs, start_time=0, spacing=spacing, tag="transpose", flits=flits)
    return DynamicRoutingScenario(
        name=f"transpose-{n_dims}d-k{radix}",
        mesh=mesh,
        schedule=schedule,
        traffic=tuple(traffic),
    )


def bursty_scenario(
    *,
    shape: Sequence[int] = (10, 10),
    bursts: int = 4,
    burst_size: int = 6,
    burst_interval: int = 12,
    dynamic_faults: int = 0,
    interval: int = 10,
    flits: int = 64,
    seed: int = 0,
) -> DynamicRoutingScenario:
    """Bursty arrivals: ``bursts`` waves of ``burst_size`` simultaneous setups.

    All messages of one burst start at the same step, so their probes race
    for links; successive bursts are ``burst_interval`` steps apart, which
    also interacts with circuit hold times (a long-held circuit from one
    burst can still fence in the next).
    """
    if bursts < 1 or burst_size < 1:
        raise ValueError("bursts and burst_size must be at least 1")
    rng = np.random.default_rng(seed)
    mesh = Mesh(tuple(shape))
    fault_nodes = uniform_random_faults(mesh, dynamic_faults, rng, margin=1)
    schedule = dynamic_schedule(fault_nodes, start_time=2, interval=interval)
    messages: List[TrafficMessage] = []
    for burst in range(bursts):
        pairs = random_pairs(
            mesh,
            burst_size,
            rng,
            min_distance=max(1, mesh.diameter // 2),
            exclude=fault_nodes,
        )
        messages += to_traffic(
            pairs,
            start_time=burst * burst_interval,
            spacing=0,
            tag=f"burst-{burst}",
            flits=flits,
        )
    return DynamicRoutingScenario(
        name=f"bursty-{mesh.n_dims}d-b{bursts}x{burst_size}",
        mesh=mesh,
        schedule=schedule,
        traffic=tuple(messages),
    )
