"""Source/destination traffic generators.

The companion evaluations route batches of messages between random or
structured node pairs while faults occur; these helpers generate the pairs
and convert them into :class:`~repro.simulator.traffic.TrafficMessage`
lists.  All random generation takes a :class:`numpy.random.Generator` for
reproducibility.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.mesh.topology import Mesh
from repro.simulator.traffic import TrafficMessage

Coord = Tuple[int, ...]
Pair = Tuple[Coord, Coord]


def random_pairs(
    mesh: Mesh,
    count: int,
    rng: np.random.Generator,
    *,
    min_distance: int = 1,
    exclude: Optional[Iterable[Sequence[int]]] = None,
) -> List[Pair]:
    """``count`` random source/destination pairs at least ``min_distance`` apart.

    Nodes in ``exclude`` (e.g. nodes that the fault schedule will make
    faulty) are never used as endpoints.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if min_distance < 1:
        raise ValueError("min_distance must be at least 1")
    excluded: Set[Coord] = {tuple(e) for e in (exclude or [])}
    candidates = [node for node in mesh.nodes() if node not in excluded]
    if len(candidates) < 2:
        raise ValueError("not enough non-excluded nodes to build pairs")
    pairs: List[Pair] = []
    attempts = 0
    max_attempts = 200 * max(count, 1)
    while len(pairs) < count:
        attempts += 1
        if attempts > max_attempts:
            raise RuntimeError(
                f"could not generate {count} pairs with min_distance={min_distance}"
            )
        i, j = rng.integers(0, len(candidates), size=2)
        source, destination = candidates[int(i)], candidates[int(j)]
        if mesh.distance(source, destination) < min_distance:
            continue
        pairs.append((source, destination))
    return pairs


def corner_to_corner_pairs(mesh: Mesh) -> List[Pair]:
    """Every pair of opposite mesh corners (the longest minimal paths)."""
    lo = tuple([0] * mesh.n_dims)
    hi = tuple(s - 1 for s in mesh.shape)
    corners = mesh.extent.corner_points()
    pairs: List[Pair] = []
    for corner in corners:
        opposite = tuple(
            h if c == l else l for c, l, h in zip(corner, lo, hi)
        )
        if (opposite, corner) not in pairs:
            pairs.append((corner, opposite))
    return pairs


def transpose_pairs(mesh: Mesh, *, limit: Optional[int] = None) -> List[Pair]:
    """Transpose traffic: node ``(u_1, ..., u_n)`` sends to ``(u_n, ..., u_1)``.

    Only meaningful for uniform (cubic) meshes; nodes on the main diagonal
    (which would send to themselves) are skipped.
    """
    if len(set(mesh.shape)) != 1:
        raise ValueError("transpose traffic requires a uniform (cubic) mesh")
    pairs: List[Pair] = []
    for node in mesh.nodes():
        destination = tuple(reversed(node))
        if destination == node:
            continue
        pairs.append((node, destination))
        if limit is not None and len(pairs) >= limit:
            break
    return pairs


def to_traffic(
    pairs: Sequence[Pair],
    *,
    start_time: int = 0,
    spacing: int = 0,
    tag: Optional[str] = None,
    flits: int = 64,
) -> List[TrafficMessage]:
    """Convert pairs into simulator traffic.

    ``spacing`` injects successive messages that many steps apart (0 injects
    them all at ``start_time``); ``flits`` sets every message's data-phase
    length (circuit hold time under contention).
    """
    messages: List[TrafficMessage] = []
    time = start_time
    for source, destination in pairs:
        messages.append(
            TrafficMessage(
                source=source,
                destination=destination,
                start_time=time,
                tag=tag,
                flits=flits,
            )
        )
        time += spacing
    return messages
