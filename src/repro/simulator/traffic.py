"""Routing traffic descriptions consumed by the simulator.

A :class:`TrafficMessage` is one routing request: a source/destination pair
plus the step at which the path-setup probe is injected (the paper's routing
start time ``t``).  Workload generators in :mod:`repro.workloads` produce
lists of these.

Traffic reaches the simulator through the :class:`TrafficSource` protocol:
the engine polls the source exactly once per step for the messages to
inject at that step.  :class:`BatchSource` adapts a pre-built message list
(the historic closed-batch path, byte-identical to handing the engine the
list directly); the open-loop injection processes in
:mod:`repro.throughput` generate messages on the fly as the simulator runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple, runtime_checkable

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class TrafficMessage:
    """One routing request."""

    source: Coord
    destination: Coord
    start_time: int = 0
    #: Optional label used by experiments to group messages (e.g. "before
    #: fault", "during convergence").
    tag: Optional[str] = None
    #: Message length in flits; with contention enabled the delivered
    #: circuit stays reserved for a hold time derived from this length
    #: through the :class:`~repro.pcs.transfer.TransferModel`.
    flits: int = 64

    #: Step at which the message was *generated* (``None`` means at
    #: ``start_time``).  Open-loop sources with per-node injection queues
    #: generate messages at the offered rate but emit them one at a time per
    #: node; the gap between the two is the source queueing delay, which
    #: end-to-end latency accounting includes.
    created_time: Optional[int] = None

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.flits < 0:
            raise ValueError("flits must be non-negative")
        if self.created_time is not None and self.created_time > self.start_time:
            raise ValueError("created_time cannot be after start_time")
        object.__setattr__(self, "source", tuple(self.source))
        object.__setattr__(self, "destination", tuple(self.destination))


@runtime_checkable
class TrafficSource(Protocol):
    """Streaming traffic feeding the simulator while it runs.

    The engine calls :meth:`poll` exactly once per simulation step, with
    strictly increasing step numbers, and injects the returned messages at
    that step.  Sources may be stateful (an open-loop injection process
    draws from its RNG on every poll), so a source instance belongs to one
    simulation run.
    """

    def poll(self, step: int) -> Sequence[TrafficMessage]:
        """Messages to inject at ``step`` (may be empty)."""
        ...

    def exhausted(self, step: int) -> bool:
        """True when no message will ever be emitted at ``step`` or later."""
        ...


class BatchSource:
    """A :class:`TrafficSource` over a pre-built message list.

    Replays exactly the closed-batch semantics the engine historically
    implemented inline: messages sorted by ``start_time`` (stable, so equal
    start times keep list order), each injected at the first step at or
    after its start time.
    """

    def __init__(self, messages: Sequence[TrafficMessage]) -> None:
        self.messages: List[TrafficMessage] = sorted(
            messages, key=lambda m: m.start_time
        )
        self._next = 0

    def poll(self, step: int) -> List[TrafficMessage]:
        out: List[TrafficMessage] = []
        while self._next < len(self.messages) and (
            self.messages[self._next].start_time <= step
        ):
            out.append(self.messages[self._next])
            self._next += 1
        return out

    def exhausted(self, step: int) -> bool:
        return self._next >= len(self.messages)
