"""Routing traffic descriptions consumed by the simulator.

A :class:`TrafficMessage` is one routing request: a source/destination pair
plus the step at which the path-setup probe is injected (the paper's routing
start time ``t``).  Workload generators in :mod:`repro.workloads` produce
lists of these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class TrafficMessage:
    """One routing request."""

    source: Coord
    destination: Coord
    start_time: int = 0
    #: Optional label used by experiments to group messages (e.g. "before
    #: fault", "during convergence").
    tag: Optional[str] = None
    #: Message length in flits; with contention enabled the delivered
    #: circuit stays reserved for a hold time derived from this length
    #: through the :class:`~repro.pcs.transfer.TransferModel`.
    flits: int = 64

    def __post_init__(self) -> None:
        if self.start_time < 0:
            raise ValueError("start_time must be non-negative")
        if self.flits < 0:
            raise ValueError("flits must be non-negative")
        object.__setattr__(self, "source", tuple(self.source))
        object.__setattr__(self, "destination", tuple(self.destination))
