"""The step-synchronous simulation engine (Section 5, Figure 7).

Every simulation step executes, in order:

1. **fault detection** — the fault/recovery events scheduled for this step
   are applied to the labeling state (a fault occurring later in the step
   would be detected at the next step, as in the paper);
2. **λ rounds of information exchange** — each round runs one synchronous
   round of block construction (status exchange + rules of Algorithm 1),
   advances every active identification process by one hop and every active
   boundary propagation by one hop.  When the labeling stabilizes, new
   identification processes are started reactively for blocks whose extent
   is not yet identified, and stale records of disappeared blocks are
   cancelled;
3. **message reception / routing decision / message sending** — every
   in-flight routing probe advances exactly one hop (forward or backtrack)
   using whatever information its current node holds *at this step*, which
   is how routing with inconsistent (still-converging) information arises.

The engine records, per fault change, the rounds each construction needed
(``a_i``, ``b_i``, ``c_i``) and, per routing probe, the usual delivery and
detour statistics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.backend import VECTOR, resolve_backend
from repro.core.block_construction import extract_blocks, labeling_round
from repro.core.boundary import BoundaryProtocol
from repro.core.identification import IdentificationProtocol
from repro.core.routing import (
    UNSET,
    DecisionCache,
    LinkBlocked,
    ProbeHeader,
    RouteOutcome,
    RoutingPolicy,
    RoutingProbe,
    probe_step_limit,
)
from repro.core.state import InformationState
from repro.faults.schedule import DynamicFaultSchedule, FaultEventKind
from repro.mesh.regions import Region
from repro.mesh.topology import Mesh
from repro.pcs.circuit import ArrayCircuitLedger, Circuit, CircuitLedger, make_live_ledger
from repro.pcs.transfer import TransferModel
from repro.routing import AlgorithmRouter, Router, SetupProbe, resolve_router
from repro.simulator.stats import ConvergenceRecord, MessageRecord, SimulationStats
from repro.simulator.traffic import BatchSource, TrafficMessage, TrafficSource

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (cycle guard)
    from repro.core.probe_table import ProbeTable
    from repro.core.routing import RouteResult
    from repro.obs.profile import PhaseProfiler
    from repro.obs.recorder import StepRecorder

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class SimulationConfig:
    """Tunable parameters of the execution model."""

    #: Rounds of fault-information exchange per step (the paper's ``λ``).
    lam: int = 2

    #: Hard limit on simulated steps.
    max_steps: int = 20_000

    #: Routing policy used for every probe (limited-global by default).
    #: Ignored when ``router`` names a registry entry.
    policy: RoutingPolicy = field(default_factory=RoutingPolicy.limited_global)

    #: Registry name of the router driving every probe (any entry of
    #: :func:`repro.routing.available_routers`, e.g. ``"static-block"`` or
    #: ``"global-information"``).  ``None`` falls back to ``policy``.
    router: Optional[str] = None

    #: When True the simulator runs the PCS circuit phase: every in-flight
    #: probe keeps the links of its partial circuit reserved, reserved links
    #: are unavailable to other probes (forcing walk-around/backtrack), and
    #: a delivered circuit stays reserved for a ``transfer``-derived hold
    #: time driven by each message's ``flits``.
    contention: bool = False

    #: Latency model converting a delivered circuit + message length into
    #: the hold time of the data-transmission phase.
    transfer: TransferModel = field(default_factory=TransferModel)

    #: When True, information for the *initial* fault set is fully
    #: distributed before step 0, matching the paper's assumption that the
    #: first ``p`` faults are already stabilized when a routing starts.
    preconverge_initial_faults: bool = True

    #: A probe still in flight after this many steps is reported EXHAUSTED
    #: (``None`` derives the worst-case walk length from
    #: :func:`~repro.core.routing.probe_step_limit`, the same limit
    #: offline routing uses).
    max_probe_lifetime: Optional[int] = None

    #: When True (the default) probe decisions are batched per node: the
    #: simulator resolves each node's decision inputs (neighbor statuses,
    #: routing geometry) once and shares them across every probe deciding at
    #: that node — and across steps while the information is unchanged.
    #: Decisions are identical either way; False keeps the per-probe loop
    #: (the benchmark baseline).
    batch_by_node: bool = True

    #: Hot-loop implementation for the labeling rounds, the circuit ledger
    #: and the per-probe decision engine: ``"vector"`` (numpy stencil
    #: gathers, flat reservation columns, batched direction classification),
    #: ``"scalar"`` (the pure-Python reference) or ``None`` to resolve via
    #: the ``REPRO_BACKEND`` environment variable (vector by default).  Both
    #: produce byte-identical statuses, block extents, reserved-link sets
    #: and probe decisions — the parity tests hold the two to that.
    backend: Optional[str] = None

    def __post_init__(self) -> None:
        if self.lam < 1:
            raise ValueError("λ (lam) must be at least 1")
        if self.max_steps < 1:
            raise ValueError("max_steps must be positive")
        if self.max_probe_lifetime is not None and self.max_probe_lifetime < 1:
            raise ValueError("max_probe_lifetime must be at least 1 (or None)")
        if self.router is not None:
            resolve_router(self.router)  # unknown names fail fast, with the menu
        if self.backend is not None:
            resolve_backend(self.backend)  # unknown backends fail fast too


@dataclass
class SimulationResult:
    """Everything a finished simulation exposes."""

    stats: SimulationStats
    information: InformationState
    config: SimulationConfig

    @property
    def steps(self) -> int:
        """Number of simulated steps."""
        return self.stats.steps


class Simulator:
    """Discrete-step simulator tying the protocols and routing together."""

    def __init__(
        self,
        mesh: Mesh,
        *,
        schedule: Optional[DynamicFaultSchedule] = None,
        traffic: Union[Sequence[TrafficMessage], TrafficSource] = (),
        config: Optional[SimulationConfig] = None,
        recorder: Optional["StepRecorder"] = None,
        profiler: Optional["PhaseProfiler"] = None,
    ) -> None:
        self.mesh = mesh
        #: Opt-in observability hooks (None by default — the hot path pays a
        #: single ``is not None`` check per step for each).  The recorder
        #: samples one time-series row after every executed step; the
        #: profiler times the step pipeline's phases as nested spans.
        self._recorder = recorder
        self._profiler = profiler
        # Note: a purely static schedule has len() == 0, so test identity
        # against None rather than truthiness.
        self.schedule = schedule if schedule is not None else DynamicFaultSchedule()
        self.config = config or SimulationConfig()
        if isinstance(traffic, TrafficSource) and not isinstance(traffic, (list, tuple)):
            # Streaming traffic: messages are generated as the run proceeds,
            # validated at injection time.
            self._source: TrafficSource = traffic
            self.traffic: List[TrafficMessage] = []
        else:
            self._source = BatchSource(traffic)
            self.traffic = list(self._source.messages)  # type: ignore[attr-defined]
            for message in self.traffic:
                mesh.validate(message.source)
                mesh.validate(message.destination)

        #: Optional source feedback: a source exposing ``message_finished``
        #: (e.g. an open-loop source with per-node injection queues) receives
        #: each terminating message's :class:`MessageRecord`, so it can free
        #: the node's injection port and retry failed setups.
        self._message_finished = getattr(self._source, "message_finished", None)

        self.info = InformationState.fresh(mesh, self.schedule.initial_faults)
        self.stats = SimulationStats()

        #: The router driving every probe; registry-resolved when the config
        #: names one, otherwise the config's raw policy (the historic path).
        self.router: Router = (
            resolve_router(self.config.router)
            if self.config.router is not None
            else AlgorithmRouter(self.config.policy)
        )
        #: Resolved hot-loop backend (labeling rounds + circuit ledger).
        self._backend = resolve_backend(self.config.backend)
        #: Live link reservations of the PCS circuit phase (``None`` keeps
        #: the contention-free behavior byte-identical to the pre-circuit
        #: engine).
        self.circuits: Optional[CircuitLedger] = (
            make_live_ledger(mesh, self._backend) if self.config.contention else None
        )
        self._next_holder = 0

        #: Per-node decision cache for batched stepping; only Algorithm-3
        #: probes (plain :class:`RoutingProbe`) read the engine's own
        #: information state, so only those sims get one — the static-block
        #: and global-information probes derive their own views.
        self._decision_cache: Optional[DecisionCache] = None
        if self.config.batch_by_node:
            policy = getattr(self.router, "policy", None)
            if isinstance(policy, RoutingPolicy):
                self._decision_cache = DecisionCache(
                    self.info, policy, backend=self._backend
                )

        #: Candidates of probes that WAITed last step (fenced in at their
        #: source), keyed by holder: a wait changes neither the header nor
        #: the information, so the classification is reused instead of
        #: recomputed — invalidated wholesale when information mutates.
        self._wait_carryover: Dict[int, object] = {}
        self._carry_token: Optional[Tuple[int, int]] = None

        self._identified_extents: Set[Region] = set()
        self._identifications: List[IdentificationProtocol] = []
        self._boundaries: List[BoundaryProtocol] = []
        self._pending_convergence: List[ConvergenceRecord] = []
        #: In-flight probes: (message, probe, holder, link-blocked predicate,
        #: cache-eligible).  The predicate is hoisted here so it is built
        #: once per probe instead of once per probe per step.
        self._probes: List[
            Tuple[TrafficMessage, SetupProbe, int, Optional[LinkBlocked], bool]
        ] = []
        self._probe_lifetime = (
            self.config.max_probe_lifetime
            if self.config.max_probe_lifetime is not None
            else probe_step_limit(mesh)
        )
        self._labeling_dirty = bool(self.schedule.initial_faults)
        #: True once a labeling round produced no change and no fault event
        #: has occurred since.  The round function is a deterministic
        #: fixpoint iteration, so a stable labeling stays stable until the
        #: next event — the engine skips the (whole-mesh) round scan then,
        #: which is what makes long steady-state open-loop runs tractable.
        self._labeling_stable = False
        self._step = 0
        # Events are time-sorted, so the last one bounds the schedule; keeping
        # it here makes _work_remaining O(1) instead of scanning every step.
        self._last_event_time = (
            self.schedule.events[-1].time if self.schedule.events else -1
        )

        #: Struct-of-arrays probe engine: when the whole message phase is
        #: expressible as flat-column passes (plain Algorithm-3 probes, the
        #: vector decision engine available, an array-backed ledger when
        #: contended), probes live as rows of a :class:`ProbeTable` and
        #: ``step`` never builds a probe object.  Decisions, paths and stats
        #: are byte-identical to the per-object path (the parity suite holds
        #: the two to that); anything else — scalar backend, the
        #: static-block/global-information routers, >16-dimensional meshes —
        #: keeps the object path.
        self._table: Optional["ProbeTable"] = None
        self._table_cell = -1
        if (
            self._decision_cache is not None
            and type(self.router) is AlgorithmRouter
            and 2 * mesh.n_dims <= 32
            and (self.circuits is None or isinstance(self.circuits, ArrayCircuitLedger))
            and self._decision_cache._engine() is not None
        ):
            from repro.core.probe_table import ProbeTable

            self._table = ProbeTable(mesh)
            self._table_cell = self._table.attach(self)

        if self.config.preconverge_initial_faults and self.schedule.initial_faults:
            self._preconverge()

    # ------------------------------------------------------------------ #
    # setup
    # ------------------------------------------------------------------ #
    def _preconverge(self) -> None:
        """Stabilize labeling and distribute information for initial faults."""
        while labeling_round(self.info.labeling, backend=self._backend):
            pass
        self._labeling_stable = True
        self._start_new_identifications()
        while self._identifications or self._boundaries:
            self._advance_protocols(record_rounds=False)
        self._labeling_dirty = False

    # ------------------------------------------------------------------ #
    # protocol management
    # ------------------------------------------------------------------ #
    def _current_extents(self) -> Set[Region]:
        return {block.extent for block in extract_blocks(self.info.labeling)}

    def _start_new_identifications(self) -> None:
        """Reactively start identification for blocks without current records."""
        current = self._current_extents()
        removed_any = bool(self._identified_extents - current)
        if removed_any:
            self.info.cancel_stale(current)
            self._identified_extents &= current
        version = self.info.bump_version() if current - self._identified_extents else self.info.version
        for block in extract_blocks(self.info.labeling):
            if block.extent in self._identified_extents:
                continue
            self._identifications.append(
                IdentificationProtocol(self.info, block, version=version)
            )
            self._identified_extents.add(block.extent)

    def _advance_protocols(self, *, record_rounds: bool = True) -> None:
        """Advance every active identification/boundary protocol by one round."""
        still_identifying: List[IdentificationProtocol] = []
        for protocol in self._identifications:
            protocol.round()
            if protocol.done:
                result = protocol.result
                assert result is not None
                if record_rounds:
                    for record in self._pending_convergence:
                        record.identification_rounds = max(
                            record.identification_rounds, result.total_rounds
                        )
                if result.stable:
                    boundary = BoundaryProtocol(self.info)
                    boundary.seed_block(protocol.block, version=result.version)
                    self._boundaries.append(boundary)
                else:
                    # Unstable identification: the block changed while the
                    # process ran; drop it so a fresh process can start once
                    # the labeling stabilizes again.
                    self._identified_extents.discard(protocol.block.extent)
            else:
                still_identifying.append(protocol)
        self._identifications = still_identifying

        still_propagating: List[BoundaryProtocol] = []
        for boundary in self._boundaries:
            active = boundary.round()
            if record_rounds:
                for record in self._pending_convergence:
                    record.boundary_rounds = max(record.boundary_rounds, boundary.rounds)
            if active:
                still_propagating.append(boundary)
        self._boundaries = still_propagating

    # ------------------------------------------------------------------ #
    # stepping
    # ------------------------------------------------------------------ #
    @property
    def current_step(self) -> int:
        """The next step index to execute."""
        return self._step

    def step(self) -> None:
        """Execute one full simulation step (Figure 7 (a))."""
        t = self._step
        prof = self._profiler
        if prof is None:
            self._step_information(t)
            if self._table is not None:
                self._table.run_step(t, (self._table_cell,))
            else:
                self._step_messages(t)
        else:
            with prof.span("step"):
                with prof.span("information"):
                    self._step_information(t, prof=prof)
                with prof.span("messages"):
                    if self._table is not None:
                        self._table.run_step(t, (self._table_cell,), profiler=prof)
                    else:
                        self._step_messages(t)
        self._step += 1
        self.stats.steps = self._step
        if self._recorder is not None:
            self._recorder.sample(self)

    def _detect_faults(self, t: int) -> None:
        """Phase 1 of step ``t``: apply this step's scheduled fault events."""
        for event in self.schedule.events_at(t):
            if event.kind is FaultEventKind.FAULT:
                self.info.labeling.make_faulty(event.node)
                self._teardown_node(event.node, t)
            else:
                self.info.labeling.recover(event.node)
            self._labeling_dirty = True
            self._labeling_stable = False
            self._pending_convergence.append(
                ConvergenceRecord(event=event, detected_step=t)
            )

    def _teardown_node(self, node: Coord, t: int) -> None:
        """Tear down everything standing on or routed through a failed node.

        Runs inside fault detection, so the circuit state is clean of the
        dead node *within the same step* the fault fires: every in-flight
        probe whose partial circuit crosses the node finishes EXHAUSTED (its
        message goes back to the source for retry through the usual finish
        feedback), and every delivered circuit still holding a link into the
        node is dropped mid-transfer and counted as fault-dropped.  Probe
        reservations lie entirely along probe stacks, so after the probe
        sweep every remaining holder incident to the node is a transfer
        hold — :meth:`~repro.pcs.circuit.LiveCircuitLedger.release_crossing`
        frees exactly those.
        """
        node = tuple(node)
        if self._table is not None:
            self._table.teardown_node(self._table_cell, node, t)
        elif self._probes:
            remaining: List[
                Tuple[TrafficMessage, SetupProbe, int, Optional[LinkBlocked], bool]
            ] = []
            for entry in self._probes:
                message, probe, holder, _blocked, _cacheable = entry
                if node in getattr(probe, "circuit_stack", ()):
                    if self.circuits is not None:
                        self.circuits.release(holder)
                    record = self._finish_probe(message, probe, finish_step=t)
                    if self._message_finished is not None:
                        self._message_finished(record)
                else:
                    remaining.append(entry)
            self._probes = remaining
        if self.circuits is not None:
            self.stats.fault_dropped_circuits += self.circuits.release_crossing(node)

    def _step_information(
        self, t: int, prof: Optional["PhaseProfiler"] = None
    ) -> None:
        """Phases 1–2 of step ``t``: fault detection + λ information rounds."""
        # 1. fault detection -------------------------------------------------
        if prof is None:
            self._detect_faults(t)
        else:
            with prof.span("fault_detect"):
                self._detect_faults(t)

        # 2. λ rounds of information exchange --------------------------------
        for _ in range(self.config.lam):
            if self._labeling_stable:
                # A no-change round would scan the whole mesh to conclude
                # nothing moved; the skipped round is exactly that no-op.
                changed = False
            else:
                if prof is None:
                    changed = labeling_round(self.info.labeling, backend=self._backend)
                else:
                    with prof.span("labeling_round"):
                        changed = labeling_round(
                            self.info.labeling, backend=self._backend
                        )
                if not changed:
                    self._labeling_stable = True
            self.stats.total_rounds += 1
            if changed:
                for record in self._pending_convergence:
                    record.labeling_rounds += 1
            elif self._labeling_dirty:
                # Labeling just stabilized: reactively (re)build information.
                self._start_new_identifications()
                self._labeling_dirty = False
            if prof is None:
                self._advance_protocols()
            else:
                with prof.span("protocols"):
                    self._advance_protocols()
            if (
                not self._labeling_dirty
                and not self._identifications
                and not self._boundaries
            ):
                for record in self._pending_convergence:
                    if record.stabilized_step is None:
                        record.stabilized_step = t
                        self.stats.convergence.append(record)
                self._pending_convergence = [
                    r for r in self._pending_convergence if r.stabilized_step is None
                ]

    def _step_messages(self, t: int) -> None:
        """Phase 3 of step ``t``, per-probe-object path (the parity oracle).

        Eligible configurations route through the struct-of-arrays
        :class:`~repro.core.probe_table.ProbeTable` instead (see
        ``_table``); decisions and statistics are byte-identical.
        """
        # 3. message injection, reception, routing decision, sending ---------
        ledger = self.circuits
        for message in self._source.poll(t):
            self.mesh.validate(message.source)
            self.mesh.validate(message.destination)
            probe = self.router.probe(self.mesh, message.source, message.destination)
            holder = self._next_holder
            self._next_holder += 1
            blocked = ledger.blocked_for(holder) if ledger is not None else None
            self._probes.append(
                (message, probe, holder, blocked, isinstance(probe, RoutingProbe))
            )

        if ledger is not None:
            # Data transmissions finishing before this step free their links.
            ledger.release_expired(t)

        cache = self._decision_cache
        lifetime = self._probe_lifetime
        precomputed = self._batch_decisions()
        wait_carry: Dict[int, object] = {}
        remaining: List[
            Tuple[TrafficMessage, SetupProbe, int, Optional[LinkBlocked], bool]
        ] = []
        for i, entry in enumerate(self._probes):
            message, probe, holder, blocked, cacheable = entry
            probe_cache = cache if cacheable else None
            candidates = precomputed[i] if precomputed is not None else UNSET
            if ledger is None:
                outcome = probe.step(
                    self.info, decision_cache=probe_cache, candidates=candidates
                )
            else:
                stack = probe.circuit_stack
                prev_len, prev_tail = len(stack), stack[-1]
                outcome = probe.step(
                    self.info,
                    link_blocked=blocked,
                    decision_cache=probe_cache,
                    candidates=candidates,
                )
                # Mirror the probe's partial circuit incrementally (a probe
                # moves at most one hop per step): a forward hop reserves its
                # link — visible to probes later in this loop — and a
                # backtrack releases the link just retreated over.
                stack = probe.circuit_stack
                delta = len(stack) - prev_len
                if delta == 1:
                    ledger.reserve_link(holder, stack[-2], stack[-1])
                elif delta == -1:
                    ledger.release_link(holder, prev_tail, stack[-1])
                elif delta != 0:
                    ledger.sync(holder, stack)  # multi-hop moves: full resync
            expired = (t - message.start_time) >= lifetime
            if outcome is not None or expired:
                record = self._finish_probe(message, probe, finish_step=t)
                if self._message_finished is not None:
                    self._message_finished(record)
                if ledger is not None:
                    if outcome is RouteOutcome.DELIVERED:
                        # The data circuit is the held stack with loop
                        # excursions cut back to their first visit; the
                        # excursion links (all still held) are released
                        # before the data-phase hold.
                        circuit = Circuit.from_stack(probe.circuit_stack)
                        ledger.sync(holder, circuit.path)
                        hold = self.config.transfer.hold_steps(circuit, message.flits)
                        ledger.hold_until(holder, t + hold)
                        self.stats.circuits_reserved += 1
                    else:
                        ledger.release(holder)
            else:
                if candidates is not UNSET and getattr(probe, "waited", False):
                    # Fenced in at the source: nothing changed, so this
                    # step's classification is next step's too.
                    wait_carry[holder] = candidates
                remaining.append(entry)
        self._probes = remaining
        self._wait_carryover = wait_carry
        if ledger is not None:
            self.stats.record_occupancy(ledger.reserved_links)

    def _batch_decisions(self) -> Optional[List[object]]:
        """Precompute this step's candidate lists for every batchable probe.

        With per-node batching and the vector backend, the decision inputs
        of all in-flight probes are classified in one vectorized pass per
        serving :class:`DecisionCache` — the engine's own cache for plain
        Algorithm-3 probes, and whatever cache a probe's ``batch_entry``
        hook nominates for probes that decide against a derived view (the
        static-block adjacent-only view).  This is parity-safe: the
        information state is frozen during the message phase and a probe's
        header only changes when that probe itself steps, so precomputing
        before the loop reads exactly what each probe would have read
        in-loop.  Returns a list aligned with ``self._probes`` (``None``
        when nothing was batched); slots left at the UNSET sentinel
        (global-information's BFS follower has no per-direction
        classification, and the scalar backend keeps the reference loop)
        classify as before.
        """
        probes = self._probes
        if not (self.config.batch_by_node and self._backend == VECTOR and probes):
            return None
        own = self._decision_cache
        if all(entry[4] for entry in probes):
            # Homogeneous batch (the common case): every probe is a plain
            # RoutingProbe served by the engine's own cache.
            if own is None or own.backend != VECTOR:
                return None
            token = (
                self.info.labeling.mutations,
                self.info.record_mutations,
            )
            carry = self._wait_carryover
            if carry and token != self._carry_token:
                carry.clear()
            self._carry_token = token
            out: List[object] = [UNSET] * len(probes)
            indices: List[int] = []
            headers: List[ProbeHeader] = []
            for i, entry in enumerate(probes):
                probe = entry[1]
                if probe.outcome is not None:  # type: ignore[attr-defined]
                    continue
                if probe.waited:  # type: ignore[attr-defined]
                    cached = carry.get(entry[2])
                    if cached is not None:
                        out[i] = cached
                        continue
                indices.append(i)
                headers.append(probe.header)  # type: ignore[attr-defined]
            if indices:
                for i, candidates in zip(
                    indices, own.batch_candidate_pairs(headers)
                ):
                    out[i] = candidates
            return out
        groups: Dict[int, Tuple[DecisionCache, List[int], List[ProbeHeader]]] = {}
        for i, entry in enumerate(probes):
            probe = entry[1]
            if probe.done:
                continue
            if entry[4]:  # cacheable: a plain RoutingProbe on the engine's info
                group_cache = own
                header = probe.header  # type: ignore[attr-defined]
            else:
                hook = getattr(probe, "batch_entry", None)
                if hook is None:
                    continue
                pair = hook(self.info, self._backend)
                if pair is None:
                    continue
                group_cache, header = pair
            if group_cache is None or group_cache.backend != VECTOR:
                continue
            group = groups.get(id(group_cache))
            if group is None:
                group = groups[id(group_cache)] = (group_cache, [], [])
            group[1].append(i)
            group[2].append(header)
        if not groups:
            return None
        out = [UNSET] * len(probes)
        for group_cache, indices, headers in groups.values():
            batch = group_cache.batch_candidate_pairs(headers)
            for i, candidates in zip(indices, batch):
                out[i] = candidates
        return out

    def _finish_probe(
        self, message: TrafficMessage, probe: SetupProbe, *, finish_step: Optional[int]
    ) -> MessageRecord:
        """Record a finished (or flushed) probe's message statistics."""
        record = MessageRecord(
            message=message, result=probe.result(), finish_step=finish_step
        )
        self.stats.messages.append(record)
        self.stats.timeout_releases += getattr(probe, "timeout_releases", 0)
        return record

    def _finish_table_row(
        self, message: TrafficMessage, result: "RouteResult", *, finish_step: Optional[int]
    ) -> MessageRecord:
        """Record one finished :class:`ProbeTable` row's message statistics."""
        record = MessageRecord(message=message, result=result, finish_step=finish_step)
        self.stats.messages.append(record)
        return record

    def _join_table(self, table: "ProbeTable") -> int:
        """Re-home this simulator's probes onto a shared multi-cell table.

        The stacked sweep runner calls this before step 0 so several
        same-shape simulators step their message phases in one table pass.
        """
        if self._table is None:
            raise ValueError("simulator configuration is not probe-table eligible")
        if self._step != 0 or self._table.cell_rows(self._table_cell):
            raise ValueError("cannot join a shared probe table after stepping")
        self._table = table
        self._table_cell = table.attach(self)
        return self._table_cell

    @property
    def in_flight(self) -> int:
        """Number of probes currently in flight."""
        if self._table is not None:
            return self._table.cell_rows(self._table_cell)
        return len(self._probes)

    @property
    def pending_messages(self) -> Tuple[TrafficMessage, ...]:
        """Messages whose probes are still in flight."""
        if self._table is not None:
            return self._table.cell_messages(self._table_cell)
        return tuple(entry[0] for entry in self._probes)

    def _work_remaining(self) -> bool:
        return bool(
            self._probes
            or (self._table is not None and self._table.cell_rows(self._table_cell))
            or self._pending_convergence
            or self._identifications
            or self._boundaries
            or self._labeling_dirty
            or not self._source.exhausted(self._step)
            or self._last_event_time >= self._step
            # Circuits still holding links are data transfers in flight.
            or (self.circuits is not None and self.circuits.reserved_links > 0)
        )

    def run(self, *, min_steps: int = 0) -> SimulationResult:
        """Run steps until all work has drained (or ``max_steps`` is hit)."""
        while self._step < self.config.max_steps and (
            self._step < min_steps or self._work_remaining()
        ):
            self.step()
        # Flush probes still in flight when the step budget ran out.
        if self._table is not None:
            self._table.flush_cell(self._table_cell)
        for message, probe, holder, _blocked, _cacheable in self._probes:
            self._finish_probe(message, probe, finish_step=None)
            if self.circuits is not None:
                self.circuits.release(holder)
        self._probes = []
        return SimulationResult(stats=self.stats, information=self.info, config=self.config)
