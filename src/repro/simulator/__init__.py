"""Step-synchronous simulator for the paper's dynamic fault model.

The simulator implements the execution model of Section 5 / Figure 7: time
advances in steps; within every step each node performs fault detection,
``λ`` rounds of fault-information exchange (status propagation,
identification, boundary propagation each advance one hop per round),
message reception, a routing decision and a message send, so every routing
probe advances exactly one hop per step while the information model
converges around it.
"""

from repro.simulator.engine import SimulationConfig, SimulationResult, Simulator
from repro.simulator.stats import ConvergenceRecord, MessageRecord, SimulationStats
from repro.simulator.traffic import TrafficMessage

__all__ = [
    "ConvergenceRecord",
    "MessageRecord",
    "SimulationConfig",
    "SimulationResult",
    "SimulationStats",
    "Simulator",
    "TrafficMessage",
]
