"""Statistics collected by the simulator.

Three record types cover everything the experiments report:

* :class:`ConvergenceRecord` — for each fault change, the rounds the three
  constructions needed to stabilize (the paper's ``a_i``, ``b_i``, ``c_i``);
* :class:`MessageRecord` — outcome and detour accounting for each routing
  probe;
* :class:`SimulationStats` — aggregate views over both.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.routing import RouteOutcome, RouteResult
from repro.faults.schedule import FaultEvent
from repro.simulator.traffic import TrafficMessage

Coord = Tuple[int, ...]


def percentile(sorted_values: Sequence[int], fraction: float) -> float:
    """The ``fraction`` percentile of an ascending sequence (nearest-rank)."""
    if not sorted_values:
        return 0.0
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return float(sorted_values[rank - 1])


@dataclass
class ConvergenceRecord:
    """Convergence accounting for one fault change (occurrence or recovery)."""

    #: The triggering event.
    event: FaultEvent

    #: Simulation step at which the event was detected.
    detected_step: int

    #: Rounds of block construction until the labeling stabilized (``a_i``).
    labeling_rounds: int = 0

    #: Rounds of the identification constructions started by this change
    #: (``b_i`` — the largest among concurrently identified blocks).
    identification_rounds: int = 0

    #: Rounds of the boundary constructions started by this change (``c_i``).
    boundary_rounds: int = 0

    #: Step at which all three constructions had stabilized, or ``None`` if
    #: the simulation ended first.
    stabilized_step: Optional[int] = None

    @property
    def total_rounds(self) -> int:
        """``a_i + b_i + c_i`` — total stabilization work for this change."""
        return self.labeling_rounds + self.identification_rounds + self.boundary_rounds

    def steps_to_stabilize(self, lam: int) -> int:
        """Steps needed at ``λ`` rounds per step (``⌈(a+b+c)/λ⌉``)."""
        return -(-self.total_rounds // max(lam, 1))


@dataclass
class MessageRecord:
    """Outcome of one routing probe."""

    message: TrafficMessage
    result: RouteResult

    #: Step at which the probe terminated (delivered/unreachable), or None.
    finish_step: Optional[int] = None

    @property
    def setup_steps(self) -> Optional[int]:
        """Simulation steps the path setup occupied (injection to finish).

        A probe injected at its start step and finishing that same step took
        one step; ``None`` while the probe is still in flight.
        """
        if self.finish_step is None:
            return None
        return self.finish_step - self.message.start_time + 1

    @property
    def latency_steps(self) -> Optional[int]:
        """Steps from message *generation* to finish (queueing + setup).

        Equals :attr:`setup_steps` for closed-batch traffic; open-loop
        sources with injection queues set ``created_time`` earlier, and the
        difference is the source queueing delay.
        """
        if self.finish_step is None:
            return None
        created = self.message.created_time
        if created is None:
            created = self.message.start_time
        return self.finish_step - created + 1

    @property
    def delivered(self) -> bool:
        """True iff the probe reached its destination."""
        return self.result.outcome is RouteOutcome.DELIVERED

    @property
    def detours(self) -> Optional[int]:
        """Extra steps over the fault-free minimal distance."""
        return self.result.detours

    @property
    def blocked_hops(self) -> int:
        """Candidate hops denied to this probe by reserved circuits."""
        return self.result.blocked_hops

    @property
    def setup_retries(self) -> int:
        """Times this probe retreated/waited with every direction reserved."""
        return self.result.setup_retries


@dataclass
class SimulationStats:
    """Aggregates over a finished simulation."""

    messages: List[MessageRecord] = field(default_factory=list)
    convergence: List[ConvergenceRecord] = field(default_factory=list)
    steps: int = 0
    total_rounds: int = 0

    # -- circuit-contention accounting (all zero when contention is off) --
    #: Delivered circuits that entered their data-transmission hold.
    circuits_reserved: int = 0
    #: Sum over steps of the number of links reserved at the end of the
    #: step — the time integral of circuit occupancy.
    circuit_link_steps: int = 0
    #: Largest number of links simultaneously reserved.
    peak_reserved_links: int = 0

    #: Times a fenced-in probe timed out waiting and released its held
    #: partial circuit (the global router's deadlock-breaking policy).
    timeout_releases: int = 0

    #: Delivered circuits torn down mid-transfer because a fault event hit a
    #: node on their path (the message counts as fault-dropped: its data
    #: transmission was cut short even though the setup had succeeded).
    fault_dropped_circuits: int = 0

    def record_occupancy(self, reserved_links: int) -> None:
        """Fold one step's end-of-step reservation count into the totals."""
        self.circuit_link_steps += reserved_links
        if reserved_links > self.peak_reserved_links:
            self.peak_reserved_links = reserved_links

    # ------------------------------------------------------------------ #
    # message-level aggregates
    # ------------------------------------------------------------------ #
    @property
    def delivered_messages(self) -> List[MessageRecord]:
        """Messages whose probe reached its destination."""
        return [m for m in self.messages if m.delivered]

    @property
    def delivery_rate(self) -> float:
        """Fraction of probes delivered (1.0 when there were none)."""
        if not self.messages:
            return 1.0
        return len(self.delivered_messages) / len(self.messages)

    @property
    def mean_detours(self) -> float:
        """Mean extra steps over the minimal distance among delivered probes."""
        delivered = self.delivered_messages
        if not delivered:
            return 0.0
        return mean(m.detours or 0 for m in delivered)

    @property
    def max_detours(self) -> int:
        """Largest detour among delivered probes."""
        delivered = self.delivered_messages
        if not delivered:
            return 0
        return max(m.detours or 0 for m in delivered)

    @property
    def mean_hops(self) -> float:
        """Mean total hops (forward + backtrack) among delivered probes."""
        delivered = self.delivered_messages
        if not delivered:
            return 0.0
        return mean(m.result.hops for m in delivered)

    # ------------------------------------------------------------------ #
    # contention aggregates
    # ------------------------------------------------------------------ #
    @property
    def total_blocked_hops(self) -> int:
        """Candidate hops denied by reserved circuits, over all probes."""
        return sum(m.blocked_hops for m in self.messages)

    @property
    def total_setup_retries(self) -> int:
        """Reservation-forced retreats/waits, over all probes."""
        return sum(m.setup_retries for m in self.messages)

    @property
    def mean_reserved_links(self) -> float:
        """Mean links reserved per step (circuit hold occupancy)."""
        if not self.steps:
            return 0.0
        return self.circuit_link_steps / self.steps

    # ------------------------------------------------------------------ #
    # convergence aggregates
    # ------------------------------------------------------------------ #
    @property
    def mean_labeling_rounds(self) -> float:
        """Mean ``a_i`` over all fault changes."""
        if not self.convergence:
            return 0.0
        return mean(c.labeling_rounds for c in self.convergence)

    @property
    def max_total_convergence_rounds(self) -> int:
        """Largest ``a_i + b_i + c_i`` over all fault changes."""
        if not self.convergence:
            return 0
        return max(c.total_rounds for c in self.convergence)

    def summary(self) -> Dict[str, float]:
        """Flat summary dictionary convenient for printing bench tables."""
        latencies = self.setup_latencies()
        return {
            "messages": float(len(self.messages)),
            "delivery_rate": self.delivery_rate,
            "mean_detours": self.mean_detours,
            "max_detours": float(self.max_detours),
            "mean_hops": self.mean_hops,
            "fault_changes": float(len(self.convergence)),
            "mean_labeling_rounds": self.mean_labeling_rounds,
            "max_convergence_rounds": float(self.max_total_convergence_rounds),
            "steps": float(self.steps),
            "blocked_hops": float(self.total_blocked_hops),
            "setup_retries": float(self.total_setup_retries),
            "circuits_reserved": float(self.circuits_reserved),
            "mean_reserved_links": self.mean_reserved_links,
            "peak_reserved_links": float(self.peak_reserved_links),
            "timeout_releases": float(self.timeout_releases),
            "fault_dropped": float(self.fault_dropped_circuits),
            "mean_latency": (sum(latencies) / len(latencies)) if latencies else 0.0,
            "p50_latency": percentile(latencies, 0.50),
            "p99_latency": percentile(latencies, 0.99),
        }

    # ------------------------------------------------------------------ #
    # latency aggregates (open-loop measurement reads these)
    # ------------------------------------------------------------------ #
    def setup_latencies(
        self, records: Optional[List[MessageRecord]] = None
    ) -> List[int]:
        """End-to-end latencies (in steps) of the delivered records, sorted.

        Latency counts from message generation (source queueing included for
        open-loop traffic).  ``records`` defaults to every delivered message
        of the simulation; the windowed throughput measurement passes the
        records of its measurement phase only.
        """
        pool = self.delivered_messages if records is None else records
        return sorted(
            r.latency_steps
            for r in pool
            if r.delivered and r.latency_steps is not None
        )
