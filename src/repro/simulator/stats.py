"""Statistics collected by the simulator.

Three record types cover everything the experiments report:

* :class:`ConvergenceRecord` — for each fault change, the rounds the three
  constructions needed to stabilize (the paper's ``a_i``, ``b_i``, ``c_i``);
* :class:`MessageRecord` — outcome and detour accounting for each routing
  probe;
* :class:`SimulationStats` — aggregate views over both.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from statistics import mean
from typing import Dict, List, Optional, Tuple

from repro.core.routing import RouteOutcome, RouteResult
from repro.faults.schedule import FaultEvent
from repro.simulator.traffic import TrafficMessage

Coord = Tuple[int, ...]


@dataclass
class ConvergenceRecord:
    """Convergence accounting for one fault change (occurrence or recovery)."""

    #: The triggering event.
    event: FaultEvent

    #: Simulation step at which the event was detected.
    detected_step: int

    #: Rounds of block construction until the labeling stabilized (``a_i``).
    labeling_rounds: int = 0

    #: Rounds of the identification constructions started by this change
    #: (``b_i`` — the largest among concurrently identified blocks).
    identification_rounds: int = 0

    #: Rounds of the boundary constructions started by this change (``c_i``).
    boundary_rounds: int = 0

    #: Step at which all three constructions had stabilized, or ``None`` if
    #: the simulation ended first.
    stabilized_step: Optional[int] = None

    @property
    def total_rounds(self) -> int:
        """``a_i + b_i + c_i`` — total stabilization work for this change."""
        return self.labeling_rounds + self.identification_rounds + self.boundary_rounds

    def steps_to_stabilize(self, lam: int) -> int:
        """Steps needed at ``λ`` rounds per step (``⌈(a+b+c)/λ⌉``)."""
        return -(-self.total_rounds // max(lam, 1))


@dataclass
class MessageRecord:
    """Outcome of one routing probe."""

    message: TrafficMessage
    result: RouteResult

    #: Step at which the probe terminated (delivered/unreachable), or None.
    finish_step: Optional[int] = None

    @property
    def delivered(self) -> bool:
        """True iff the probe reached its destination."""
        return self.result.outcome is RouteOutcome.DELIVERED

    @property
    def detours(self) -> Optional[int]:
        """Extra steps over the fault-free minimal distance."""
        return self.result.detours


@dataclass
class SimulationStats:
    """Aggregates over a finished simulation."""

    messages: List[MessageRecord] = field(default_factory=list)
    convergence: List[ConvergenceRecord] = field(default_factory=list)
    steps: int = 0
    total_rounds: int = 0

    # ------------------------------------------------------------------ #
    # message-level aggregates
    # ------------------------------------------------------------------ #
    @property
    def delivered_messages(self) -> List[MessageRecord]:
        """Messages whose probe reached its destination."""
        return [m for m in self.messages if m.delivered]

    @property
    def delivery_rate(self) -> float:
        """Fraction of probes delivered (1.0 when there were none)."""
        if not self.messages:
            return 1.0
        return len(self.delivered_messages) / len(self.messages)

    @property
    def mean_detours(self) -> float:
        """Mean extra steps over the minimal distance among delivered probes."""
        delivered = self.delivered_messages
        if not delivered:
            return 0.0
        return mean(m.detours or 0 for m in delivered)

    @property
    def max_detours(self) -> int:
        """Largest detour among delivered probes."""
        delivered = self.delivered_messages
        if not delivered:
            return 0
        return max(m.detours or 0 for m in delivered)

    @property
    def mean_hops(self) -> float:
        """Mean total hops (forward + backtrack) among delivered probes."""
        delivered = self.delivered_messages
        if not delivered:
            return 0.0
        return mean(m.result.hops for m in delivered)

    # ------------------------------------------------------------------ #
    # convergence aggregates
    # ------------------------------------------------------------------ #
    @property
    def mean_labeling_rounds(self) -> float:
        """Mean ``a_i`` over all fault changes."""
        if not self.convergence:
            return 0.0
        return mean(c.labeling_rounds for c in self.convergence)

    @property
    def max_total_convergence_rounds(self) -> int:
        """Largest ``a_i + b_i + c_i`` over all fault changes."""
        if not self.convergence:
            return 0
        return max(c.total_rounds for c in self.convergence)

    def summary(self) -> Dict[str, float]:
        """Flat summary dictionary convenient for printing bench tables."""
        return {
            "messages": float(len(self.messages)),
            "delivery_rate": self.delivery_rate,
            "mean_detours": self.mean_detours,
            "max_detours": float(self.max_detours),
            "mean_hops": self.mean_hops,
            "fault_changes": float(len(self.convergence)),
            "mean_labeling_rounds": self.mean_labeling_rounds,
            "max_convergence_rounds": float(self.max_total_convergence_rounds),
            "steps": float(self.steps),
        }
