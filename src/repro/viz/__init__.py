"""Text rendering of mesh state (2-D meshes and 3-D slices).

The experiments and examples use these helpers to show, in a terminal, where
the faulty blocks sit, which nodes hold limited-global information and what
path a probe took — the textual analogue of the paper's figures.
"""

from repro.viz.ascii import render_information, render_labeling, render_route

__all__ = ["render_information", "render_labeling", "render_route"]
