"""ASCII renderers for 2-D meshes (or 2-D slices of higher-dimensional meshes).

Legend used by all renderers:

* ``F`` — faulty node
* ``D`` — disabled node (non-faulty block member)
* ``C`` — clean node (transient, during recovery)
* ``b`` — enabled node holding block information
* ``+`` — enabled node holding boundary information
* ``.`` — enabled node with no information
* ``S`` / ``T`` — source / destination of a rendered route
* ``*`` — node visited by the rendered route

Rows are printed with the second coordinate (``y``) decreasing downwards so
the origin ``(0, 0)`` appears at the bottom-left, matching the paper's
figures.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.block_construction import LabelingState
from repro.core.routing import RouteResult
from repro.core.state import InformationState
from repro.faults.status import NodeStatus
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]

_STATUS_CHARS = {
    NodeStatus.FAULTY: "F",
    NodeStatus.DISABLED: "D",
    NodeStatus.CLEAN: "C",
    NodeStatus.ENABLED: ".",
}


def _slice_node(x: int, y: int, slice_coords: Optional[Sequence[int]]) -> Coord:
    """Build the full node address for grid position (x, y)."""
    if slice_coords is None:
        return (x, y)
    return (x, y, *tuple(slice_coords))


def _grid(
    mesh: Mesh,
    slice_coords: Optional[Sequence[int]],
    char_of,
) -> str:
    if slice_coords is None and mesh.n_dims != 2:
        raise ValueError(
            "rendering a mesh with more than two dimensions requires "
            "slice_coords fixing the remaining coordinates"
        )
    if slice_coords is not None and len(slice_coords) != mesh.n_dims - 2:
        raise ValueError(
            f"slice_coords must fix {mesh.n_dims - 2} coordinates, "
            f"got {len(slice_coords)}"
        )
    width, height = mesh.shape[0], mesh.shape[1]
    rows = []
    for y in range(height - 1, -1, -1):
        row = []
        for x in range(width):
            node = _slice_node(x, y, slice_coords)
            row.append(char_of(node))
        rows.append(" ".join(row))
    return "\n".join(rows)


def render_labeling(
    mesh: Mesh,
    labeling: LabelingState,
    *,
    slice_coords: Optional[Sequence[int]] = None,
) -> str:
    """Render node statuses (faulty / disabled / clean / enabled)."""

    def char_of(node: Coord) -> str:
        return _STATUS_CHARS[labeling.status(node)]

    return _grid(mesh, slice_coords, char_of)


def render_information(
    info: InformationState,
    *,
    slice_coords: Optional[Sequence[int]] = None,
) -> str:
    """Render where limited-global information is held.

    Block members render as in :func:`render_labeling`; enabled nodes render
    as ``b`` (block record), ``+`` (boundary record only) or ``.`` (nothing).
    """

    def char_of(node: Coord) -> str:
        status = info.labeling.status(node)
        if status is not NodeStatus.ENABLED:
            return _STATUS_CHARS[status]
        if info.blocks_known_at(node):
            return "b"
        if info.boundaries_at(node):
            return "+"
        return "."

    return _grid(info.mesh, slice_coords, char_of)


#: Eight-level bar glyphs, lowest to highest.
_SPARK_CHARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """One-line bar chart of a numeric series.

    Series longer than ``width`` are downsampled by bucket means (each
    output glyph averages an equal slice of the input), so a long per-step
    series still reads as its overall shape.  Bars scale min→max; a
    constant series renders as all-low bars.
    """
    if width < 1:
        raise ValueError("sparkline width must be at least 1")
    series = [float(v) for v in values]
    if not series:
        return ""
    if len(series) > width:
        buckets = []
        for k in range(width):
            lo = k * len(series) // width
            hi = max(lo + 1, (k + 1) * len(series) // width)
            chunk = series[lo:hi]
            buckets.append(sum(chunk) / len(chunk))
        series = buckets
    low, high = min(series), max(series)
    span = high - low
    if span <= 0.0:
        return _SPARK_CHARS[0] * len(series)
    top = len(_SPARK_CHARS) - 1
    return "".join(
        _SPARK_CHARS[min(top, int((v - low) / span * top + 0.5))] for v in series
    )


def render_route(
    mesh: Mesh,
    labeling: LabelingState,
    route: RouteResult,
    *,
    slice_coords: Optional[Sequence[int]] = None,
) -> str:
    """Render the nodes visited by a routing probe over the labeling map."""
    visited = set(route.path)

    def char_of(node: Coord) -> str:
        if node == route.source:
            return "S"
        if node == route.destination:
            return "T"
        status = labeling.status(node)
        if status is not NodeStatus.ENABLED:
            return _STATUS_CHARS[status]
        if node in visited:
            return "*"
        return "."

    return _grid(mesh, slice_coords, char_of)
