"""Registry adapters for the Algorithm-3 (probe-based) policies.

``limited-global``, ``boundary-only``, ``no-disabled-avoid`` and
``no-information`` are all the same backtracking PCS probe run with
different :class:`~repro.core.routing.RoutingPolicy` flags; this adapter
derives the offline information view each flag set assumes and hands the
simulator plain :class:`~repro.core.routing.RoutingProbe` objects, so the
online hot path is exactly the pre-registry code path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from repro.core.block_construction import LabelingState
from repro.core.distribution import distribute_information
from repro.core.routing import (
    DecisionCache,
    InformationProvider,
    RouteResult,
    RoutingPolicy,
    RoutingProbe,
    route_offline,
)
from repro.core.state import InformationState
from repro.mesh.topology import Mesh
from repro.routing.registry import Router

Coord = Tuple[int, ...]


class AlgorithmRouter(Router):
    """Algorithm 3 under a specific :class:`RoutingPolicy`."""

    def __init__(self, policy: RoutingPolicy) -> None:
        self.policy = policy
        self.name = policy.name
        #: One-slot cache of the offline information view (plus the per-node
        #: decision cache built over it), keyed by labeling identity +
        #: mutation counter so batch routing over one stabilized
        #: configuration distributes the information exactly once.
        self._view: Optional[
            Tuple[LabelingState, int, InformationProvider, DecisionCache]
        ] = None

    def offline_view(self, mesh: Mesh, labeling: LabelingState) -> InformationProvider:
        """The information state this policy routes against offline.

        Policies that read block or boundary records get the full
        distributed information; an information-free policy routes against
        the bare labeling (adjacent-fault detection only).
        """
        return self._view_entry(mesh, labeling)[0]

    def _view_entry(
        self, mesh: Mesh, labeling: LabelingState
    ) -> Tuple[InformationProvider, DecisionCache]:
        cached = self._view
        if (
            cached is not None
            and cached[0] is labeling
            and cached[1] == labeling.mutations
        ):
            return cached[2], cached[3]
        if self.policy.use_block_info or self.policy.use_boundary_info:
            info: InformationProvider = distribute_information(mesh, labeling)
        else:
            info = InformationState(mesh=mesh, labeling=labeling)
        cache = DecisionCache(info, self.policy)
        self._view = (labeling, labeling.mutations, info, cache)
        return info, cache

    def route(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        source: Sequence[int],
        destination: Sequence[int],
        *,
        max_steps: Optional[int] = None,
    ) -> RouteResult:
        info, cache = self._view_entry(mesh, labeling)
        return route_offline(
            info,
            source,
            destination,
            policy=self.policy,
            max_steps=max_steps,
            decision_cache=cache,
        )

    def probe(
        self, mesh: Mesh, source: Sequence[int], destination: Sequence[int]
    ) -> RoutingProbe:
        return RoutingProbe(mesh, source, destination, policy=self.policy)
