"""Global-information routing: the idealized baseline, offline and online.

Every node is assumed to know the entire fault configuration at all times,
so the router can always follow a shortest path in the fault-free subgraph.
This is the ideal the traditional "routing table at every node" approach
strives for; the paper's model trades a small number of extra detours for
not having to maintain that table.  Two avoidance levels are provided:

* avoiding *faulty* nodes only (the true shortest usable path);
* avoiding whole *blocks* (faulty + disabled nodes), which is what a
  block-based global scheme would do and is the fairer comparison for the
  limited-global model.

The registry router additionally steps online: its :class:`GlobalPathProbe`
advances one hop per simulation step along the currently shortest path,
replanning whenever the labeling changes — or, under contention, whenever a
reserved circuit fences off the planned link.  A probe with no usable path
left because of *faults* reports the destination unreachable; one fenced in
only by *reservations* waits for a circuit to release.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.block_construction import LabelingState
from repro.core.routing import LinkBlocked, RouteOutcome, RouteResult
from repro.mesh.topology import Mesh
from repro.routing.registry import Router, SimulationInfo

Coord = Tuple[int, ...]


def shortest_usable_path(
    mesh: Mesh,
    blocked: Set[Coord],
    source: Coord,
    destination: Coord,
    *,
    link_blocked: Optional[LinkBlocked] = None,
) -> Optional[List[Coord]]:
    """BFS shortest path avoiding ``blocked`` nodes (and reserved links).

    Deterministic: neighbors are expanded in :meth:`Mesh.neighbors` order,
    so repeated calls against the same configuration pick the same path.
    """
    if source in blocked or destination in blocked:
        return None
    if source == destination:
        return [source]
    parents: Dict[Coord, Coord] = {}
    seen: Set[Coord] = {source}
    frontier = deque([source])
    while frontier:
        node = frontier.popleft()
        for neighbor in mesh.neighbors(node):
            if neighbor in seen or neighbor in blocked:
                continue
            if link_blocked is not None and link_blocked(node, neighbor):
                continue
            parents[neighbor] = node
            if neighbor == destination:
                path = [neighbor]
                while path[-1] != source:
                    path.append(parents[path[-1]])
                path.reverse()
                return path
            seen.add(neighbor)
            frontier.append(neighbor)
    return None


class GlobalInformationRouter:
    """Shortest-path router with full knowledge of the fault configuration.

    This is the legacy offline interface (kept for the baselines package);
    the registry adapter :class:`GlobalInfoRouter` builds on it.
    """

    def __init__(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        *,
        avoid_blocks: bool = True,
    ) -> None:
        self.mesh = mesh
        self.labeling = labeling
        self.avoid_blocks = avoid_blocks

    def blocked_nodes(self) -> Set[Coord]:
        """Nodes the router refuses to traverse."""
        if self.avoid_blocks:
            return set(self.labeling.block_nodes)
        return set(self.labeling.faulty_nodes)

    def shortest_path(
        self, source: Sequence[int], destination: Sequence[int]
    ) -> Optional[List[Coord]]:
        """BFS shortest path avoiding the blocked nodes, or ``None``."""
        source = self.mesh.validate(source)
        destination = self.mesh.validate(destination)
        return shortest_usable_path(
            self.mesh, self.blocked_nodes(), source, destination
        )

    def route(
        self, source: Sequence[int], destination: Sequence[int]
    ) -> RouteResult:
        """Route result along the globally-known shortest path."""
        source = self.mesh.validate(source)
        destination = self.mesh.validate(destination)
        path = self.shortest_path(source, destination)
        min_distance = self.mesh.distance(source, destination)
        if path is None:
            return RouteResult(
                outcome=RouteOutcome.UNREACHABLE,
                path=[source],
                source=source,
                destination=destination,
                min_distance=min_distance,
                forward_hops=0,
                backtrack_hops=0,
            )
        return RouteResult(
            outcome=RouteOutcome.DELIVERED,
            path=path,
            source=source,
            destination=destination,
            min_distance=min_distance,
            forward_hops=len(path) - 1,
            backtrack_hops=0,
        )


def route_global_information(
    mesh: Mesh,
    labeling: LabelingState,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    avoid_blocks: bool = True,
) -> RouteResult:
    """Convenience wrapper around :class:`GlobalInformationRouter`."""
    return GlobalInformationRouter(mesh, labeling, avoid_blocks=avoid_blocks).route(
        source, destination
    )


class GlobalPathProbe:
    """One-hop-per-step follower of the globally-known shortest path.

    Contention-free against a static labeling this reproduces the offline
    BFS route exactly: the plan is computed once at the first step and then
    followed hop by hop.  The plan is recomputed from the probe's current
    node whenever the labeling mutates or a reserved circuit blocks the
    planned link; a global router never backtracks, so its held circuit is
    simply its path so far.

    Under contention a probe can be *fenced in*: no usable direction left
    because every one is reserved by another circuit.  It then waits in
    place — still holding its own reserved links, so two mutually fenced-in
    probes form a deadlock cycle that probe lifetimes alone would break.
    The timeout-and-release policy bounds that wait: after ``wait_timeout``
    consecutive fenced-in steps the probe releases its whole partial
    circuit, retreats to its source and retries (counted in
    ``timeout_releases``, which the simulator folds into
    :class:`~repro.simulator.stats.SimulationStats`).
    """

    def __init__(
        self,
        mesh: Mesh,
        source: Sequence[int],
        destination: Sequence[int],
        *,
        avoid_blocks: bool = True,
        wait_timeout: Optional[int] = None,
    ) -> None:
        self.mesh = mesh
        self.source = mesh.validate(source)
        self.destination = mesh.validate(destination)
        self.avoid_blocks = avoid_blocks
        #: Consecutive fenced-in steps tolerated before the probe releases
        #: its held links and restarts from the source.
        self.wait_timeout = (
            wait_timeout if wait_timeout is not None else 2 * mesh.diameter + 4
        )
        if self.wait_timeout < 1:
            raise ValueError("wait_timeout must be at least 1")
        self.path: List[Coord] = [self.source]
        self.forward_hops = 0
        self.backtrack_hops = 0
        self.blocked_hops = 0
        self.setup_retries = 0
        #: Times the probe timed out fenced in and released its circuit.
        self.timeout_releases = 0
        self._waits_in_place = 0
        self.outcome: Optional[RouteOutcome] = None
        if self.source == self.destination:
            self.outcome = RouteOutcome.DELIVERED
        #: Remaining nodes to visit (current node excluded); ``None`` forces
        #: a replan at the next step.
        self._plan: Optional[List[Coord]] = None
        self._plan_mutations: Optional[int] = None

    @property
    def current(self) -> Coord:
        """Node currently holding the probe."""
        return self.path[-1]

    @property
    def done(self) -> bool:
        """True when the probe reached a terminal outcome."""
        return self.outcome is not None

    @property
    def circuit_stack(self) -> Sequence[Coord]:
        """The held circuit: the whole path (global probes never backtrack)."""
        return self.path

    def _blocked_nodes(self, labeling: LabelingState) -> Set[Coord]:
        if self.avoid_blocks:
            return labeling.block_nodes
        return labeling.faulty_nodes

    def step(
        self,
        info: SimulationInfo,
        *,
        link_blocked: Optional[LinkBlocked] = None,
        decision_cache: object = None,
        candidates: object = None,
    ) -> Optional[RouteOutcome]:
        """Advance one hop along the current plan, replanning as needed.

        ``decision_cache`` and ``candidates`` are accepted for interface
        uniformity with the Algorithm-3 probes and ignored: the global probe
        plans with a BFS, not with per-node direction classification, so it
        has nothing for the vectorized decision batch to classify.
        """
        if self.done:
            return self.outcome
        labeling = info.labeling
        current = self.path[-1]
        if self._plan is None or self._plan_mutations != labeling.mutations:
            if not self._replan(labeling, current, link_blocked):
                if self.outcome is None:
                    self._fenced_in_wait()
                return self.outcome
        assert self._plan is not None
        nxt = self._plan[0]
        if link_blocked is not None and link_blocked(current, nxt):
            # A circuit grabbed the planned link since the last replan.
            self.blocked_hops += 1
            if not self._replan(labeling, current, link_blocked):
                if self.outcome is None:
                    self._fenced_in_wait()
                return self.outcome
            nxt = self._plan[0]
        self._plan.pop(0)
        self.path.append(nxt)
        self.forward_hops += 1
        self._waits_in_place = 0
        if nxt == self.destination:
            self.outcome = RouteOutcome.DELIVERED
        return self.outcome

    def _fenced_in_wait(self) -> None:
        """One fenced-in step: wait, and time out by releasing the circuit.

        A probe that has waited ``wait_timeout`` consecutive steps while
        holding links gives them all up and retreats to its source, breaking
        any reservation deadlock cycle it participates in.  (At the source
        there is nothing to release, so the probe just keeps waiting.)
        """
        self._waits_in_place += 1
        if self._waits_in_place < self.wait_timeout or len(self.path) < 2:
            return
        self.backtrack_hops += len(self.path) - 1
        self.path = [self.source]
        self.timeout_releases += 1
        self._waits_in_place = 0
        self._plan = None
        self._plan_mutations = None

    def _replan(
        self,
        labeling: LabelingState,
        current: Coord,
        link_blocked: Optional[LinkBlocked],
    ) -> bool:
        """Recompute the plan from ``current``; False when no hop is possible.

        Unreachable because of faults is terminal; fenced in only by
        reservations means wait (count a setup retry, keep no plan so the
        next step replans again).
        """
        blocked = self._blocked_nodes(labeling)
        plan = shortest_usable_path(
            self.mesh, blocked, current, self.destination, link_blocked=link_blocked
        )
        if plan is not None:
            self._plan = plan[1:]
            self._plan_mutations = labeling.mutations
            return True
        if link_blocked is not None and (
            shortest_usable_path(self.mesh, blocked, current, self.destination)
            is not None
        ):
            self.setup_retries += 1
            self._plan = None
            return False
        self.outcome = RouteOutcome.UNREACHABLE
        return False

    def result(self) -> RouteResult:
        """Snapshot of the probe's statistics (terminal or not)."""
        outcome = self.outcome or RouteOutcome.EXHAUSTED
        return RouteResult(
            outcome=outcome,
            path=list(self.path),
            source=self.source,
            destination=self.destination,
            min_distance=self.mesh.distance(self.source, self.destination),
            forward_hops=self.forward_hops,
            backtrack_hops=self.backtrack_hops,
            blocked_hops=self.blocked_hops,
            setup_retries=self.setup_retries,
        )


class GlobalInfoRouter(Router):
    """Registry adapter for global-information routing (offline + online)."""

    name = "global-information"

    def __init__(self, *, avoid_blocks: bool = True) -> None:
        self.avoid_blocks = avoid_blocks

    def route(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        source: Sequence[int],
        destination: Sequence[int],
        *,
        max_steps: Optional[int] = None,
    ) -> RouteResult:
        # max_steps is accepted for interface uniformity; a BFS route never
        # wanders, so there is nothing to cut short.
        return GlobalInformationRouter(
            mesh, labeling, avoid_blocks=self.avoid_blocks
        ).route(source, destination)

    def probe(
        self, mesh: Mesh, source: Sequence[int], destination: Sequence[int]
    ) -> GlobalPathProbe:
        return GlobalPathProbe(
            mesh, source, destination, avoid_blocks=self.avoid_blocks
        )
