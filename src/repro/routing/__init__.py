"""Unified router registry.

Every routing policy the paper's evaluation compares — the limited-global
model, its ablation variants, Wu's static faulty-block predecessor, the
information-free baseline and the global-information ideal — is registered
here under one name space.  The CLI, the experiment grids
(:mod:`repro.experiments`) and the simulator resolve any policy by name, in
*every* mode: each router both routes offline against a stabilized labeling
and hands the simulator an online probe stepped against the current,
possibly still-converging information.

Registered names (in registration order):

======================  ====================================================
``limited-global``      the paper's model: block + boundary information
``static-block``        Wu ICPP 2000: block info at adjacent nodes only
``boundary-only``       ablation: boundary information without block records
``no-disabled-avoid``   ablation: never avoids known-disabled neighbors
``no-information``      backtracking PCS, adjacent-fault detection only
``global-information``  idealized shortest path with full fault knowledge
======================  ====================================================
"""

from repro.core.routing import RoutingPolicy
from repro.routing.algorithm import AlgorithmRouter
from repro.routing.global_info import (
    GlobalInfoRouter,
    GlobalInformationRouter,
    GlobalPathProbe,
    route_global_information,
    shortest_usable_path,
)
from repro.routing.registry import (
    Router,
    SetupProbe,
    available_routers,
    register_router,
    resolve_router,
    route_with,
)
from repro.routing.static_block import (
    StaticBlockProbe,
    StaticBlockRouter,
    adjacent_only_information,
)

register_router(
    "limited-global", lambda: AlgorithmRouter(RoutingPolicy.limited_global())
)
register_router("static-block", StaticBlockRouter)
register_router(
    "boundary-only",
    lambda: AlgorithmRouter(RoutingPolicy(name="boundary-only", use_block_info=False)),
)
register_router(
    "no-disabled-avoid",
    lambda: AlgorithmRouter(
        RoutingPolicy(name="no-disabled-avoid", avoid_known_disabled=False)
    ),
)
register_router(
    "no-information", lambda: AlgorithmRouter(RoutingPolicy.no_information())
)
register_router("global-information", GlobalInfoRouter)

__all__ = [
    "AlgorithmRouter",
    "GlobalInfoRouter",
    "GlobalInformationRouter",
    "GlobalPathProbe",
    "Router",
    "SetupProbe",
    "StaticBlockProbe",
    "StaticBlockRouter",
    "adjacent_only_information",
    "available_routers",
    "register_router",
    "resolve_router",
    "route_global_information",
    "route_with",
    "shortest_usable_path",
]
