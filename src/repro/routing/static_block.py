"""Static faulty-block routing (Wu, ICPP 2000) as a registry router.

Wu's minimal adaptive routing keeps block information only at the nodes
*adjacent* to a block (its frame), with no boundary propagation.  The
router shares the Algorithm-3 probe with the limited-global model and
differs only in which nodes hold information: an adjacent-only view is
derived from the current labeling — and, online, re-derived whenever the
labeling changes, so the simulator can sweep this policy too.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from repro.backend import resolve_backend
from repro.core.block_construction import LabelingState, extract_blocks
from repro.core.routing import (
    UNSET,
    DecisionCache,
    LinkBlocked,
    ProbeHeader,
    RouteOutcome,
    RouteResult,
    RoutingPolicy,
    RoutingProbe,
    route_offline,
)
from repro.core.state import BlockRecord, InformationState
from repro.mesh.topology import Mesh
from repro.routing.registry import Router, SimulationInfo

Coord = Tuple[int, ...]


def adjacent_only_information(
    mesh: Mesh, labeling: LabelingState, *, version: int = 0
) -> InformationState:
    """Information state with block records at adjacent-frame nodes only.

    This is exactly what the identification back-propagation produces,
    *without* the subsequent boundary construction.
    """
    info = InformationState(mesh=mesh, labeling=labeling, version=version)
    for block in extract_blocks(labeling):
        record = BlockRecord(extent=block.extent, version=version)
        for node in block.frame_nodes(mesh):
            info.add_block_info(node, record)
    return info


class StaticBlockRouter(Router):
    """Block information at block-adjacent nodes only; no boundaries."""

    name = "static-block"

    def __init__(self) -> None:
        self.policy = RoutingPolicy(name="static-block", use_boundary_info=False)
        self._view: Optional[
            Tuple[LabelingState, int, InformationState, Dict[str, DecisionCache]]
        ] = None

    def adjacent_view(self, mesh: Mesh, labeling: LabelingState) -> InformationState:
        """Adjacent-only information for ``labeling``, rebuilt on mutation.

        The one-slot cache is shared by every probe of one simulation, so a
        labeling change costs one rebuild, not one per in-flight probe.
        """
        return self._view_entry(mesh, labeling)[0]

    def _view_entry(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        backend: Optional[str] = None,
    ) -> Tuple[InformationState, DecisionCache]:
        """The cached adjacent-only view plus a decision cache over it.

        ``backend`` picks the cache's classification backend (``None`` →
        environment default); caches per backend share the one view, so a
        simulator whose configured backend differs from the environment
        still batches through the backend it asked for.
        """
        resolved = resolve_backend(backend)
        cached = self._view
        if (
            cached is not None
            and cached[0] is labeling
            and cached[1] == labeling.mutations
        ):
            view, caches = cached[2], cached[3]
        else:
            view = adjacent_only_information(mesh, labeling)
            caches = {}
            self._view = (labeling, labeling.mutations, view, caches)
        cache = caches.get(resolved)
        if cache is None:
            cache = caches[resolved] = DecisionCache(view, self.policy, backend=resolved)
        return view, cache

    def route(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        source: Sequence[int],
        destination: Sequence[int],
        *,
        max_steps: Optional[int] = None,
    ) -> RouteResult:
        view, cache = self._view_entry(mesh, labeling)
        return route_offline(
            view,
            source,
            destination,
            policy=self.policy,
            max_steps=max_steps,
            decision_cache=cache,
        )

    def probe(
        self, mesh: Mesh, source: Sequence[int], destination: Sequence[int]
    ) -> "StaticBlockProbe":
        return StaticBlockProbe(self, mesh, source, destination)


class StaticBlockProbe:
    """A :class:`RoutingProbe` that sees only adjacent-frame information.

    The simulator hands every probe its own (boundary-propagated)
    information state; this wrapper swaps in the adjacent-only view of the
    same labeling before each decision, leaving everything else — header,
    backtracking, contention handling — to the shared probe machinery.
    """

    def __init__(
        self,
        router: StaticBlockRouter,
        mesh: Mesh,
        source: Sequence[int],
        destination: Sequence[int],
    ) -> None:
        self._router = router
        self._inner = RoutingProbe(mesh, source, destination, policy=router.policy)

    def batch_entry(
        self, info: SimulationInfo, backend: Optional[str] = None
    ) -> Optional[Tuple[DecisionCache, ProbeHeader]]:
        """(serving cache, header) for the engine's vectorized decision batch.

        This probe decides against the adjacent-only view, so the simulator
        must classify it through the router's cache over that view — not
        through the engine's own cache.  ``backend`` is the simulator's
        resolved backend, honored even when it differs from the
        environment default.
        """
        _view, cache = self._router._view_entry(info.mesh, info.labeling, backend)
        return cache, self._inner.header

    def step(
        self,
        info: SimulationInfo,
        *,
        link_blocked: Optional[LinkBlocked] = None,
        decision_cache: Optional[DecisionCache] = None,
        candidates: object = UNSET,
    ) -> Optional[RouteOutcome]:
        # The engine's cache is bound to *its* information state; this probe
        # decides against the adjacent-only view, so it uses the decision
        # cache the router keeps alongside that view instead.
        view, cache = self._router._view_entry(info.mesh, info.labeling)
        return self._inner.step(
            view, link_blocked=link_blocked, decision_cache=cache, candidates=candidates
        )

    def result(self) -> RouteResult:
        return self._inner.result()

    @property
    def outcome(self) -> Optional[RouteOutcome]:
        return self._inner.outcome

    @property
    def done(self) -> bool:
        return self._inner.done

    @property
    def current(self) -> Coord:
        return self._inner.current

    @property
    def circuit_stack(self) -> Sequence[Coord]:
        return self._inner.circuit_stack

    @property
    def blocked_hops(self) -> int:
        return self._inner.blocked_hops

    @property
    def setup_retries(self) -> int:
        return self._inner.setup_retries
