"""The router registry: one name space for every routing policy.

A :class:`Router` bundles the two ways a policy is exercised in this repo:

* **offline** — :meth:`Router.route` runs the policy to completion against a
  stabilized labeling (the setting of the paper's comparison tables);
* **online** — :meth:`Router.probe` creates a :class:`SetupProbe` that the
  step-synchronous simulator advances one hop per simulation step against
  whatever (possibly still-converging) information exists at that step.

Routers are looked up by name through :func:`resolve_router`, so the CLI,
the experiment grids and the simulator all accept the same policy names and
new policies become sweepable everywhere by a single :func:`register_router`
call.  ``resolve_router`` returns a *fresh* router instance per call:
routers may cache derived views (e.g. the distributed information for a
labeling) without sharing state across unrelated simulations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import (
    Callable,
    ClassVar,
    Dict,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.core.block_construction import LabelingState
from repro.core.routing import (
    DecisionCache,
    InformationProvider,
    LinkBlocked,
    RouteOutcome,
    RouteResult,
)
from repro.mesh.topology import Mesh

Coord = Tuple[int, ...]


class SimulationInfo(InformationProvider, Protocol):
    """What an online probe may read from the simulator's information.

    The plain :class:`~repro.core.routing.InformationProvider` protocol is
    enough for the Algorithm-3 probes, but the static-block and
    global-information probes additionally derive their own views from the
    *current labeling* — so the registry's online contract explicitly
    includes it.  :class:`~repro.core.state.InformationState` (what the
    simulator steps probes with) satisfies this protocol.
    """

    labeling: LabelingState


@runtime_checkable
class SetupProbe(Protocol):
    """A path-setup probe the simulator advances one hop per step.

    ``blocked_hops`` / ``setup_retries`` accumulate contention statistics and
    stay zero when routing is contention-free; ``circuit_stack`` is the
    partial circuit the probe currently holds, whose links the simulator's
    live reservation table keeps reserved while the probe is in flight.
    """

    outcome: Optional[RouteOutcome]
    blocked_hops: int
    setup_retries: int

    @property
    def done(self) -> bool: ...

    @property
    def circuit_stack(self) -> Sequence[Coord]: ...

    def step(
        self,
        info: SimulationInfo,
        *,
        link_blocked: Optional[LinkBlocked] = None,
        decision_cache: Optional["DecisionCache"] = None,
        candidates: object = ...,
    ) -> Optional[RouteOutcome]: ...

    def result(self) -> RouteResult: ...


class Router(ABC):
    """A named routing policy, usable offline and inside the simulator."""

    #: Registry name of the policy (e.g. ``"limited-global"``).
    name: ClassVar[str]

    @abstractmethod
    def route(
        self,
        mesh: Mesh,
        labeling: LabelingState,
        source: Sequence[int],
        destination: Sequence[int],
        *,
        max_steps: Optional[int] = None,
    ) -> RouteResult:
        """Route one message to completion against a stabilized labeling.

        The router derives whatever information view its policy assumes
        (fully distributed records, adjacent-only records, the raw labeling)
        from ``labeling`` itself, so callers never special-case policies.
        """

    @abstractmethod
    def probe(
        self, mesh: Mesh, source: Sequence[int], destination: Sequence[int]
    ) -> SetupProbe:
        """A fresh online probe for the simulator to step."""


_FACTORIES: Dict[str, Callable[[], Router]] = {}


def register_router(
    name: str, factory: Callable[[], Router], *, replace: bool = False
) -> None:
    """Register ``factory`` under ``name`` (``replace`` guards collisions)."""
    if not replace and name in _FACTORIES:
        raise ValueError(f"router {name!r} is already registered")
    _FACTORIES[name] = factory


def resolve_router(name: str) -> Router:
    """A fresh :class:`Router` instance for ``name``.

    Raises :class:`ValueError` (listing the registered names) for unknown
    policies, so CLI/spec validation can surface the full menu.
    """
    factory = _FACTORIES.get(name)
    if factory is None:
        raise ValueError(
            f"unknown routing policy {name!r} (registered: "
            f"{', '.join(available_routers())})"
        )
    router = factory()
    return router


def available_routers() -> Tuple[str, ...]:
    """Every registered policy name, in registration order."""
    return tuple(_FACTORIES)


def route_with(
    name: str,
    mesh: Mesh,
    labeling: LabelingState,
    source: Sequence[int],
    destination: Sequence[int],
    *,
    max_steps: Optional[int] = None,
) -> RouteResult:
    """Resolve ``name`` and route one message offline (convenience)."""
    return resolve_router(name).route(
        mesh, labeling, source, destination, max_steps=max_steps
    )
