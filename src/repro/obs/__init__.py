"""Runtime observability: metrics, per-step recording, profiling, telemetry.

The simulator and the experiment runner are instrumented with four
opt-in, zero-cost-when-off layers:

* :mod:`repro.obs.registry` — a small metrics registry (counters, gauges,
  histograms) any layer can write into and a report can snapshot;
* :mod:`repro.obs.recorder` — :class:`StepRecorder`, a vectorized
  per-step time-series recorder sampling directly from the simulator's
  flat numpy columns (probe-table counters, ledger occupancy, labeling
  status codes) into preallocated growable arrays;
* :mod:`repro.obs.profile` — :class:`PhaseProfiler`, span-based timing of
  the step pipeline (labeling rounds, decision batch, probe advance,
  ledger sweep, source poll) with a nested report;
* :mod:`repro.obs.trace` / :mod:`repro.obs.telemetry` — JSONL trace
  export of step samples and fault/convergence events, and sweep-level
  run telemetry (per-shard wall time, worker utilization, cache hit
  rates) attached to :class:`~repro.experiments.results.BatchResult`.

Everything here is **off by default**: a simulator without a recorder or
profiler attached runs the exact pre-observability hot path (the perf CI
gate holds it to that), and telemetry never enters the canonical sweep
JSON — the byte-identical determinism contract is unchanged.
"""

from repro.obs.profile import PhaseProfiler
from repro.obs.recorder import StepRecorder
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.telemetry import TELEMETRY_VERSION, ShardRecord, SweepTelemetry
from repro.obs.trace import TRACE_SCHEMA, Trace, read_trace, trace_records, write_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PhaseProfiler",
    "ShardRecord",
    "StepRecorder",
    "SweepTelemetry",
    "TELEMETRY_VERSION",
    "TRACE_SCHEMA",
    "Trace",
    "read_trace",
    "trace_records",
    "write_trace",
]
