"""Vectorized per-step time-series recorder for the simulator.

A :class:`StepRecorder` attached to a :class:`~repro.simulator.engine.Simulator`
samples one row per simulation step into preallocated growable numpy
columns.  Sampling reads the engine's existing flat state — probe-table
counter columns (``_blk``/``_rty``/``_waited``), the circuit ledger's
reserved-link count, a :func:`numpy.bincount` over the labeling status
codes (cached on the labeling's mutation stamp, so stable steps skip
it) — plus O(1) aggregates, and folds each finished
:class:`~repro.simulator.stats.MessageRecord` exactly once, so an enabled
recorder costs array reads per step, not per-probe Python.  A simulator
without a recorder pays nothing: the engine's only hook is an
``is not None`` check after the step.

Columns come in two families:

* **cumulative totals** (``*_total``) — injected/finished/delivered
  messages, blocked hops, setup retries, reserved-link step integral.
  Per-step series are recovered with :meth:`StepRecorder.deltas`, and by
  construction the delta series sum back to the end-of-run
  :class:`~repro.simulator.stats.SimulationStats` aggregates exactly;
* **instantaneous levels** — in-flight probes, parked (waiting) probes,
  reserved links at end of step, and the four labeling status-code
  populations (enabled/clean/disabled/faulty).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoid engine cycle)
    from repro.simulator.engine import Simulator

__all__ = ["StepRecorder", "CUMULATIVE_COLUMNS", "LEVEL_COLUMNS"]

#: Monotone totals; per-step series are first differences (:meth:`deltas`).
CUMULATIVE_COLUMNS: Tuple[str, ...] = (
    "injected_total",
    "finished_total",
    "delivered_total",
    "blocked_hops_total",
    "setup_retries_total",
    "link_steps_total",
    "fault_dropped_total",
)

#: End-of-step levels, recorded as-is.
LEVEL_COLUMNS: Tuple[str, ...] = (
    "in_flight",
    "waiting",
    "reserved_links",
    "nodes_enabled",
    "nodes_clean",
    "nodes_disabled",
    "nodes_faulty",
)

COLUMNS: Tuple[str, ...] = ("step",) + CUMULATIVE_COLUMNS + LEVEL_COLUMNS


class StepRecorder:
    """One time-series row per simulation step, in flat int64 columns."""

    def __init__(self, capacity: int = 1024) -> None:
        capacity = max(16, capacity)
        self._columns: Dict[str, np.ndarray] = {
            name: np.zeros(capacity, dtype=np.int64) for name in COLUMNS
        }
        self._len = 0
        self._capacity = capacity
        # Finished-message fold state: index into ``stats.messages`` already
        # accumulated, plus the running finished-probe totals.
        self._seen_messages = 0
        self._fin_delivered = 0
        self._fin_blocked = 0
        self._fin_retries = 0
        # Status-population cache, keyed on LabelingState.mutations (the
        # documented change stamp): most steps don't move the labeling, so
        # the bincount is only recomputed when it does.
        self._status_src: object = None
        self._status_mutations = -1
        self._status_counts: Tuple[int, int, int, int] = (0, 0, 0, 0)

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #
    def _grow(self) -> None:
        new_capacity = self._capacity * 2
        for name, column in self._columns.items():
            grown = np.zeros(new_capacity, dtype=np.int64)
            grown[: self._len] = column[: self._len]
            self._columns[name] = grown
        self._capacity = new_capacity

    def sample(self, sim: "Simulator") -> None:
        """Record the state at the end of the step the simulator just ran."""
        if self._len >= self._capacity:
            self._grow()
        i = self._len
        stats = sim.stats

        # Fold message records finished since the last sample (each record
        # is visited exactly once over the whole run).
        messages = stats.messages
        for record in messages[self._seen_messages:]:
            result = record.result
            if record.delivered:
                self._fin_delivered += 1
            self._fin_blocked += result.blocked_hops
            self._fin_retries += result.setup_retries
        self._seen_messages = len(messages)

        # In-flight counter sums, from the probe table's flat columns when
        # the struct-of-arrays engine is active, else the (opt-in, oracle)
        # per-object path.
        table = sim._table
        if table is not None:
            if len(table._cells) == 1:
                in_flight = int(table._cell.size)
                blk = int(table._blk.sum())
                rty = int(table._rty.sum())
                waiting = int(np.count_nonzero(table._waited))
            else:
                mask = table._cell == sim._table_cell
                in_flight = int(np.count_nonzero(mask))
                blk = int(table._blk[mask].sum())
                rty = int(table._rty[mask].sum())
                waiting = int(np.count_nonzero(table._waited[mask]))
        else:
            in_flight = len(sim._probes)
            blk = rty = waiting = 0
            for _message, probe, _holder, _blocked, _cacheable in sim._probes:
                blk += getattr(probe, "blocked_hops", 0)
                rty += getattr(probe, "setup_retries", 0)
                waiting += bool(getattr(probe, "waited", False))

        generated = getattr(sim._source, "generated", None)
        if generated is None:
            generated = self._seen_messages + in_flight

        labeling = sim.info.labeling
        if (
            labeling is not self._status_src
            or labeling.mutations != self._status_mutations
        ):
            counts = np.bincount(
                np.asarray(labeling.codes, dtype=np.int64).ravel(), minlength=4
            )
            self._status_counts = (
                int(counts[0]), int(counts[1]), int(counts[2]), int(counts[3])
            )
            self._status_src = labeling
            self._status_mutations = labeling.mutations
        status_counts = self._status_counts

        columns = self._columns
        columns["step"][i] = sim._step - 1
        columns["injected_total"][i] = generated
        columns["finished_total"][i] = self._seen_messages
        columns["delivered_total"][i] = self._fin_delivered
        columns["blocked_hops_total"][i] = self._fin_blocked + blk
        columns["setup_retries_total"][i] = self._fin_retries + rty
        columns["link_steps_total"][i] = stats.circuit_link_steps
        columns["fault_dropped_total"][i] = stats.fault_dropped_circuits
        columns["in_flight"][i] = in_flight
        columns["waiting"][i] = waiting
        columns["reserved_links"][i] = (
            sim.circuits.reserved_links if sim.circuits is not None else 0
        )
        columns["nodes_enabled"][i] = status_counts[0]
        columns["nodes_clean"][i] = status_counts[1]
        columns["nodes_disabled"][i] = status_counts[2]
        columns["nodes_faulty"][i] = status_counts[3]
        self._len = i + 1

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._len

    @property
    def columns(self) -> Tuple[str, ...]:
        return COLUMNS

    def column(self, name: str) -> np.ndarray:
        """The recorded series for ``name`` (a read-only length-``len`` view)."""
        if name not in self._columns:
            raise KeyError(f"unknown recorder column {name!r} (have {COLUMNS})")
        view = self._columns[name][: self._len]
        view.flags.writeable = False
        return view

    def deltas(self, name: str) -> np.ndarray:
        """Per-step increments of a cumulative ``*_total`` column.

        ``deltas(c)[t]`` is the amount column ``c`` grew during step ``t``;
        the series sums to the column's final value exactly.
        """
        if name not in CUMULATIVE_COLUMNS:
            raise KeyError(f"{name!r} is not a cumulative column ({CUMULATIVE_COLUMNS})")
        return np.diff(self.column(name), prepend=np.int64(0))

    def cumulative_at(self, name: str, step_count: int) -> int:
        """Value of a cumulative column after ``step_count`` steps (0 → 0)."""
        if step_count <= 0:
            return 0
        return int(self.column(name)[step_count - 1])

    def rows(self) -> Iterator[Dict[str, int]]:
        """Per-step dict rows: deltas for totals, levels as recorded."""
        delta_arrays: List[Tuple[str, np.ndarray]] = [
            (name.replace("_total", ""), self.deltas(name))
            for name in CUMULATIVE_COLUMNS
        ]
        level_arrays = [(name, self.column(name)) for name in LEVEL_COLUMNS]
        steps = self.column("step")
        for i in range(self._len):
            row = {"step": int(steps[i])}
            for name, arr in delta_arrays:
                row[name] = int(arr[i])
            for name, arr in level_arrays:
                row[name] = int(arr[i])
            yield row
