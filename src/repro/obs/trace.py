"""JSONL trace export of a recorded simulation run.

A trace is one JSON object per line:

* a **header** line (``kind: "header"``) carrying the schema version, the
  mesh shape, the routing policy and the recorder's column names;
* one **step** line per simulation step (``kind: "step"``): per-step
  deltas of the cumulative counters (injected/finished/delivered messages,
  blocked hops, setup retries, link-steps) plus end-of-step levels
  (in-flight and waiting probes, reserved links, labeling status-code
  populations);
* one **event** line per scheduled fault/recovery event;
* one **convergence** line per fault change the simulator stabilized;
* a final **summary** line mirroring ``SimulationStats.summary()``.

The per-step delta series sum back to the end-of-run aggregates exactly
(``sum(delivered) == summary["messages"] * delivery_rate`` and so on) —
:func:`read_trace` round-trips the file and the tests hold it to that.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Union

from repro.obs.recorder import StepRecorder

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoid engine cycle)
    from repro.simulator.engine import Simulator

__all__ = ["TRACE_SCHEMA", "Trace", "read_trace", "trace_records", "write_trace"]

#: Versioned schema tag on the header line; bump on layout changes.
TRACE_SCHEMA = "repro.trace/v1"


def trace_records(
    sim: "Simulator", recorder: Optional[StepRecorder] = None
) -> Iterator[dict]:
    """The trace of ``sim`` as an iterator of JSON-serializable records.

    ``recorder`` defaults to the recorder attached to the simulator; a
    simulator that ran without one traces events and summary only.
    """
    if recorder is None:
        recorder = sim._recorder
    stats = sim.stats
    yield {
        "kind": "header",
        "schema": TRACE_SCHEMA,
        "shape": list(sim.mesh.shape),
        "policy": getattr(sim.router, "name", "?"),
        "contention": sim.config.contention,
        "lam": sim.config.lam,
        "steps": stats.steps,
        "columns": list(recorder.columns) if recorder is not None else [],
    }
    for event in sim.schedule.events:
        yield {
            "kind": "event",
            "t": event.time,
            "event": event.kind.value,
            "node": list(event.node),
        }
    if recorder is not None:
        for row in recorder.rows():
            row_out: Dict[str, Union[str, int]] = {"kind": "step"}
            row_out.update(row)
            yield row_out
    for record in stats.convergence:
        yield {
            "kind": "convergence",
            "event": record.event.kind.value,
            "node": list(record.event.node),
            "detected_step": record.detected_step,
            "stabilized_step": record.stabilized_step,
            "labeling_rounds": record.labeling_rounds,
            "identification_rounds": record.identification_rounds,
            "boundary_rounds": record.boundary_rounds,
        }
    yield {"kind": "summary", "metrics": stats.summary()}


def write_trace(
    path: str, sim: "Simulator", recorder: Optional[StepRecorder] = None
) -> int:
    """Write ``sim``'s trace to ``path`` as JSONL; returns the line count."""
    lines = 0
    with open(path, "w", encoding="utf-8") as handle:
        for record in trace_records(sim, recorder):
            handle.write(json.dumps(record, sort_keys=True))
            handle.write("\n")
            lines += 1
    return lines


@dataclass
class Trace:
    """A parsed JSONL trace, grouped by record kind."""

    header: dict
    steps: List[dict] = field(default_factory=list)
    events: List[dict] = field(default_factory=list)
    convergence: List[dict] = field(default_factory=list)
    summary: Dict[str, float] = field(default_factory=dict)

    @property
    def schema(self) -> str:
        return self.header.get("schema", "")

    def series(self, column: str) -> List[int]:
        """The per-step series of one step-row column, in step order."""
        return [row[column] for row in self.steps]


def read_trace(path: str) -> Trace:
    """Parse a JSONL trace written by :func:`write_trace`."""
    header: Optional[dict] = None
    steps: List[dict] = []
    events: List[dict] = []
    convergence: List[dict] = []
    summary: Dict[str, float] = {}
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(f"{path}:{line_number}: not valid JSON ({exc})")
            kind = record.get("kind")
            if kind == "header":
                if record.get("schema") != TRACE_SCHEMA:
                    raise ValueError(
                        f"{path}: unsupported trace schema "
                        f"{record.get('schema')!r} (expected {TRACE_SCHEMA!r})"
                    )
                header = record
            elif kind == "step":
                steps.append(record)
            elif kind == "event":
                events.append(record)
            elif kind == "convergence":
                convergence.append(record)
            elif kind == "summary":
                summary = record.get("metrics", {})
            else:
                raise ValueError(f"{path}:{line_number}: unknown record kind {kind!r}")
    if header is None:
        raise ValueError(f"{path}: no trace header line found")
    return Trace(
        header=header,
        steps=steps,
        events=events,
        convergence=convergence,
        summary=summary,
    )
