"""Span-based phase profiling of the simulator step pipeline.

A :class:`PhaseProfiler` times named spans — ``with profiler.span("x")``
— and aggregates wall time and call counts per *span path*, so nested
phases report as a tree::

    step                          1.234s  100.0%  x500
      fault_detect                0.010s    0.8%  x500
      labeling_round              0.480s   38.9%  x730
      protocols                   0.120s    9.7%  x1000
      messages                    0.600s   48.6%  x500
        source_poll               0.040s    3.2%  x500
        decision_batch            0.310s   25.1%  x480
        probe_advance             0.200s   16.2%  x480
        ledger_sweep              0.030s    2.4%  x500

The profiler is pure opt-in: the engine consults it through a single
``is not None`` check per step and runs the span-free code path when no
profiler is attached, so profiling-off costs nothing.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Tuple

__all__ = ["PhaseProfiler"]

#: One span-path's aggregate: (total seconds, entry count).
_Totals = Dict[Tuple[str, ...], List[float]]


class _Span:
    """Context manager timing one entry of one named phase."""

    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "PhaseProfiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        profiler = self._profiler
        profiler._stack.append(self._name)
        self._start = perf_counter()
        return self

    def __exit__(self, *exc_info) -> None:
        elapsed = perf_counter() - self._start
        profiler = self._profiler
        path = tuple(profiler._stack)
        profiler._stack.pop()
        entry = profiler._totals.get(path)
        if entry is None:
            profiler._totals[path] = [elapsed, 1]
        else:
            entry[0] += elapsed
            entry[1] += 1


class PhaseProfiler:
    """Aggregated wall time and call counts per nested span path."""

    def __init__(self) -> None:
        self._stack: List[str] = []
        self._totals: _Totals = {}

    def span(self, name: str) -> _Span:
        """A context manager timing one entry of phase ``name``."""
        return _Span(self, name)

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def seconds(self, *path: str) -> float:
        """Total seconds spent in the span at ``path`` (0.0 if never entered)."""
        entry = self._totals.get(tuple(path))
        return entry[0] if entry is not None else 0.0

    def count(self, *path: str) -> int:
        """Times the span at ``path`` was entered."""
        entry = self._totals.get(tuple(path))
        return int(entry[1]) if entry is not None else 0

    def to_dict(self) -> Dict[str, dict]:
        """Nested ``{name: {seconds, count, children}}`` tree."""
        root: Dict[str, dict] = {}
        for path in sorted(self._totals):
            seconds, count = self._totals[path]
            level = root
            for name in path[:-1]:
                level = level.setdefault(
                    name, {"seconds": 0.0, "count": 0, "children": {}}
                )["children"]
            node = level.setdefault(
                path[-1], {"seconds": 0.0, "count": 0, "children": {}}
            )
            node["seconds"] += seconds
            node["count"] += int(count)
        return root

    def report(self) -> str:
        """The indented timing tree, one line per span path."""
        total = sum(
            entry[0] for path, entry in self._totals.items() if len(path) == 1
        )
        lines = [f"{'phase':<34} {'seconds':>10} {'share':>7} {'calls':>9}"]

        def emit(tree: Dict[str, dict], depth: int) -> None:
            for name, node in tree.items():
                label = "  " * depth + name
                share = (node["seconds"] / total * 100.0) if total else 0.0
                lines.append(
                    f"{label:<34} {node['seconds']:>10.4f} {share:>6.1f}% "
                    f"{node['count']:>9}"
                )
                emit(node["children"], depth + 1)

        emit(self.to_dict(), 0)
        return "\n".join(lines)
