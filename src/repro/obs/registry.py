"""A minimal metrics registry: named counters, gauges and histograms.

The registry is the write-side primitive of the observability layer: any
subsystem can take (or lazily create) a named instrument and write into
it, and a reporting layer snapshots the whole registry as one flat dict.
Instruments are plain Python objects with O(1) updates — cheap enough to
leave in semi-hot code behind an ``is not None`` check, and entirely
absent from the simulator hot path unless explicitly attached.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]

#: Default histogram bucket upper bounds (powers of two, steps/links/hops
#: scale); values above the last bound land in the overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> dict:
        return {"type": "counter", "value": self.value}


class Gauge:
    """A value that can go up and down (an instantaneous level)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def add(self, delta: float) -> None:
        self.value += delta

    def snapshot(self) -> dict:
        return {"type": "gauge", "value": self.value}


class Histogram:
    """Bucketed distribution of observed values, with count/sum/min/max."""

    __slots__ = ("name", "bounds", "buckets", "count", "total", "min", "max")

    def __init__(self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(sorted(bounds))
        if not self.bounds:
            raise ValueError("histogram needs at least one bucket bound")
        #: One count per bound, plus the overflow bucket at the end.
        self.buckets: List[int] = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left gives "first bound >= value": values at a bound count
        # into that bound's bucket, values past the last bound overflow.
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None or value < self.min else self.min
        self.max = value if self.max is None or value > self.max else self.max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
        }


class MetricsRegistry:
    """Named instruments, created lazily and snapshotted together."""

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}

    def _get(self, name: str, cls, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = self._instruments[name] = cls(name, *args)
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get(name, Histogram, bounds)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def snapshot(self) -> Dict[str, dict]:
        """Every instrument's state as one ``{name: payload}`` dict."""
        return {
            name: self._instruments[name].snapshot()  # type: ignore[attr-defined]
            for name in self.names()
        }
