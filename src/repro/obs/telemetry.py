"""Sweep-level run telemetry: shard timings, worker utilization, cache stats.

:func:`~repro.experiments.runner.run_batch` measures each shard's
worker-side wall time and the parent-side timestamp at which its results
landed, and attaches the collection to the
:class:`~repro.experiments.results.BatchResult` as a
:class:`SweepTelemetry`.  Telemetry is *observational only*: it is
excluded from ``BatchResult.to_dict()`` (and therefore from the canonical
sweep JSON), so the byte-identical determinism contract across serial,
stacked, process-pool and cached execution is untouched.  The CLI writes
it to a separate file via ``repro-mesh sweep --telemetry-out``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["TELEMETRY_VERSION", "PoolIncident", "ShardRecord", "SweepTelemetry"]

#: Version of the ``telemetry`` payload layout; bump on shape changes.
#: v2 added the ``incidents`` list (pool crash/timeout recovery records).
TELEMETRY_VERSION = 2


@dataclass(frozen=True)
class ShardRecord:
    """Timing of one executed shard of sweep cells.

    ``seconds`` is worker-side wall time actually spent computing the
    shard; ``landed_seconds`` is the parent-side offset (from batch start)
    at which the shard's results arrived, which for pool execution orders
    shards by completion.
    """

    kind: str  #: "serial" | "stacked" | "pool" | "cached"
    cells: int
    seconds: float
    landed_seconds: float

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "cells": self.cells,
            "seconds": self.seconds,
            "landed_seconds": self.landed_seconds,
        }


@dataclass(frozen=True)
class PoolIncident:
    """One fault-tolerance intervention during batch execution.

    ``kind`` names what went wrong (``"pool-broken"`` — a worker process
    died and took the executor with it; ``"timeout"`` — no shard completed
    within the inactivity budget; ``"callback-error"`` — an
    ``on_cell_done`` progress hook raised); ``shards`` counts the work
    items affected (for ``callback-error``, the number of failed callback
    invocations); ``action`` is the recovery taken (``"retried"`` — pool
    rebuilt and shards resubmitted, ``"serial"`` — remaining shards
    degraded to in-process execution, ``"suppressed"`` — the callback's
    exception was swallowed and the sweep kept landing cells).
    """

    kind: str  #: "pool-broken" | "timeout" | "callback-error"
    shards: int
    action: str  #: "retried" | "serial" | "suppressed"

    def to_dict(self) -> dict:
        return {"kind": self.kind, "shards": self.shards, "action": self.action}


@dataclass(frozen=True)
class SweepTelemetry:
    """Execution telemetry for one ``run_batch`` invocation."""

    engine: str
    workers: int
    cells: int
    wall_seconds: float
    shards: Tuple[ShardRecord, ...] = ()
    cache: Optional[Dict[str, int]] = field(default=None)
    #: Pool fault-tolerance interventions (empty on an undisturbed run).
    incidents: Tuple[PoolIncident, ...] = ()

    @property
    def busy_seconds(self) -> float:
        """Total worker-side compute time across all shards."""
        return sum(shard.seconds for shard in self.shards)

    @property
    def worker_utilization(self) -> float:
        """Fraction of ``workers × wall_seconds`` spent computing shards.

        1.0 means every worker was busy for the whole batch; low values
        mean workers idled (stragglers, cache-dominated runs, tiny sweeps).
        """
        denominator = self.workers * self.wall_seconds
        if denominator <= 0.0:
            return 0.0
        return min(1.0, self.busy_seconds / denominator)

    def to_dict(self) -> dict:
        """The versioned ``telemetry`` payload (for ``--telemetry-out``)."""
        payload = {
            "version": TELEMETRY_VERSION,
            "engine": self.engine,
            "workers": self.workers,
            "cells": self.cells,
            "wall_seconds": self.wall_seconds,
            "busy_seconds": self.busy_seconds,
            "worker_utilization": self.worker_utilization,
            "shards": [shard.to_dict() for shard in self.shards],
            "incidents": [incident.to_dict() for incident in self.incidents],
        }
        if self.cache is not None:
            payload["cache"] = dict(self.cache)
        return {"telemetry": payload}

    @classmethod
    def from_dict(cls, data: dict) -> "SweepTelemetry":
        """Parse a payload written by :meth:`to_dict` (v1 has no incidents)."""
        payload = data.get("telemetry", data)
        version = payload.get("version")
        if version not in (1, TELEMETRY_VERSION):
            raise ValueError(
                f"unsupported telemetry version {version!r} "
                f"(expected {TELEMETRY_VERSION})"
            )
        shards: List[ShardRecord] = [
            ShardRecord(
                kind=s["kind"],
                cells=s["cells"],
                seconds=s["seconds"],
                landed_seconds=s["landed_seconds"],
            )
            for s in payload.get("shards", [])
        ]
        incidents = [
            PoolIncident(kind=i["kind"], shards=i["shards"], action=i["action"])
            for i in payload.get("incidents", [])
        ]
        return cls(
            engine=payload["engine"],
            workers=payload["workers"],
            cells=payload["cells"],
            wall_seconds=payload["wall_seconds"],
            shards=tuple(shards),
            cache=payload.get("cache"),
            incidents=tuple(incidents),
        )
