"""ASCII reports over observability artifacts.

``repro-mesh report FILE`` renders either artifact the toolchain writes:

* a **JSONL trace** (``repro-mesh simulate --trace-out``) — run header,
  fault events, per-step series as sparklines, convergence records, and
  the end-of-run summary with a totals cross-check (the per-step delta
  series must sum to the summary aggregates exactly);
* a **telemetry JSON** (``repro-mesh sweep --telemetry-out``) — the shard
  table, worker utilization and cache accounting of one sweep run.

:func:`sniff_kind` keeps the CLI honest about which it got.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.analysis.slo import compute_recovery_slo
from repro.obs.telemetry import SweepTelemetry
from repro.obs.trace import Trace, read_trace
from repro.viz.ascii import sparkline

__all__ = [
    "render_telemetry_report",
    "render_trace_report",
    "report_file",
    "sniff_kind",
]

#: Step-row series rendered as sparklines, in display order.
_TRACE_SERIES: Tuple[str, ...] = (
    "injected",
    "delivered",
    "in_flight",
    "reserved_links",
    "blocked_hops",
    "setup_retries",
    "fault_dropped",
)

#: (delta series in the trace, aggregate key in the summary) pairs whose
#: sums must match exactly — the recorder's cumulative-column contract.
_TOTALS_CHECKS: Tuple[Tuple[str, str], ...] = (
    ("finished", "messages"),
    ("blocked_hops", "blocked_hops"),
    ("setup_retries", "setup_retries"),
    ("link_steps", "mean_reserved_links"),  # summed vs mean x steps
    ("fault_dropped", "fault_dropped"),
)


def sniff_kind(path: str) -> str:
    """``"trace"`` (JSONL, header line) or ``"telemetry"`` (one JSON doc)."""
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.readline().strip()
    if not first:
        raise ValueError(f"{path}: empty file")
    try:
        record = json.loads(first)
    except json.JSONDecodeError:
        # A pretty-printed telemetry document opens with a bare "{" line;
        # a JSONL trace's first line is always a complete record.
        record = None
    if isinstance(record, dict) and record.get("kind") == "header":
        return "trace"
    if isinstance(record, dict) and "telemetry" in record:
        return "telemetry"
    with open(path, "r", encoding="utf-8") as handle:
        try:
            document = json.load(handle)
        except json.JSONDecodeError:
            document = None
    if isinstance(document, dict) and "telemetry" in document:
        return "telemetry"
    raise ValueError(f"{path}: neither a repro trace nor a telemetry file")


def _check_totals(trace: Trace) -> List[str]:
    """Cross-check delta-series sums against the summary aggregates."""
    lines: List[str] = []
    summary = trace.summary
    steps = int(summary.get("steps", len(trace.steps)))
    for series_name, summary_key in _TOTALS_CHECKS:
        if not trace.steps or series_name not in trace.steps[0]:
            continue
        total = sum(trace.series(series_name))
        expected = summary.get(summary_key)
        if expected is None:
            continue
        if summary_key == "mean_reserved_links":
            expected = expected * steps
        ok = abs(total - expected) < 1e-6
        lines.append(
            f"  sum({series_name:<14}) = {total:>10} "
            f"{'==' if ok else '!='} {summary_key} ({expected:g}) "
            f"{'ok' if ok else 'MISMATCH'}"
        )
    delivered = sum(trace.series("delivered")) if trace.steps else 0
    messages = summary.get("messages")
    rate = summary.get("delivery_rate")
    if messages is not None and rate is not None:
        expected_delivered = round(messages * rate)
        ok = delivered == expected_delivered
        lines.append(
            f"  sum({'delivered':<14}) = {delivered:>10} "
            f"{'==' if ok else '!='} messages x delivery_rate "
            f"({expected_delivered}) {'ok' if ok else 'MISMATCH'}"
        )
    return lines


def _event_marker_line(trace: Trace, width: int) -> Optional[str]:
    """Markers aligned under the sparklines: ``^`` fault, ``+`` recovery.

    Positions follow the sparkline's downsampling (step ``i`` of ``n``
    lands in glyph ``i * width // n`` once the series is wider than
    ``width``), so a marker sits under the glyph averaging its step.
    """
    n = len(trace.steps)
    if not n or not trace.events:
        return None
    first = trace.steps[0].get("step", 0)
    chars = min(n, width)
    row = [" "] * chars
    for event in trace.events:
        i = event.get("t", 0) - first
        if not 0 <= i < n:
            continue
        pos = i if n <= width else i * width // n
        mark = "^" if event.get("event") == "fault" else "+"
        if row[pos] != "^":  # faults win a shared glyph
            row[pos] = mark
    if not any(c != " " for c in row):
        return None
    return "".join(row)


def _slo_section(trace: Trace) -> List[str]:
    """Recovery SLOs recomputed from the trace's own per-step series."""
    faults = [e for e in trace.events if e.get("event") == "fault"]
    if not faults or not trace.steps or "delivered" not in trace.steps[0]:
        return []
    first = trace.steps[0].get("step", 0)
    delivered = [float(v) for v in trace.series("delivered")]
    dropped = (
        [float(v) for v in trace.series("fault_dropped")]
        if "fault_dropped" in trace.steps[0]
        else [0.0] * len(delivered)
    )
    slo = compute_recovery_slo(
        delivered,
        dropped,
        [(e.get("t", 0) - first, tuple(e.get("node", ()))) for e in faults],
    )
    lines = ["", f"recovery SLOs ({len(slo.events)} fault events)"]
    for event in slo.events:
        node = ",".join(str(c) for c in event.node)
        recover = (
            f"recovered in {event.time_to_recover} steps"
            if event.recovered
            else "never recovered"
        )
        lines.append(
            f"  t={event.time + first:>5}  ({node})  "
            f"dip {event.dip_depth:.0%} of baseline {event.baseline:.2f}  "
            f"{recover}  dropped {event.fault_dropped}"
        )
    worst_ttr = (
        f"{slo.time_to_recover}" if slo.time_to_recover >= 0 else "never"
    )
    lines.append(
        f"  worst: dip {slo.dip_depth:.0%}  time-to-recover {worst_ttr}  "
        f"dropped {slo.fault_dropped} circuits"
    )
    return lines


def render_trace_report(trace: Trace, *, width: int = 60) -> str:
    """The full ASCII report of one parsed trace."""
    header = trace.header
    shape = "x".join(str(s) for s in header.get("shape", []))
    lines = [
        f"trace {header.get('schema', '?')}",
        f"  mesh {shape}  policy {header.get('policy', '?')}  "
        f"lam {header.get('lam', '?')}  "
        f"contention {header.get('contention', '?')}  "
        f"steps {header.get('steps', len(trace.steps))}",
    ]

    if trace.events:
        lines.append("")
        lines.append(f"events ({len(trace.events)})")
        for event in trace.events:
            node = ",".join(str(c) for c in event.get("node", []))
            lines.append(f"  t={event.get('t'):>5}  {event.get('event'):<9} ({node})")

    if trace.steps:
        lines.append("")
        lines.append(f"per-step series ({len(trace.steps)} steps)")
        for name in _TRACE_SERIES:
            if name not in trace.steps[0]:
                continue
            series = trace.series(name)
            lines.append(
                f"  {name:<15} {sparkline(series, width=width)}  "
                f"min {min(series):g} max {max(series):g}"
            )
        markers = _event_marker_line(trace, width)
        if markers is not None:
            lines.append(f"  {'events':<15} {markers}  (^ fault, + recovery)")
        lines.extend(_slo_section(trace))

    if trace.convergence:
        lines.append("")
        lines.append(f"convergence ({len(trace.convergence)} fault changes)")
        for record in trace.convergence:
            node = ",".join(str(c) for c in record.get("node", []))
            stabilized = record.get("stabilized_step")
            lines.append(
                f"  {record.get('event'):<9} ({node})  "
                f"detected {record.get('detected_step')}  "
                f"stabilized {stabilized if stabilized is not None else 'never'}  "
                f"rounds a={record.get('labeling_rounds')} "
                f"b={record.get('identification_rounds')} "
                f"c={record.get('boundary_rounds')}"
            )

    if trace.summary:
        lines.append("")
        lines.append("summary")
        for key in sorted(trace.summary):
            lines.append(f"  {key:<24} {trace.summary[key]:g}")
        checks = _check_totals(trace)
        if checks:
            lines.append("")
            lines.append("totals check (series sums vs aggregates)")
            lines.extend(checks)

    return "\n".join(lines)


def render_telemetry_report(telemetry: SweepTelemetry) -> str:
    """The ASCII report of one sweep's execution telemetry."""
    lines = [
        "sweep telemetry",
        f"  engine {telemetry.engine}  workers {telemetry.workers}  "
        f"cells {telemetry.cells}  wall {telemetry.wall_seconds:.3f}s  "
        f"busy {telemetry.busy_seconds:.3f}s  "
        f"utilization {telemetry.worker_utilization:.0%}",
    ]
    if telemetry.shards:
        lines.append("")
        lines.append(
            f"  {'shard':<7} {'kind':<8} {'cells':>5} {'seconds':>9} {'landed':>9}"
        )
        for i, shard in enumerate(telemetry.shards):
            lines.append(
                f"  {i:<7} {shard.kind:<8} {shard.cells:>5} "
                f"{shard.seconds:>9.3f} {shard.landed_seconds:>9.3f}"
            )
        landings = [s.landed_seconds for s in telemetry.shards]
        if len(landings) > 1:
            lines.append(f"  landing order: {sparkline(landings, width=40)}")
    if telemetry.incidents:
        lines.append("")
        lines.append(f"  incidents ({len(telemetry.incidents)})")
        for incident in telemetry.incidents:
            lines.append(
                f"    {incident.kind:<12} {incident.shards} shard(s) -> "
                f"{incident.action}"
            )
    cache = telemetry.cache
    if cache is not None:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        rate = cache.get("hits", 0) / lookups if lookups else 0.0
        lines.append("")
        lines.append(
            f"  cache: {cache.get('hits', 0)} hits / {lookups} lookups "
            f"({rate:.0%}), {cache.get('writes', 0)} written, "
            f"{cache.get('invalid', 0)} invalid entries recomputed"
        )
    return "\n".join(lines)


def report_file(path: str, *, width: int = 60) -> str:
    """Render whichever observability artifact ``path`` holds."""
    kind = sniff_kind(path)
    if kind == "trace":
        return render_trace_report(read_trace(path), width=width)
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    return render_telemetry_report(SweepTelemetry.from_dict(payload))
