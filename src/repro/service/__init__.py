"""Experiment service mode: the async HTTP front door for sweeps.

``repro-mesh serve`` exposes :mod:`repro.experiments` over a versioned
JSON API so experiments can be submitted, observed and fetched remotely:

* :mod:`repro.service.http` — a minimal hand-rolled HTTP/1.1 layer on
  asyncio streams (no web framework; stdlib only);
* :mod:`repro.service.jobs` — the job subsystem: registry, priority
  queue, bounded in-flight execution with 429 backpressure, NDJSON
  streaming buffers, cooperative cancellation, drain/shutdown;
* :mod:`repro.service.server` — :class:`ExperimentService`, the routing
  and lifecycle glue (submit/status/stream/result/cancel/health
  endpoints, SIGTERM graceful drain).

The wire formats are exactly the library's versioned schemas: requests
carry a ``repro.spec/v1`` document (the same payload
``ExperimentSpec.to_dict`` emits and ``--spec FILE.json`` reads), and
``GET /v1/jobs/{id}/result`` returns the ``repro.result/v1`` document
byte-identical to what ``repro-mesh sweep --out`` writes for that spec.
"""

from repro.service.jobs import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    STATES,
    TERMINAL_STATES,
    Draining,
    InvalidTransition,
    Job,
    JobManager,
    QueueFull,
    UnknownJob,
)
from repro.service.server import ExperimentService, make_service

__all__ = [
    "CANCELLED",
    "DONE",
    "Draining",
    "ExperimentService",
    "FAILED",
    "InvalidTransition",
    "Job",
    "JobManager",
    "QUEUED",
    "QueueFull",
    "RUNNING",
    "STATES",
    "TERMINAL_STATES",
    "UnknownJob",
    "make_service",
]
