"""Minimal HTTP/1.1 over asyncio streams — the service's only wire layer.

Hand-rolled on purpose: the front door must not pull a web framework into
a numerics package, and the subset the API needs is small and fixed —
request line + headers + ``Content-Length`` bodies in; fixed-length JSON
or chunked NDJSON responses out.  Every response closes the connection
(``Connection: close``), trading keep-alive reuse for a parser with no
pipelining states; clients issue one request per connection.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Request bodies above this size are rejected with 413 — an experiment
#: spec is a few KB; anything megabytes-sized is not a spec.
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed request; carries the HTTP status to answer with."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The body parsed as JSON (400 on syntax errors or empty body)."""
        if not self.body:
            raise ProtocolError(400, "request body must be a JSON document")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # client connected and went away
        raise ProtocolError(400, "truncated request head")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line {lines[0]!r}")
    method, target, _version = parts

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    split = urlsplit(target)
    path = unquote(split.path)
    query = dict(parse_qsl(split.query))

    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(400, f"malformed Content-Length {length_text!r}")
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"request body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise ProtocolError(400, "request body shorter than Content-Length")
    elif headers.get("transfer-encoding"):
        # Nothing the API accepts needs a chunked *request*; refusing is
        # simpler and safer than a second body-framing implementation.
        raise ProtocolError(400, "chunked request bodies are not supported")

    return Request(method=method, path=path, query=query, headers=headers, body=body)


def render(
    status: int,
    body: bytes = b"",
    *,
    content_type: str = "application/json",
    extra_headers: Iterable[Tuple[str, str]] = (),
) -> bytes:
    """A complete fixed-length response, ready to write."""
    reason = _REASONS.get(status, "Unknown")
    head = [f"HTTP/1.1 {status} {reason}"]
    head.append(f"Content-Type: {content_type}")
    head.append(f"Content-Length: {len(body)}")
    for name, value in extra_headers:
        head.append(f"{name}: {value}")
    head.append("Connection: close")
    return ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body


def json_body(payload: object) -> bytes:
    """Canonical JSON bytes for a response body (sorted keys, newline)."""
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")


def error_response(
    status: int, message: str, *, extra_headers: Iterable[Tuple[str, str]] = ()
) -> bytes:
    return render(
        status, json_body({"error": message}), extra_headers=extra_headers
    )


class ChunkedWriter:
    """A chunked-transfer response: start once, write chunks, end once.

    The streaming endpoint's NDJSON lines ride this — each line is one
    chunk, flushed immediately, so clients see cell results the moment
    they land rather than when the job finishes.
    """

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self._started = False

    async def start(
        self, status: int = 200, *, content_type: str = "application/x-ndjson"
    ) -> None:
        reason = _REASONS.get(status, "Unknown")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        self._writer.write(head.encode("latin-1"))
        await self._writer.drain()
        self._started = True

    async def write(self, data: bytes) -> None:
        if not data:
            return
        self._writer.write(f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n")
        await self._writer.drain()

    async def end(self) -> None:
        if self._started:
            self._writer.write(b"0\r\n\r\n")
            await self._writer.drain()
