"""The service's job subsystem: registry, priority queue, bounded execution.

A :class:`Job` is one submitted experiment spec moving through the states
``queued → running → done`` (or ``failed`` / ``cancelled``).  The
:class:`JobManager` owns every job and the execution policy around them:

* **priority queue** — queued jobs dispatch highest ``priority`` first
  (ties FIFO by submission order), so a short interactive grid can jump a
  long batch;
* **bounded in-flight work** — at most ``max_running`` jobs execute at
  once on a thread pool, and at most ``max_queued`` may wait; a submit
  beyond that raises :class:`QueueFull`, which the HTTP layer answers
  with ``429 Retry-After`` (backpressure instead of an unbounded queue);
* **streaming** — each job records an NDJSON line per finished cell, in
  completion order, appended by the ``on_cell_done`` hook of
  :func:`~repro.experiments.runner.run_batch`; streamers replay the
  buffer and then follow live appends;
* **cancellation** — cooperative, at cell boundaries: the hook raises
  :class:`~repro.experiments.runner.BatchCancelled` when a cancel was
  requested, which aborts the batch without touching other jobs;
* **caching** — every job gets its own
  :class:`~repro.experiments.cache.ResultCache` instance rooted at the
  shared cache directory, so overlapping and repeated submissions share
  content-addressed entries (atomic per-cell writes make the sharing
  safe) while each job reports its own clean hit/miss accounting;
* **drain** — :meth:`JobManager.drain` stops admission, lets accepted
  jobs finish, and :meth:`JobManager.shutdown` tears down the thread pool
  plus the persistent process pool (wired to SIGTERM by the server).

Jobs run on *threads* because the heavy lifting already happens in
``run_batch`` — in-process numpy (the default ``workers=1``) or its
process pool — so the thread is mostly waiting; the GIL is not the
bottleneck.  With per-job ``workers > 1`` the manager serializes job
execution (one at a time), because the persistent process pool is shared
module state and must not be driven from two dispatching threads.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import json
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.experiments.cache import ResultCache
from repro.experiments.results import RESULT_SCHEMA
from repro.experiments.runner import BatchCancelled, run_batch, shutdown_pool
from repro.experiments.spec import SPEC_SCHEMA, ExperimentSpec

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})


class QueueFull(Exception):
    """Admission refused: the queue is at capacity (HTTP 429)."""

    def __init__(self, message: str, retry_after: int) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class Draining(Exception):
    """Admission refused: the service is shutting down (HTTP 503)."""


class UnknownJob(KeyError):
    """No job with that id (HTTP 404)."""


class InvalidTransition(Exception):
    """The requested state change is not legal from the current state."""


class Job:
    """One submitted spec and everything observed about its execution.

    Mutable state is guarded by the owning manager's lock; the streamed
    ``lines`` list is append-only, so streamers may read a snapshot of
    new entries and never see a line twice or miss one.
    """

    def __init__(
        self, job_id: str, spec: ExperimentSpec, *, priority: int, seq: int
    ) -> None:
        self.id = job_id
        self.spec = spec
        self.priority = priority
        self.seq = seq
        self.state = QUEUED
        self.error: Optional[str] = None
        self.created = time.time()
        self.started: Optional[float] = None
        self.finished: Optional[float] = None
        self.cancel_requested = False
        self.cells_total = spec.cell_count
        self.cells_done = 0
        #: NDJSON stream lines (bytes, newline-terminated), completion order.
        self.lines: List[bytes] = []
        #: The canonical ``repro.result/v1`` document — byte-identical to
        #: what ``repro-mesh sweep --out`` writes for the same spec.
        self.result_json: Optional[bytes] = None
        self.cache_stats: Optional[dict] = None
        self.telemetry: Optional[dict] = None
        #: Set in the event loop when lines/state change (streaming wakeup).
        self.updated: Optional[asyncio.Event] = None
        #: Threading-side completion signal (tests and drain wait on it).
        self.done = threading.Event()

    def describe(self) -> dict:
        """The job's status payload (everything but the stream/result)."""
        payload = {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "spec_name": self.spec.name,
            "mode": self.spec.mode,
            "cells": self.cells_total,
            "cells_done": self.cells_done,
            "cancel_requested": self.cancel_requested,
            "created": self.created,
            "started": self.started,
            "finished": self.finished,
        }
        if self.error is not None:
            payload["error"] = self.error
        if self.cache_stats is not None:
            payload["cache"] = self.cache_stats
        return payload


def _encode_line(payload: dict) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


class JobManager:
    """Registry + scheduler for every job the service has accepted."""

    def __init__(
        self,
        *,
        max_running: int = 2,
        max_queued: int = 16,
        engine: str = "auto",
        workers: int = 1,
        cache_dir: Optional[str] = None,
        shard_timeout: Optional[float] = None,
    ) -> None:
        if max_running < 1:
            raise ValueError("max_running must be >= 1")
        if max_queued < 0:
            raise ValueError("max_queued must be >= 0")
        # The persistent process pool is shared module state; only one
        # dispatching thread may drive it at a time.
        if workers > 1:
            max_running = 1
        self.max_running = max_running
        self.max_queued = max_queued
        self.engine = engine
        self.workers = workers
        self.cache_dir = cache_dir
        self.shard_timeout = shard_timeout

        self._lock = threading.RLock()
        self._jobs: Dict[str, Job] = {}
        self._heap: List[Tuple[int, int, Job]] = []
        self._seq = itertools.count(1)
        self._running = 0
        self._draining = False
        self._idle = threading.Event()
        self._idle.set()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor = ThreadPoolExecutor(
            max_workers=max_running, thread_name_prefix="repro-job"
        )

    # ------------------------------------------------------------------ #
    # event-loop plumbing
    # ------------------------------------------------------------------ #
    def attach_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Tell the manager which loop streams jobs (enables push wakeups).

        Without an attached loop (plain-thread usage in tests) streamers
        fall back to short polling sleeps.
        """
        with self._lock:
            self._loop = loop
            for job in self._jobs.values():
                if job.updated is None:
                    job.updated = asyncio.Event()

    def _notify(self, job: Job) -> None:
        loop, event = self._loop, job.updated
        if loop is not None and event is not None:
            try:
                loop.call_soon_threadsafe(event.set)
            except RuntimeError:
                pass  # loop already closed during shutdown

    # ------------------------------------------------------------------ #
    # admission
    # ------------------------------------------------------------------ #
    def submit(self, payload: object) -> Job:
        """Validate and enqueue one submission payload.

        ``payload`` is either a bare ``repro.spec/v1`` document or an
        envelope ``{"spec": {...}, "priority": N}``.  Raises
        :class:`ValueError` on malformed payloads (HTTP 400),
        :class:`QueueFull` past capacity (HTTP 429) and :class:`Draining`
        during shutdown (HTTP 503).
        """
        priority = 0
        spec_payload = payload
        if isinstance(payload, dict) and "spec" in payload:
            unknown = sorted(set(payload) - {"spec", "priority"})
            if unknown:
                raise ValueError(
                    "unknown submit field(s) "
                    + ", ".join(repr(k) for k in unknown)
                    + "; valid fields: 'priority', 'spec'"
                )
            spec_payload = payload["spec"]
            raw = payload.get("priority", 0)
            if isinstance(raw, bool) or not isinstance(raw, int):
                raise ValueError(
                    f"submit field 'priority': expected an integer, got {raw!r}"
                )
            priority = raw
        spec = ExperimentSpec.from_dict(spec_payload)

        with self._lock:
            if self._draining:
                raise Draining("service is draining; not accepting new jobs")
            queued = sum(1 for j in self._jobs.values() if j.state == QUEUED)
            if queued >= self.max_queued:
                raise QueueFull(
                    f"queue full ({queued} queued, limit {self.max_queued}); "
                    "retry later",
                    retry_after=max(1, queued),
                )
            seq = next(self._seq)
            job = Job(f"j-{seq:06d}", spec, priority=priority, seq=seq)
            if self._loop is not None:
                job.updated = asyncio.Event()
            self._jobs[job.id] = job
            # heapq is a min-heap: negate priority so higher runs first,
            # seq breaks ties first-come-first-served.
            heapq.heappush(self._heap, (-priority, seq, job))
            self._idle.clear()
            self._pump_locked()
        return job

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #
    def _pump_locked(self) -> None:
        """Dispatch queued jobs while capacity allows (lock held)."""
        while self._running < self.max_running and self._heap:
            _, _, job = heapq.heappop(self._heap)
            if job.state != QUEUED:
                continue  # cancelled while queued; lazily dropped here
            job.state = RUNNING
            self._running += 1
            self._executor.submit(self._execute, job)

    def _execute(self, job: Job) -> None:
        job.started = time.time()
        self._notify(job)
        cache = ResultCache(self.cache_dir) if self.cache_dir is not None else None

        def on_cell(result) -> None:
            if job.cancel_requested:
                raise BatchCancelled(job.id)
            line = _encode_line(
                {"event": "cell", "job": job.id, "cell": result.to_dict()}
            )
            with self._lock:
                job.cells_done += 1
                job.lines.append(line)
            self._notify(job)

        state, error = DONE, None
        try:
            batch = run_batch(
                job.spec,
                engine=self.engine,
                workers=self.workers,
                cache=cache,
                on_cell_done=on_cell,
                shard_timeout=self.shard_timeout,
            )
        except BatchCancelled:
            state = CANCELLED
        except Exception as exc:  # surfaced in the job, never the service
            state, error = FAILED, f"{type(exc).__name__}: {exc}"
        else:
            job.result_json = (batch.to_json() + "\n").encode("utf-8")
            job.telemetry = batch.telemetry_dict()

        end = {
            "event": "end",
            "job": job.id,
            "state": state,
            "cells": job.cells_total,
            "cells_done": job.cells_done,
        }
        if error is not None:
            end["error"] = error
        if cache is not None:
            job.cache_stats = cache.stats.to_dict()
            end["cache"] = job.cache_stats
        with self._lock:
            job.state = state
            job.error = error
            job.finished = time.time()
            job.lines.append(_encode_line(end))
            job.done.set()
            self._running -= 1
            self._pump_locked()
            if self._running == 0 and not any(
                j.state == QUEUED for j in self._jobs.values()
            ):
                self._idle.set()
        self._notify(job)

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def get(self, job_id: str) -> Job:
        with self._lock:
            try:
                return self._jobs[job_id]
            except KeyError:
                raise UnknownJob(job_id)

    def jobs(self) -> List[Job]:
        with self._lock:
            return list(self._jobs.values())

    def counts(self) -> Dict[str, int]:
        with self._lock:
            counts = {state: 0 for state in STATES}
            for job in self._jobs.values():
                counts[job.state] += 1
        return counts

    @property
    def draining(self) -> bool:
        return self._draining

    def describe(self) -> dict:
        """The health payload: capacity, state counts, schema versions."""
        return {
            "status": "draining" if self._draining else "ok",
            "schemas": {"spec": SPEC_SCHEMA, "result": RESULT_SCHEMA},
            "jobs": self.counts(),
            "capacity": {
                "max_running": self.max_running,
                "max_queued": self.max_queued,
                "engine": self.engine,
                "workers": self.workers,
                "cache_dir": self.cache_dir,
            },
        }

    # ------------------------------------------------------------------ #
    # cancellation
    # ------------------------------------------------------------------ #
    def cancel(self, job_id: str) -> Job:
        """Cancel a job: immediate when queued, cooperative when running.

        A running job stops at its next cell boundary (the stream's
        ``end`` event then reports ``cancelled``).  Cancelling a job that
        already reached a terminal state raises :class:`InvalidTransition`.
        """
        with self._lock:
            job = self.get(job_id)
            if job.state == QUEUED:
                job.state = CANCELLED
                job.finished = time.time()
                job.cancel_requested = True
                job.lines.append(
                    _encode_line(
                        {
                            "event": "end",
                            "job": job.id,
                            "state": CANCELLED,
                            "cells": job.cells_total,
                            "cells_done": 0,
                        }
                    )
                )
                job.done.set()
                if self._running == 0 and not any(
                    j.state == QUEUED for j in self._jobs.values()
                ):
                    self._idle.set()
            elif job.state == RUNNING:
                job.cancel_requested = True
            else:
                raise InvalidTransition(
                    f"job {job.id} is already {job.state}; nothing to cancel"
                )
        self._notify(job)
        return job

    # ------------------------------------------------------------------ #
    # streaming
    # ------------------------------------------------------------------ #
    async def stream(self, job: Job):
        """Async-iterate the job's NDJSON lines: replay, then follow live.

        Terminates after the ``end`` event line (every terminal state
        writes one).  Clear-before-snapshot ordering on the wakeup event
        guarantees no append is missed.
        """
        index = 0
        while True:
            event = job.updated
            if event is not None:
                event.clear()
            with self._lock:
                fresh = job.lines[index:]
                index = len(job.lines)
                finished = job.state in TERMINAL_STATES
            for line in fresh:
                yield line
            if finished:
                with self._lock:
                    drained = index == len(job.lines)
                if drained:
                    return
                continue
            if event is not None:
                await event.wait()
            else:
                await asyncio.sleep(0.05)

    # ------------------------------------------------------------------ #
    # drain / shutdown
    # ------------------------------------------------------------------ #
    def drain(self, timeout: Optional[float] = None) -> bool:
        """Stop admitting jobs and wait until accepted work is finished.

        Returns ``True`` when the queue fully drained within ``timeout``
        (``None`` = wait forever).  Blocking — call off the event loop.
        """
        with self._lock:
            self._draining = True
            if self._running == 0 and not any(
                j.state == QUEUED for j in self._jobs.values()
            ):
                self._idle.set()
        return self._idle.wait(timeout)

    def shutdown(self) -> None:
        """Tear down the job threads and the persistent process pool."""
        self._executor.shutdown(wait=True)
        shutdown_pool()
