"""The asyncio HTTP front door: routing, streaming, graceful shutdown.

:class:`ExperimentService` binds a :class:`~repro.service.jobs.JobManager`
to a TCP listener and speaks the versioned JSON API:

====== ============================== ==========================================
Method Path                           Meaning
====== ============================== ==========================================
GET    ``/v1/health``                 liveness + capacity + schema versions
POST   ``/v1/jobs``                   submit a ``repro.spec/v1`` payload (202),
                                      or ``{"spec": ..., "priority": N}``
GET    ``/v1/jobs``                   list every job's status
GET    ``/v1/jobs/{id}``              one job's status
GET    ``/v1/jobs/{id}/stream``       NDJSON: cell results in completion order
                                      (chunked; replays finished jobs)
GET    ``/v1/jobs/{id}/result``       the canonical ``repro.result/v1`` JSON —
                                      byte-identical to ``sweep --out``
POST   ``/v1/jobs/{id}/cancel``       cancel (immediate if queued, cooperative
                                      at the next cell boundary if running)
DELETE ``/v1/jobs/{id}``              alias for cancel
====== ============================== ==========================================

Backpressure: a submit past ``max_queued`` answers ``429`` with a
``Retry-After`` header.  On SIGTERM/SIGINT the listener closes, accepted
jobs drain, and the persistent process pool is shut down before exit.
"""

from __future__ import annotations

import asyncio
import json
import signal
import sys
import threading
from typing import List, Optional, Tuple

from repro.service.http import (
    ChunkedWriter,
    ProtocolError,
    Request,
    error_response,
    json_body,
    read_request,
    render,
)
from repro.service.jobs import (
    DONE,
    Draining,
    InvalidTransition,
    JobManager,
    QueueFull,
    TERMINAL_STATES,
    UnknownJob,
)


class ExperimentService:
    """One listener + one job manager = the experiment service."""

    def __init__(
        self, manager: JobManager, *, host: str = "127.0.0.1", port: int = 8642
    ) -> None:
        self.manager = manager
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._thread: Optional[threading.Thread] = None
        self._thread_loop: Optional[asyncio.AbstractEventLoop] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listener and attach the running loop to the manager."""
        self.manager.attach_loop(asyncio.get_running_loop())
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        if self.port == 0:  # report the kernel-assigned port
            self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self, *, handle_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain and shut down cleanly."""
        await self.start()
        print(
            f"repro-mesh service listening on http://{self.host}:{self.port} "
            f"(schemas: repro.spec/v1, repro.result/v1)",
            file=sys.stderr,
        )
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        if handle_signals:
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, stop.set)
        try:
            await stop.wait()
        finally:
            print("draining: waiting for accepted jobs...", file=sys.stderr)
            await self.aclose()
            print("service stopped", file=sys.stderr)

    async def aclose(self) -> None:
        """Close the listener, drain accepted jobs, tear the pools down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.manager.drain)
        await loop.run_in_executor(None, self.manager.shutdown)

    # ------------------------------------------------------------------ #
    # background-thread harness (tests, embedding)
    # ------------------------------------------------------------------ #
    def start_background(self) -> Tuple[str, int]:
        """Run the service on a private event loop in a daemon thread.

        Returns the bound ``(host, port)``; use :meth:`stop_background`
        to shut it down.  This is how the test-suite drives real HTTP
        requests against the service without blocking the test process.
        """
        if self._thread is not None:
            raise RuntimeError("service already started")
        ready = threading.Event()
        failure: List[BaseException] = []

        def runner() -> None:
            loop = asyncio.new_event_loop()
            self._thread_loop = loop
            asyncio.set_event_loop(loop)
            try:
                loop.run_until_complete(self.start())
            except BaseException as exc:  # surface bind errors to the caller
                failure.append(exc)
                ready.set()
                return
            ready.set()
            try:
                loop.run_forever()
            finally:
                loop.run_until_complete(loop.shutdown_asyncgens())
                loop.close()

        self._thread = threading.Thread(
            target=runner, name="repro-service", daemon=True
        )
        self._thread.start()
        ready.wait()
        if failure:
            self._thread.join()
            self._thread = None
            raise failure[0]
        return self.host, self.port

    def stop_background(self, *, drain: bool = True) -> None:
        """Stop a :meth:`start_background` service (optionally draining)."""
        loop, thread = self._thread_loop, self._thread
        if loop is None or thread is None:
            return
        if drain:
            self.manager.drain()
        server = self._server

        def closer() -> None:
            if server is not None:
                server.close()
            loop.stop()

        loop.call_soon_threadsafe(closer)
        thread.join()
        self._server = None
        self._thread = None
        self._thread_loop = None
        self.manager.shutdown()

    # ------------------------------------------------------------------ #
    # connection handling
    # ------------------------------------------------------------------ #
    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, exc.message))
                await writer.drain()
                return
            if request is None:
                return
            try:
                await self._route(request, writer)
            except ProtocolError as exc:
                writer.write(error_response(exc.status, exc.message))
                await writer.drain()
            except Exception as exc:  # a handler bug must not kill the loop
                writer.write(
                    error_response(500, f"internal error: {type(exc).__name__}")
                )
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # client went away mid-response; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _route(self, request: Request, writer: asyncio.StreamWriter) -> None:
        parts = [p for p in request.path.split("/") if p]
        method = request.method.upper()

        if parts == ["v1", "health"]:
            if method != "GET":
                raise ProtocolError(405, "health is GET-only")
            writer.write(render(200, json_body(self.manager.describe())))
            await writer.drain()
            return

        if parts == ["v1", "jobs"]:
            if method == "POST":
                await self._submit(request, writer)
                return
            if method == "GET":
                jobs = [job.describe() for job in self.manager.jobs()]
                writer.write(render(200, json_body({"jobs": jobs})))
                await writer.drain()
                return
            raise ProtocolError(405, "jobs collection supports GET and POST")

        if len(parts) in (3, 4) and parts[:2] == ["v1", "jobs"]:
            job_id = parts[2]
            try:
                job = self.manager.get(job_id)
            except UnknownJob:
                raise ProtocolError(404, f"no job {job_id!r}")
            action = parts[3] if len(parts) == 4 else None

            if action is None and method == "GET":
                writer.write(render(200, json_body({"job": job.describe()})))
                await writer.drain()
                return
            if (action is None and method == "DELETE") or (
                action == "cancel" and method == "POST"
            ):
                try:
                    job = self.manager.cancel(job_id)
                except InvalidTransition as exc:
                    raise ProtocolError(409, str(exc))
                status = 200 if job.state in TERMINAL_STATES else 202
                writer.write(render(status, json_body({"job": job.describe()})))
                await writer.drain()
                return
            if action == "result" and method == "GET":
                await self._result(job, writer)
                return
            if action == "stream" and method == "GET":
                await self._stream(job, writer)
                return
            raise ProtocolError(
                405 if action in (None, "cancel", "result", "stream") else 404,
                f"unsupported {method} on {request.path!r}",
            )

        raise ProtocolError(404, f"no route {request.path!r}")

    # ------------------------------------------------------------------ #
    # endpoint bodies
    # ------------------------------------------------------------------ #
    async def _submit(self, request: Request, writer: asyncio.StreamWriter) -> None:
        payload = request.json()
        try:
            # Parsing/validation is quick; run it on the loop thread.
            job = self.manager.submit(payload)
        except QueueFull as exc:
            writer.write(
                error_response(
                    429, str(exc), extra_headers=[("Retry-After", str(exc.retry_after))]
                )
            )
            await writer.drain()
            return
        except Draining as exc:
            writer.write(
                error_response(503, str(exc), extra_headers=[("Retry-After", "5")])
            )
            await writer.drain()
            return
        except ValueError as exc:
            raise ProtocolError(400, str(exc))
        writer.write(
            render(
                202,
                json_body({"job": job.describe()}),
                extra_headers=[("Location", f"/v1/jobs/{job.id}")],
            )
        )
        await writer.drain()

    async def _result(self, job, writer: asyncio.StreamWriter) -> None:
        if job.state == DONE and job.result_json is not None:
            # The stored bytes ARE the canonical repro.result/v1 document;
            # no re-serialization that could perturb them.
            writer.write(
                render(200, job.result_json, content_type="application/json")
            )
        elif job.state in TERMINAL_STATES:
            writer.write(
                error_response(
                    409, f"job {job.id} finished {job.state}: {job.error or 'no result'}"
                )
            )
        else:
            writer.write(
                error_response(
                    409,
                    f"job {job.id} is {job.state}; stream it or retry once done",
                    extra_headers=[("Retry-After", "1")],
                )
            )
        await writer.drain()

    async def _stream(self, job, writer: asyncio.StreamWriter) -> None:
        chunked = ChunkedWriter(writer)
        await chunked.start(200)
        header = {
            "event": "job",
            "job": job.describe(),
            "schema": {"spec": "repro.spec/v1", "result": "repro.result/v1"},
        }
        await chunked.write(
            (json.dumps(header, sort_keys=True) + "\n").encode("utf-8")
        )
        async for line in self.manager.stream(job):
            await chunked.write(line)
        await chunked.end()


def make_service(
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    max_running: int = 2,
    max_queued: int = 16,
    engine: str = "auto",
    workers: int = 1,
    cache_dir: Optional[str] = None,
    shard_timeout: Optional[float] = None,
) -> ExperimentService:
    """Convenience constructor wiring a manager into a service."""
    manager = JobManager(
        max_running=max_running,
        max_queued=max_queued,
        engine=engine,
        workers=workers,
        cache_dir=cache_dir,
        shard_timeout=shard_timeout,
    )
    return ExperimentService(manager, host=host, port=port)


__all__ = ["ExperimentService", "make_service"]
