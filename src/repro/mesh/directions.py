"""Direction algebra for k-ary n-dimensional meshes.

A node of an n-D mesh has at most ``2n`` neighbors, one per *direction*.
A direction is a pair ``(dim, sign)`` with ``0 <= dim < n`` and
``sign in {-1, +1}``.  The paper numbers the 2n *adjacent surfaces* of a
faulty block as ``S0 .. S_{2n-1}``; in 3-D, ``S0/S1/S2`` are the west/south/
back surfaces (negative X/Y/Z sides) and ``S3/S4/S5`` the east/north/front
surfaces (positive sides), with ``S_i`` opposite to ``S_{(i+n) mod 2n}``
(the paper's ``(i+3) mod 6`` for n=3).  The same convention is used here for
every n: surface index ``i < n`` is the negative side of dimension ``i``,
surface index ``i >= n`` is the positive side of dimension ``i - n``.
"""

from __future__ import annotations

from typing import Iterator, NamedTuple, Sequence, Tuple

Coord = Tuple[int, ...]


class Direction(NamedTuple):
    """A single mesh direction: move by ``sign`` along dimension ``dim``."""

    dim: int
    sign: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{'+' if self.sign > 0 else '-'}d{self.dim}"

    @property
    def offset(self) -> int:
        """Alias for :attr:`sign`; the per-hop coordinate delta."""
        return self.sign

    def apply(self, coord: Sequence[int]) -> Coord:
        """Return the coordinate one hop away from ``coord`` in this direction."""
        moved = list(coord)
        moved[self.dim] += self.sign
        return tuple(moved)

    def reversed(self) -> "Direction":
        """The opposite direction (same dimension, negated sign)."""
        return Direction(self.dim, -self.sign)


def all_directions(n_dims: int) -> Tuple[Direction, ...]:
    """All ``2n`` directions of an n-D mesh, in surface-index order.

    The returned tuple is indexed consistently with the paper's surface
    numbering: position ``i`` corresponds to surface ``S_i``
    (``i < n`` → negative side of dimension ``i``; ``i >= n`` → positive side
    of dimension ``i - n``).
    """
    if n_dims < 1:
        raise ValueError(f"n_dims must be >= 1, got {n_dims}")
    negatives = tuple(Direction(dim, -1) for dim in range(n_dims))
    positives = tuple(Direction(dim, +1) for dim in range(n_dims))
    return negatives + positives


def opposite(direction: Direction) -> Direction:
    """Opposite of ``direction`` (same dimension, negated sign)."""
    return direction.reversed()


def surface_index(direction: Direction, n_dims: int) -> int:
    """Map a direction to the paper's surface index ``S_i``.

    The surface on the *negative* side of dimension ``dim`` (i.e. the surface
    a message moving in direction ``(dim, -1)`` is heading towards) has index
    ``dim``; the surface on the positive side has index ``dim + n``.
    """
    if not 0 <= direction.dim < n_dims:
        raise ValueError(f"direction {direction} out of range for {n_dims}-D mesh")
    if direction.sign not in (-1, +1):
        raise ValueError(f"direction sign must be ±1, got {direction.sign}")
    return direction.dim if direction.sign < 0 else direction.dim + n_dims


def direction_from_surface(index: int, n_dims: int) -> Direction:
    """Inverse of :func:`surface_index`.

    Surface ``S_i`` lies one unit away from the block in the returned
    direction; equivalently, the returned direction points from the block
    centre towards surface ``S_i``.
    """
    if not 0 <= index < 2 * n_dims:
        raise ValueError(f"surface index {index} out of range for {n_dims}-D mesh")
    if index < n_dims:
        return Direction(index, -1)
    return Direction(index - n_dims, +1)


def opposite_surface(index: int, n_dims: int) -> int:
    """Index of the surface opposite ``S_index``: ``(index + n) mod 2n``."""
    if not 0 <= index < 2 * n_dims:
        raise ValueError(f"surface index {index} out of range for {n_dims}-D mesh")
    return (index + n_dims) % (2 * n_dims)


def direction_between(u: Sequence[int], v: Sequence[int]) -> Direction:
    """The direction of the single hop from ``u`` to its neighbor ``v``.

    Raises :class:`ValueError` if ``u`` and ``v`` are not mesh neighbors
    (they must differ by exactly one in exactly one dimension).
    """
    if len(u) != len(v):
        raise ValueError(f"coordinate ranks differ: {len(u)} vs {len(v)}")
    found: Direction | None = None
    for dim, (a, b) in enumerate(zip(u, v)):
        if a == b:
            continue
        if abs(a - b) != 1 or found is not None:
            raise ValueError(f"{tuple(u)} and {tuple(v)} are not mesh neighbors")
        found = Direction(dim, +1 if b > a else -1)
    if found is None:
        raise ValueError(f"{tuple(u)} and {tuple(v)} are the same node")
    return found


def directions_along_dims(dims: Sequence[int]) -> Iterator[Direction]:
    """Both directions for each dimension in ``dims`` (helper for sweeps)."""
    for dim in dims:
        yield Direction(dim, -1)
        yield Direction(dim, +1)
