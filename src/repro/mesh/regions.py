"""Inclusive hyper-rectangles ("regions") in n-D meshes.

Faulty blocks, dangerous prisms and boundary slabs are all axis-aligned
hyper-rectangles; :class:`Region` is the common geometric primitive.  A
region stores inclusive lower and upper corner coordinates ``lo`` / ``hi``
(``lo[i] <= hi[i]`` for every dimension).

The paper writes a 3-D block as ``[xmin+1 : xmax-1, ymin+1 : ymax-1,
zmin+1 : zmax-1]`` where the eight *corners* (enabled nodes diagonally
adjacent to the block) sit at the combinations of ``(xmin, xmax) x
(ymin, ymax) x (zmin, zmax)``.  In this module the region always denotes the
block extent itself (the faulty/disabled nodes); corner nodes are obtained
from :meth:`Region.expand` / :meth:`Region.corner_points`.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Iterator, Sequence, Tuple

Coord = Tuple[int, ...]


@dataclass(frozen=True, order=True)
class Region:
    """An axis-aligned inclusive hyper-rectangle ``[lo, hi]``.

    Regions order lexicographically by ``(lo, hi)``, which gives experiments
    a deterministic way to sort block lists.
    """

    lo: Coord
    hi: Coord

    def __post_init__(self) -> None:
        if len(self.lo) != len(self.hi):
            raise ValueError(
                f"corner ranks differ: {len(self.lo)} vs {len(self.hi)}"
            )
        if any(a > b for a, b in zip(self.lo, self.hi)):
            raise ValueError(f"empty region: lo={self.lo} hi={self.hi}")
        object.__setattr__(self, "lo", tuple(self.lo))
        object.__setattr__(self, "hi", tuple(self.hi))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(cls, points: Iterable[Sequence[int]]) -> "Region":
        """Smallest region containing every coordinate in ``points``."""
        pts = [tuple(p) for p in points]
        if not pts:
            raise ValueError("cannot build a region from zero points")
        rank = len(pts[0])
        if any(len(p) != rank for p in pts):
            raise ValueError("points have inconsistent ranks")
        lo = tuple(min(p[i] for p in pts) for i in range(rank))
        hi = tuple(max(p[i] for p in pts) for i in range(rank))
        return cls(lo, hi)

    @classmethod
    def single(cls, point: Sequence[int]) -> "Region":
        """Degenerate region containing exactly one node."""
        pt = tuple(point)
        return cls(pt, pt)

    # ------------------------------------------------------------------ #
    # basic geometry
    # ------------------------------------------------------------------ #
    @property
    def n_dims(self) -> int:
        """Dimensionality of the region."""
        return len(self.lo)

    @property
    def shape(self) -> Tuple[int, ...]:
        """Per-dimension extent (number of nodes along each dimension)."""
        return tuple(b - a + 1 for a, b in zip(self.lo, self.hi))

    @property
    def volume(self) -> int:
        """Number of lattice nodes contained in the region."""
        v = 1
        for s in self.shape:
            v *= s
        return v

    @property
    def edge_lengths(self) -> Tuple[int, ...]:
        """Per-dimension edge length in hops (``shape - 1``)."""
        return tuple(s - 1 for s in self.shape)

    @property
    def max_edge(self) -> int:
        """Longest edge in hops — the paper's ``e_max`` for a single block."""
        return max(self.edge_lengths)

    def span(self, dim: int) -> Tuple[int, int]:
        """Inclusive ``(lo, hi)`` interval of the region along ``dim``."""
        return (self.lo[dim], self.hi[dim])

    def contains(self, point: Sequence[int]) -> bool:
        """True iff ``point`` lies inside the region (inclusive)."""
        if len(point) != self.n_dims:
            return False
        return all(a <= p <= b for p, a, b in zip(point, self.lo, self.hi))

    def contains_region(self, other: "Region") -> bool:
        """True iff ``other`` is entirely inside this region."""
        return self.contains(other.lo) and self.contains(other.hi)

    def intersects(self, other: "Region") -> bool:
        """True iff the two regions share at least one node."""
        if other.n_dims != self.n_dims:
            raise ValueError("region ranks differ")
        return all(
            a1 <= b2 and a2 <= b1
            for a1, b1, a2, b2 in zip(self.lo, self.hi, other.lo, other.hi)
        )

    def intersection(self, other: "Region") -> "Region | None":
        """The overlapping region, or ``None`` when disjoint."""
        if not self.intersects(other):
            return None
        lo = tuple(max(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(min(a, b) for a, b in zip(self.hi, other.hi))
        return Region(lo, hi)

    def union_bound(self, other: "Region") -> "Region":
        """Smallest region containing both operands (bounding box union)."""
        if other.n_dims != self.n_dims:
            raise ValueError("region ranks differ")
        lo = tuple(min(a, b) for a, b in zip(self.lo, other.lo))
        hi = tuple(max(a, b) for a, b in zip(self.hi, other.hi))
        return Region(lo, hi)

    def distance_to(self, point: Sequence[int]) -> int:
        """Manhattan distance from ``point`` to the nearest node of the region."""
        if len(point) != self.n_dims:
            raise ValueError("coordinate rank differs from region rank")
        return sum(
            max(a - p, 0, p - b) for p, a, b in zip(point, self.lo, self.hi)
        )

    # ------------------------------------------------------------------ #
    # derived regions
    # ------------------------------------------------------------------ #
    def expand(self, margin: int = 1) -> "Region":
        """Region grown by ``margin`` hops in every direction."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        lo = tuple(a - margin for a in self.lo)
        hi = tuple(b + margin for b in self.hi)
        return Region(lo, hi)

    def shrink(self, margin: int = 1) -> "Region | None":
        """Region shrunk by ``margin`` hops, or ``None`` if it vanishes."""
        if margin < 0:
            raise ValueError("margin must be non-negative")
        lo = tuple(a + margin for a in self.lo)
        hi = tuple(b - margin for b in self.hi)
        if any(a > b for a, b in zip(lo, hi)):
            return None
        return Region(lo, hi)

    def clip(self, lo: Sequence[int], hi: Sequence[int]) -> "Region | None":
        """Intersection with the inclusive box ``[lo, hi]`` (e.g. mesh bounds)."""
        return self.intersection(Region(tuple(lo), tuple(hi)))

    def face(self, dim: int, side: int) -> "Region":
        """The (n-1)-dimensional face of the region on ``side`` of ``dim``.

        ``side`` is ``-1`` for the low face and ``+1`` for the high face.  The
        returned region is degenerate along ``dim`` (``lo[dim] == hi[dim]``).
        """
        if side not in (-1, +1):
            raise ValueError("side must be ±1")
        coord = self.lo[dim] if side < 0 else self.hi[dim]
        lo = list(self.lo)
        hi = list(self.hi)
        lo[dim] = hi[dim] = coord
        return Region(tuple(lo), tuple(hi))

    def adjacent_surface(self, dim: int, side: int) -> "Region":
        """The paper's adjacent surface one unit away from the block.

        For a block extent this is surface ``S_dim`` (``side == -1``) or
        ``S_{dim+n}`` (``side == +1``) of Definition 3: the slab of nodes one
        hop outside the block along ``dim``, spanning the block's extent in
        every other dimension.
        """
        if side not in (-1, +1):
            raise ValueError("side must be ±1")
        coord = self.lo[dim] - 1 if side < 0 else self.hi[dim] + 1
        lo = list(self.lo)
        hi = list(self.hi)
        lo[dim] = hi[dim] = coord
        return Region(tuple(lo), tuple(hi))

    def corner_points(self) -> Tuple[Coord, ...]:
        """The ``2^n`` corner coordinates of the region itself."""
        return tuple(product(*[(a, b) for a, b in zip(self.lo, self.hi)]))

    def block_corner_points(self) -> Tuple[Coord, ...]:
        """The ``2^n`` *block corners* of the paper (one hop outside).

        These are the enabled nodes diagonally adjacent to the block — the
        n-level corners of Definition 2 once labeling has stabilized.
        """
        return self.expand(1).corner_points()

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def __iter__(self) -> Iterator[Coord]:
        return self.iter_points()

    def iter_points(self) -> Iterator[Coord]:
        """Iterate over every lattice node in the region (row-major)."""
        ranges = [range(a, b + 1) for a, b in zip(self.lo, self.hi)]
        return (tuple(p) for p in product(*ranges))

    def boundary_points(self) -> Iterator[Coord]:
        """Nodes of the region that lie on at least one of its faces."""
        inner = self.shrink(1)
        for point in self.iter_points():
            if inner is None or not inner.contains(point):
                yield point

    def __len__(self) -> int:
        return self.volume

    def __contains__(self, point: object) -> bool:
        if not isinstance(point, (tuple, list)):
            return False
        return self.contains(tuple(point))


def bounding_region(points: Iterable[Sequence[int]]) -> Region:
    """Convenience alias for :meth:`Region.from_points`."""
    return Region.from_points(points)
