"""k-ary n-dimensional mesh substrate.

This package provides the topological substrate on which the paper's
limited-global fault information model operates:

* :mod:`repro.mesh.directions` — the 2n mesh directions and the paper's
  surface numbering (S0..S_{2n-1});
* :mod:`repro.mesh.coords` — coordinate arithmetic (Manhattan distance,
  adjacency, per-dimension offsets);
* :mod:`repro.mesh.regions` — inclusive hyper-rectangles, used to describe
  faulty-block extents, dangerous prisms and boundary slabs;
* :mod:`repro.mesh.topology` — the :class:`Mesh` class proper.
"""

from repro.mesh.coords import (
    add,
    component_delta,
    is_adjacent,
    manhattan,
    offsets_toward,
    subtract,
)
from repro.mesh.directions import (
    Direction,
    all_directions,
    direction_between,
    direction_from_surface,
    opposite,
    opposite_surface,
    surface_index,
)
from repro.mesh.regions import Region, bounding_region
from repro.mesh.topology import Mesh

__all__ = [
    "Direction",
    "Mesh",
    "Region",
    "add",
    "all_directions",
    "bounding_region",
    "component_delta",
    "direction_between",
    "direction_from_surface",
    "is_adjacent",
    "manhattan",
    "offsets_toward",
    "opposite",
    "opposite_surface",
    "subtract",
    "surface_index",
]
