"""k-ary n-dimensional mesh topology.

A *k-ary n-D mesh* has ``N = k^n`` nodes; each node ``u`` has an address
``(u_1, ..., u_n)`` with ``0 <= u_i <= k-1``.  Two nodes are connected iff
their addresses differ by exactly one in exactly one dimension, so nodes
along each dimension form a linear array (not a ring — this is a mesh, not a
torus).  The interior node degree is ``2n`` and the diameter is ``(k-1)n``.

:class:`Mesh` also supports rectangular (per-dimension radix) meshes, which
the paper's model does not preclude and which the experiments use to keep
simulation sizes manageable in higher dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator, List, Sequence, Tuple

from repro.mesh.coords import manhattan, offsets_toward
from repro.mesh.directions import Direction, all_directions
from repro.mesh.regions import Region

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class Mesh:
    """A k-ary n-dimensional mesh.

    Parameters
    ----------
    shape:
        Per-dimension radix ``(k_1, ..., k_n)``.  ``Mesh.cube(k, n)`` builds
        the uniform k-ary n-D mesh of the paper.
    """

    shape: Tuple[int, ...]
    _directions: Tuple[Direction, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if len(shape) < 1:
            raise ValueError("a mesh needs at least one dimension")
        if any(s < 2 for s in shape):
            raise ValueError(f"every dimension needs radix >= 2, got {shape}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "_directions", all_directions(len(shape)))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def cube(cls, radix: int, n_dims: int) -> "Mesh":
        """The uniform k-ary n-D mesh (``radix`` nodes per dimension)."""
        return cls(tuple([radix] * n_dims))

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_dims(self) -> int:
        """Number of dimensions ``n``."""
        return len(self.shape)

    @property
    def radix(self) -> int:
        """The radix ``k`` for uniform meshes (max radix otherwise)."""
        return max(self.shape)

    @property
    def size(self) -> int:
        """Total number of nodes ``N``."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def diameter(self) -> int:
        """Network diameter ``sum_i (k_i - 1)`` (``(k-1)n`` for uniform k)."""
        return sum(s - 1 for s in self.shape)

    @property
    def directions(self) -> Tuple[Direction, ...]:
        """All ``2n`` directions, indexed by the paper's surface numbering."""
        return self._directions

    @property
    def extent(self) -> Region:
        """The full mesh as a :class:`Region`."""
        return Region(tuple([0] * self.n_dims), tuple(s - 1 for s in self.shape))

    # ------------------------------------------------------------------ #
    # node queries
    # ------------------------------------------------------------------ #
    def contains(self, coord: Sequence[int]) -> bool:
        """True iff ``coord`` is a valid node address of this mesh."""
        if len(coord) != self.n_dims:
            return False
        return all(0 <= c < s for c, s in zip(coord, self.shape))

    def validate(self, coord: Sequence[int]) -> Coord:
        """Return ``coord`` as a tuple, raising if it is not in the mesh."""
        pt = tuple(int(c) for c in coord)
        if not self.contains(pt):
            raise ValueError(f"{pt} is not a node of mesh {self.shape}")
        return pt

    def nodes(self) -> Iterator[Coord]:
        """Iterate over every node address (row-major order)."""
        return (tuple(p) for p in product(*[range(s) for s in self.shape]))

    def degree(self, coord: Sequence[int]) -> int:
        """Number of neighbors of ``coord`` (``2n`` for interior nodes)."""
        return len(self.neighbors(coord))

    def neighbor(self, coord: Sequence[int], direction: Direction) -> Coord | None:
        """The neighbor of ``coord`` in ``direction``, or ``None`` off-mesh."""
        moved = direction.apply(coord)
        return moved if self.contains(moved) else None

    def neighbors(self, coord: Sequence[int]) -> List[Coord]:
        """All neighbors of ``coord`` inside the mesh."""
        out: List[Coord] = []
        for direction in self._directions:
            moved = direction.apply(coord)
            if self.contains(moved):
                out.append(moved)
        return out

    def neighbor_directions(self, coord: Sequence[int]) -> List[Direction]:
        """Directions along which ``coord`` has an in-mesh neighbor."""
        return [
            d for d in self._directions if self.contains(d.apply(coord))
        ]

    def distance(self, u: Sequence[int], v: Sequence[int]) -> int:
        """Manhattan distance ``D(u, v)``."""
        return manhattan(u, v)

    # ------------------------------------------------------------------ #
    # routing-related classification
    # ------------------------------------------------------------------ #
    def preferred_directions(
        self, u: Sequence[int], destination: Sequence[int]
    ) -> List[Direction]:
        """Directions that move ``u`` strictly closer to ``destination``.

        These are the paper's *preferred directions*; every minimal path uses
        only preferred directions.
        """
        dirs: List[Direction] = []
        for dim, offset in enumerate(offsets_toward(u, destination)):
            if offset != 0:
                dirs.append(Direction(dim, offset))
        return dirs

    def spare_directions(
        self, u: Sequence[int], destination: Sequence[int]
    ) -> List[Direction]:
        """In-mesh directions that do not move ``u`` closer to ``destination``.

        The paper calls the corresponding neighbors *spare neighbors*.
        """
        preferred = set(self.preferred_directions(u, destination))
        return [
            d
            for d in self._directions
            if d not in preferred and self.contains(d.apply(u))
        ]

    # ------------------------------------------------------------------ #
    # mesh-surface queries (the paper's "outmost surface")
    # ------------------------------------------------------------------ #
    def on_outmost_surface(self, coord: Sequence[int]) -> bool:
        """True iff ``coord`` lies on the outmost surface of the mesh.

        The paper assumes no fault occurs on the outmost surface, which (with
        the block fault model) keeps the enabled part of the mesh connected.
        """
        return any(
            c == 0 or c == s - 1 for c, s in zip(coord, self.shape)
        )

    def interior_region(self, margin: int = 1) -> Region:
        """The sub-region at least ``margin`` hops away from every surface."""
        lo = tuple([margin] * self.n_dims)
        hi = tuple(s - 1 - margin for s in self.shape)
        if any(a > b for a, b in zip(lo, hi)):
            raise ValueError(
                f"mesh {self.shape} has no interior with margin {margin}"
            )
        return Region(lo, hi)

    def clip_region(self, region: Region) -> Region | None:
        """Intersection of ``region`` with the mesh extent."""
        return region.intersection(self.extent)

    def distance_to_surface(self, coord: Sequence[int], direction: Direction) -> int:
        """Hops from ``coord`` to the outmost surface along ``direction``."""
        coord = self.validate(coord)
        if direction.sign > 0:
            return self.shape[direction.dim] - 1 - coord[direction.dim]
        return coord[direction.dim]

    # ------------------------------------------------------------------ #
    # flat-index views (the vectorized engines' working representation)
    # ------------------------------------------------------------------ #
    @property
    def neighbor_table(self):
        """Memoized flat neighbor-index table, shape ``(size, 2n)`` int32.

        Column ``j`` holds, for every node (row-major linear index), the
        linear index of its neighbor in ``self.directions[j]`` — i.e. the
        paper's surface order: columns ``0..n-1`` are the negative sides of
        dimensions ``0..n-1`` and columns ``n..2n-1`` the positive sides, so
        columns ``d`` and ``d + n`` always belong to dimension ``d``.
        Off-mesh neighbors are ``-1``.  The table is built once per mesh and
        shared by the vectorized labeling engine.
        """
        try:
            return self._neighbor_table
        except AttributeError:
            pass
        import numpy as np

        n = self.n_dims
        size = self.size
        strides = [1] * n
        for d in range(n - 2, -1, -1):
            strides[d] = strides[d + 1] * self.shape[d + 1]
        idx = np.arange(size, dtype=np.int32)
        coords = np.stack(np.unravel_index(idx, self.shape), axis=1)
        table = np.full((size, 2 * n), -1, dtype=np.int32)
        for d in range(n):
            has_minus = coords[:, d] > 0
            table[has_minus, d] = idx[has_minus] - strides[d]
            has_plus = coords[:, d] < self.shape[d] - 1
            table[has_plus, d + n] = idx[has_plus] + strides[d]
        table.setflags(write=False)
        object.__setattr__(self, "_neighbor_table", table)
        return table

    @property
    def neighbor_gather_table(self):
        """:attr:`neighbor_table` with ``-1`` replaced by the sentinel ``size``.

        Gathering from a status array padded with one trailing sentinel cell
        turns off-mesh neighbors into always-enabled ones — the same
        semantics the scalar rules get from ``neighbor() is None``.
        """
        try:
            return self._neighbor_gather_table
        except AttributeError:
            pass
        import numpy as np

        table = np.where(self.neighbor_table < 0, self.size, self.neighbor_table)
        table = table.astype(np.int32)
        table.setflags(write=False)
        object.__setattr__(self, "_neighbor_gather_table", table)
        return table

    @property
    def link_slot_table(self):
        """Memoized per-direction link-slot table, shape ``(size, 2n)`` int32.

        Entry ``[i, j]`` is the canonical link slot (:meth:`link_index`) of
        the link from node ``i`` to its neighbor in ``self.directions[j]``,
        or ``-1`` off-mesh.  With it the struct-of-arrays probe engine turns
        every reserve/release into one table read instead of an endpoint-pair
        lookup.
        """
        try:
            return self._link_slot_table
        except AttributeError:
            pass
        import numpy as np

        n = self.n_dims
        neighbors = self.neighbor_table
        idx = np.arange(self.size, dtype=np.int64)
        table = np.full((self.size, 2 * n), -1, dtype=np.int32)
        for d in range(n):
            # Negative side: the neighbor is the lower endpoint of the link.
            has_minus = neighbors[:, d] >= 0
            table[has_minus, d] = neighbors[has_minus, d].astype(np.int64) * n + d
            # Positive side: this node is the lower endpoint.
            has_plus = neighbors[:, d + n] >= 0
            table[has_plus, d + n] = idx[has_plus] * n + d
        table.setflags(write=False)
        object.__setattr__(self, "_link_slot_table", table)
        return table

    @property
    def link_slots(self) -> int:
        """Size of the flat canonical-link index space (``size * n_dims``).

        Every mesh link has exactly one slot (see :meth:`link_index`); slots
        whose lower endpoint sits on the upper mesh face of the dimension are
        unused, which wastes a little space in exchange for O(1) arithmetic
        indexing with no per-link hashing.
        """
        return self.size * self.n_dims

    def link_index(self, u: Sequence[int], v: Sequence[int]) -> int:
        """Flat canonical index of the link between neighbors ``u`` and ``v``.

        The index is ``index_of(min(u, v)) * n_dims + dim`` where ``dim`` is
        the dimension along which the endpoints differ; it is independent of
        traversal direction, like :func:`repro.mesh.coords.canonical_link`.
        Results are memoized per endpoint-pair (both orders), so the
        reservation ledger's per-hop queries cost one dict hit.
        """
        try:
            memo = self._link_index_memo
        except AttributeError:
            memo = {}
            object.__setattr__(self, "_link_index_memo", memo)
        key = (u, v) if type(u) is tuple and type(v) is tuple else (tuple(u), tuple(v))
        hit = memo.get(key)
        if hit is not None:
            return hit
        if len(key[0]) != self.n_dims or len(key[1]) != self.n_dims:
            raise ValueError(f"{key[0]} and {key[1]} are not links of mesh {self.shape}")
        idx = 0
        dim = -1
        for d, (a, b, s) in enumerate(zip(key[0], key[1], self.shape)):
            if not (0 <= a < s and 0 <= b < s):
                raise ValueError(
                    f"{key[0]} and {key[1]} are not links of mesh {self.shape}"
                )
            if a != b:
                if dim >= 0 or abs(a - b) != 1:
                    raise ValueError(f"{key[0]} and {key[1]} are not mesh neighbors")
                dim = d
                idx = idx * s + (a if a < b else b)
            else:
                idx = idx * s + a
        if dim < 0:
            raise ValueError(f"{key[0]} and {key[1]} are the same node")
        index = idx * self.n_dims + dim
        memo[key] = index
        memo[(key[1], key[0])] = index
        return index

    def link_of_index(self, index: int):
        """Inverse of :meth:`link_index`: the canonical ``(lo, hi)`` endpoint pair."""
        if not 0 <= index < self.link_slots:
            raise ValueError(f"link index {index} out of range for mesh {self.shape}")
        node, dim = divmod(index, self.n_dims)
        lo = self.coord_of(node)
        if lo[dim] + 1 >= self.shape[dim]:
            raise ValueError(f"link index {index} is an unused slot of mesh {self.shape}")
        hi = tuple(c + 1 if d == dim else c for d, c in enumerate(lo))
        return (lo, hi)

    @property
    def n_links(self) -> int:
        """Number of physical links ``sum_d (k_d - 1) * prod_{e != d} k_e``."""
        total = 0
        for d, s in enumerate(self.shape):
            total += (s - 1) * (self.size // s)
        return total

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def index_of(self, coord: Sequence[int]) -> int:
        """Row-major linear index of ``coord`` (useful for array-backed state)."""
        coord = self.validate(coord)
        idx = 0
        for c, s in zip(coord, self.shape):
            idx = idx * s + c
        return idx

    def coord_of(self, index: int) -> Coord:
        """Inverse of :meth:`index_of` (O(1) via a lazily built table)."""
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} out of range for mesh {self.shape}")
        try:
            table = self._coord_table
        except AttributeError:
            table = tuple(self.nodes())
            object.__setattr__(self, "_coord_table", table)
        return table[index]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(s) for s in self.shape)
        return f"Mesh({dims})"
