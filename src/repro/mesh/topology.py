"""k-ary n-dimensional mesh topology.

A *k-ary n-D mesh* has ``N = k^n`` nodes; each node ``u`` has an address
``(u_1, ..., u_n)`` with ``0 <= u_i <= k-1``.  Two nodes are connected iff
their addresses differ by exactly one in exactly one dimension, so nodes
along each dimension form a linear array (not a ring — this is a mesh, not a
torus).  The interior node degree is ``2n`` and the diameter is ``(k-1)n``.

:class:`Mesh` also supports rectangular (per-dimension radix) meshes, which
the paper's model does not preclude and which the experiments use to keep
simulation sizes manageable in higher dimensions.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Iterator, List, Sequence, Tuple

from repro.mesh.coords import manhattan, offsets_toward
from repro.mesh.directions import Direction, all_directions
from repro.mesh.regions import Region

Coord = Tuple[int, ...]


@dataclass(frozen=True)
class Mesh:
    """A k-ary n-dimensional mesh.

    Parameters
    ----------
    shape:
        Per-dimension radix ``(k_1, ..., k_n)``.  ``Mesh.cube(k, n)`` builds
        the uniform k-ary n-D mesh of the paper.
    """

    shape: Tuple[int, ...]
    _directions: Tuple[Direction, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        shape = tuple(int(s) for s in self.shape)
        if len(shape) < 1:
            raise ValueError("a mesh needs at least one dimension")
        if any(s < 2 for s in shape):
            raise ValueError(f"every dimension needs radix >= 2, got {shape}")
        object.__setattr__(self, "shape", shape)
        object.__setattr__(self, "_directions", all_directions(len(shape)))

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def cube(cls, radix: int, n_dims: int) -> "Mesh":
        """The uniform k-ary n-D mesh (``radix`` nodes per dimension)."""
        return cls(tuple([radix] * n_dims))

    # ------------------------------------------------------------------ #
    # basic properties
    # ------------------------------------------------------------------ #
    @property
    def n_dims(self) -> int:
        """Number of dimensions ``n``."""
        return len(self.shape)

    @property
    def radix(self) -> int:
        """The radix ``k`` for uniform meshes (max radix otherwise)."""
        return max(self.shape)

    @property
    def size(self) -> int:
        """Total number of nodes ``N``."""
        n = 1
        for s in self.shape:
            n *= s
        return n

    @property
    def diameter(self) -> int:
        """Network diameter ``sum_i (k_i - 1)`` (``(k-1)n`` for uniform k)."""
        return sum(s - 1 for s in self.shape)

    @property
    def directions(self) -> Tuple[Direction, ...]:
        """All ``2n`` directions, indexed by the paper's surface numbering."""
        return self._directions

    @property
    def extent(self) -> Region:
        """The full mesh as a :class:`Region`."""
        return Region(tuple([0] * self.n_dims), tuple(s - 1 for s in self.shape))

    # ------------------------------------------------------------------ #
    # node queries
    # ------------------------------------------------------------------ #
    def contains(self, coord: Sequence[int]) -> bool:
        """True iff ``coord`` is a valid node address of this mesh."""
        if len(coord) != self.n_dims:
            return False
        return all(0 <= c < s for c, s in zip(coord, self.shape))

    def validate(self, coord: Sequence[int]) -> Coord:
        """Return ``coord`` as a tuple, raising if it is not in the mesh."""
        pt = tuple(int(c) for c in coord)
        if not self.contains(pt):
            raise ValueError(f"{pt} is not a node of mesh {self.shape}")
        return pt

    def nodes(self) -> Iterator[Coord]:
        """Iterate over every node address (row-major order)."""
        return (tuple(p) for p in product(*[range(s) for s in self.shape]))

    def degree(self, coord: Sequence[int]) -> int:
        """Number of neighbors of ``coord`` (``2n`` for interior nodes)."""
        return len(self.neighbors(coord))

    def neighbor(self, coord: Sequence[int], direction: Direction) -> Coord | None:
        """The neighbor of ``coord`` in ``direction``, or ``None`` off-mesh."""
        moved = direction.apply(coord)
        return moved if self.contains(moved) else None

    def neighbors(self, coord: Sequence[int]) -> List[Coord]:
        """All neighbors of ``coord`` inside the mesh."""
        out: List[Coord] = []
        for direction in self._directions:
            moved = direction.apply(coord)
            if self.contains(moved):
                out.append(moved)
        return out

    def neighbor_directions(self, coord: Sequence[int]) -> List[Direction]:
        """Directions along which ``coord`` has an in-mesh neighbor."""
        return [
            d for d in self._directions if self.contains(d.apply(coord))
        ]

    def distance(self, u: Sequence[int], v: Sequence[int]) -> int:
        """Manhattan distance ``D(u, v)``."""
        return manhattan(u, v)

    # ------------------------------------------------------------------ #
    # routing-related classification
    # ------------------------------------------------------------------ #
    def preferred_directions(
        self, u: Sequence[int], destination: Sequence[int]
    ) -> List[Direction]:
        """Directions that move ``u`` strictly closer to ``destination``.

        These are the paper's *preferred directions*; every minimal path uses
        only preferred directions.
        """
        dirs: List[Direction] = []
        for dim, offset in enumerate(offsets_toward(u, destination)):
            if offset != 0:
                dirs.append(Direction(dim, offset))
        return dirs

    def spare_directions(
        self, u: Sequence[int], destination: Sequence[int]
    ) -> List[Direction]:
        """In-mesh directions that do not move ``u`` closer to ``destination``.

        The paper calls the corresponding neighbors *spare neighbors*.
        """
        preferred = set(self.preferred_directions(u, destination))
        return [
            d
            for d in self._directions
            if d not in preferred and self.contains(d.apply(u))
        ]

    # ------------------------------------------------------------------ #
    # mesh-surface queries (the paper's "outmost surface")
    # ------------------------------------------------------------------ #
    def on_outmost_surface(self, coord: Sequence[int]) -> bool:
        """True iff ``coord`` lies on the outmost surface of the mesh.

        The paper assumes no fault occurs on the outmost surface, which (with
        the block fault model) keeps the enabled part of the mesh connected.
        """
        return any(
            c == 0 or c == s - 1 for c, s in zip(coord, self.shape)
        )

    def interior_region(self, margin: int = 1) -> Region:
        """The sub-region at least ``margin`` hops away from every surface."""
        lo = tuple([margin] * self.n_dims)
        hi = tuple(s - 1 - margin for s in self.shape)
        if any(a > b for a, b in zip(lo, hi)):
            raise ValueError(
                f"mesh {self.shape} has no interior with margin {margin}"
            )
        return Region(lo, hi)

    def clip_region(self, region: Region) -> Region | None:
        """Intersection of ``region`` with the mesh extent."""
        return region.intersection(self.extent)

    def distance_to_surface(self, coord: Sequence[int], direction: Direction) -> int:
        """Hops from ``coord`` to the outmost surface along ``direction``."""
        coord = self.validate(coord)
        if direction.sign > 0:
            return self.shape[direction.dim] - 1 - coord[direction.dim]
        return coord[direction.dim]

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def index_of(self, coord: Sequence[int]) -> int:
        """Row-major linear index of ``coord`` (useful for array-backed state)."""
        coord = self.validate(coord)
        idx = 0
        for c, s in zip(coord, self.shape):
            idx = idx * s + c
        return idx

    def coord_of(self, index: int) -> Coord:
        """Inverse of :meth:`index_of` (O(1) via a lazily built table)."""
        if not 0 <= index < self.size:
            raise ValueError(f"index {index} out of range for mesh {self.shape}")
        try:
            table = self._coord_table
        except AttributeError:
            table = tuple(self.nodes())
            object.__setattr__(self, "_coord_table", table)
        return table[index]

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dims = "x".join(str(s) for s in self.shape)
        return f"Mesh({dims})"
