"""Coordinate arithmetic for n-D mesh addresses.

Node addresses are plain tuples of ``n`` non-negative integers
``(u_1, ..., u_n)``.  All helpers here are topology-agnostic; bounds checking
against a particular mesh lives in :class:`repro.mesh.topology.Mesh`.
"""

from __future__ import annotations

from typing import Iterator, Sequence, Tuple

from repro.mesh.directions import Direction

Coord = Tuple[int, ...]
Link = Tuple[Coord, Coord]


def canonical_link(u: Sequence[int], v: Sequence[int]) -> Link:
    """Order-independent identifier of the link between ``u`` and ``v``.

    The same helper backs link-fault bookkeeping, circuit reservations and
    the simulator's live reservation table, so a link is named identically
    everywhere regardless of traversal direction.
    """
    a, b = tuple(u), tuple(v)
    return (a, b) if a <= b else (b, a)


def add(coord: Sequence[int], delta: Sequence[int]) -> Coord:
    """Component-wise sum of ``coord`` and ``delta``."""
    if len(coord) != len(delta):
        raise ValueError(f"coordinate ranks differ: {len(coord)} vs {len(delta)}")
    return tuple(a + b for a, b in zip(coord, delta))


def subtract(u: Sequence[int], v: Sequence[int]) -> Coord:
    """Component-wise difference ``u - v``."""
    if len(u) != len(v):
        raise ValueError(f"coordinate ranks differ: {len(u)} vs {len(v)}")
    return tuple(a - b for a, b in zip(u, v))


def manhattan(u: Sequence[int], v: Sequence[int]) -> int:
    """Manhattan (mesh) distance ``D(u, v) = sum_i |u_i - v_i|``.

    This is the paper's ``D(u, v)`` and equals the length of every minimal
    path between ``u`` and ``v`` in a fault-free mesh.
    """
    if len(u) != len(v):
        raise ValueError(f"coordinate ranks differ: {len(u)} vs {len(v)}")
    return sum(abs(a - b) for a, b in zip(u, v))


def is_adjacent(u: Sequence[int], v: Sequence[int]) -> bool:
    """True iff ``u`` and ``v`` are mesh neighbors (distance exactly 1)."""
    if len(u) != len(v):
        return False
    return manhattan(u, v) == 1


def component_delta(u: Sequence[int], v: Sequence[int], dim: int) -> int:
    """Signed offset from ``u`` to ``v`` along dimension ``dim``."""
    return v[dim] - u[dim]


def offsets_toward(u: Sequence[int], d: Sequence[int]) -> Tuple[int, ...]:
    """Per-dimension unit offsets pointing from ``u`` towards ``d``.

    Entry ``i`` is ``+1``/``-1`` when moving along dimension ``i`` reduces the
    distance to ``d`` and ``0`` when ``u_i == d_i``.  The non-zero entries
    are exactly the *preferred directions* of the paper's terminology.
    """
    if len(u) != len(d):
        raise ValueError(f"coordinate ranks differ: {len(u)} vs {len(d)}")
    out = []
    for a, b in zip(u, d):
        if b > a:
            out.append(+1)
        elif b < a:
            out.append(-1)
        else:
            out.append(0)
    return tuple(out)


def preferred_directions(u: Sequence[int], d: Sequence[int]) -> Tuple[Direction, ...]:
    """Directions that move ``u`` strictly closer to destination ``d``."""
    dirs = []
    for dim, offset in enumerate(offsets_toward(u, d)):
        if offset != 0:
            dirs.append(Direction(dim, offset))
    return tuple(dirs)


def iter_line(u: Sequence[int], direction: Direction, length: int) -> Iterator[Coord]:
    """Yield ``length`` successive coordinates starting one hop from ``u``.

    Used by the boundary-propagation oracle to walk straight lines towards
    the outmost surface of the mesh.
    """
    if length < 0:
        raise ValueError("length must be non-negative")
    current = tuple(u)
    for _ in range(length):
        current = direction.apply(current)
        yield current


def clamp(coord: Sequence[int], lo: Sequence[int], hi: Sequence[int]) -> Coord:
    """Clamp ``coord`` component-wise into the inclusive box ``[lo, hi]``."""
    if not len(coord) == len(lo) == len(hi):
        raise ValueError("coordinate ranks differ")
    return tuple(min(max(c, a), b) for c, a, b in zip(coord, lo, hi))
