"""Aggregation and export of experiment-batch results.

A :class:`CellResult` pairs one :class:`~repro.experiments.spec.ExperimentCell`
with the flat metric dictionary its run produced (delivery rate, detours,
convergence rounds, ...).  A :class:`BatchResult` holds every cell result of
one :func:`~repro.experiments.runner.run_batch` invocation and knows how to

* export itself as canonical JSON (sorted keys, fixed cell order) — two runs
  of the same spec produce byte-identical output regardless of worker count;
* pivot any metric into rows/columns over cell attributes, which is what the
  comparison tables in the benchmarks and examples are made of.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.experiments.spec import ExperimentCell, ExperimentSpec
from repro.obs.telemetry import SweepTelemetry


@dataclass(frozen=True)
class CellResult:
    """Metrics produced by running one experiment cell."""

    cell: ExperimentCell
    metrics: Dict[str, float]

    def to_dict(self) -> dict:
        return {
            "index": self.cell.index,
            "mode": self.cell.mode,
            "shape": list(self.cell.shape),
            "policy": self.cell.policy,
            "faults": self.cell.faults,
            "interval": self.cell.interval,
            "lam": self.cell.lam,
            "messages": self.cell.messages,
            "seed": self.cell.seed,
            "cell_seed": self.cell.cell_seed,
            "contention": self.cell.contention,
            "flits": self.cell.flits,
            "scenario": self.cell.scenario,
            "rate": self.cell.rate,
            "fault_rate": self.cell.fault_rate,
            "repair_after": self.cell.repair_after,
            "metrics": {k: self.metrics[k] for k in sorted(self.metrics)},
        }


@dataclass(frozen=True)
class BatchResult:
    """Every cell result of one batch run, in cell order."""

    spec: ExperimentSpec
    results: Tuple[CellResult, ...]

    #: Execution telemetry of the batch run (shard timings, worker
    #: utilization, cache stats) — observational only: excluded from
    #: equality and from :meth:`to_dict`, so the canonical JSON stays
    #: byte-identical across engines, worker counts and cache states.
    telemetry: Optional[SweepTelemetry] = field(default=None, compare=False)

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "results", tuple(sorted(self.results, key=lambda r: r.cell.index))
        )

    def __len__(self) -> int:
        return len(self.results)

    @classmethod
    def assemble(
        cls,
        spec: ExperimentSpec,
        results: Sequence[Optional[CellResult]],
        telemetry: Optional[SweepTelemetry] = None,
    ) -> "BatchResult":
        """Build a batch from sparse per-index results, validating coverage.

        The sharded/cached executor lands results out of order into an
        index-addressed list (cache hits first, then shard completions);
        assembling through here turns a scheduling bug — a cell that never
        landed — into a loud error instead of a ``None`` buried in a tuple.
        """
        missing = [i for i, r in enumerate(results) if r is None]
        if missing:
            raise ValueError(
                f"batch incomplete: {len(missing)} of {len(results)} cells "
                f"never produced a result (first missing index {missing[0]})"
            )
        return cls(
            spec=spec,
            results=tuple(results),  # type: ignore[arg-type]
            telemetry=telemetry,
        )

    # ------------------------------------------------------------------ #
    # export
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "cells": [r.to_dict() for r in self.results],
        }

    def to_json(self, *, indent: int = 2) -> str:
        """Canonical JSON: sorted keys, cells in grid order.

        Contains nothing run-dependent (no timestamps, no wall-clock), so
        serial and parallel runs of the same spec serialize byte-identically.
        """
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    def telemetry_dict(self) -> Optional[dict]:
        """The versioned telemetry payload, or ``None`` when none was
        collected.  Kept out of :meth:`to_dict` by design — telemetry is
        wall-clock-dependent and must never enter the canonical export."""
        if self.telemetry is None:
            return None
        return self.telemetry.to_dict()

    # ------------------------------------------------------------------ #
    # table helpers
    # ------------------------------------------------------------------ #
    def select(self, **attrs: object) -> List[CellResult]:
        """Cell results whose cell attributes match every given value."""
        out = []
        for result in self.results:
            if all(getattr(result.cell, k) == v for k, v in attrs.items()):
                out.append(result)
        return out

    def pivot(
        self, metric: str, *, rows: str, cols: str = "policy"
    ) -> Dict[object, Dict[object, float]]:
        """Pivot ``metric`` into a ``{row_value: {col_value: mean}}`` table.

        ``rows``/``cols`` name :class:`ExperimentCell` attributes (e.g.
        ``"faults"``, ``"lam"``, ``"shape"``, ``"policy"``).  Cells sharing a
        (row, col) coordinate — replicate seeds, say — are averaged.
        """
        sums: Dict[object, Dict[object, List[float]]] = {}
        for result in self.results:
            row = getattr(result.cell, rows)
            col = getattr(result.cell, cols)
            sums.setdefault(row, {}).setdefault(col, []).append(result.metrics[metric])
        return {
            row: {col: sum(vals) / len(vals) for col, vals in by_col.items()}
            for row, by_col in sums.items()
        }

    def metric_values(self, metric: str) -> List[float]:
        """The metric across every cell, in cell order."""
        return [r.metrics[metric] for r in self.results]
